#!/usr/bin/env python3
"""What if one pool crossed 50%?

§III-D warns that pool concentration already weakens the 12-block rule at
~25 % shares.  This example pushes the knob to the limit: rebuild the
world with a majority pool and measure what happens to single-pool block
runs, censorship windows and finality — the scenario every permissionless
chain's security argument assumes away.

The two share variants are independent campaigns, so they run as an
ablation grid on the parallel campaign fleet (one worker process per
variant) instead of back-to-back.

Run with::

    python examples/majority_pool.py
"""

from __future__ import annotations

from repro.analysis.censorship import censorship_windows
from repro.analysis.sequences import (
    expected_streaks,
    sequence_analysis,
)
from repro.experiments.fleet import CampaignJob, CampaignPool
from repro.geo.regions import Region
from repro.measurement.campaign import CampaignConfig
from repro.node.pool import PoolSpec
from repro.workload import ScenarioConfig, WorkloadConfig

BLOCKS = 250
SHARES = (0.25, 0.51)


def build_campaign(majority_share: float, seed: int = 17) -> CampaignConfig:
    fringe_share = (1.0 - majority_share) / 3.0
    pools = (
        PoolSpec(
            name="MajorityPool",
            hashpower=majority_share,
            home_region=Region.EASTERN_ASIA,
        ),
        PoolSpec(name="Minor-1", hashpower=fringe_share, home_region=Region.NORTH_AMERICA),
        PoolSpec(name="Minor-2", hashpower=fringe_share, home_region=Region.WESTERN_EUROPE),
        PoolSpec(name="Minor-3", hashpower=fringe_share, home_region=Region.CENTRAL_EUROPE),
    )
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=30,
            pool_specs=pools,
            workload=WorkloadConfig(tx_rate=0.8, senders=60),
            gas_limit=350_000,
            warmup=60.0,
        ),
        duration=BLOCKS * 13.3,
    )


def main() -> None:
    jobs = [
        CampaignJob(
            config=build_campaign(share),
            seed=17,
            label=f"majority-{round(100 * share)}pct",
        )
        for share in SHARES
    ]
    pool = CampaignPool(jobs=len(jobs), progress=print)
    sweep = pool.run(jobs)
    sweep.raise_on_failure()

    for share, outcome in zip(SHARES, sweep.outcomes):
        print(f"\n=== majority pool at {share:.0%} hash power ===")
        dataset = outcome.dataset
        runs = sequence_analysis(dataset)
        name = "MajorityPool"
        longest = runs.max_run.get(name, 0)
        print(f"longest single-pool run: {longest} blocks (of {runs.chain_length})")
        print(
            f"theory: E[runs >= 12] per month = "
            f"{expected_streaks(share, 12, 201_086):,.3f}"
        )
        windows = censorship_windows(dataset)
        if windows.windows:
            worst = windows.longest()
            print(
                f"worst censorship window: {worst.duration:.0f}s "
                f"({worst.length} blocks, by {worst.pool})"
            )
    print(
        "\nAt 25% a 12-block rewrite is a ~once-per-decade event; at 51% the "
        "attacker EXPECTS to outrun any constant confirmation rule — "
        "§III-D's point taken to its limit."
    )


if __name__ == "__main__":
    main()
