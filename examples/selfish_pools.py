#!/usr/bin/env python3
"""Selfish mining-pool behaviour: does it actually pay?

§III-C3/C5 document two selfish practices — empty-block mining and
one-miner forks — and argue both are profitable, hence likely to spread.
This example makes the profitability claim concrete: two pools with
identical hash power race for a few hundred blocks, one honest and one
running the one-miner fork policy, and we compare the ETH each collects
per lottery win (distinct height it produced blocks at).

A single short race is noisy, so the duel runs as a multi-seed sweep on
the parallel campaign fleet: every seed is an independent world, the
fleet fans them out over worker processes, and the verdict is the mean
advantage across seeds — the confidence-interval workflow the fleet
exists for.

Run with::

    python examples/selfish_pools.py
"""

from __future__ import annotations

from repro.analysis.fairness import reward_ledger
from repro.experiments.fleet import CampaignPool, seed_sweep_jobs
from repro.geo.regions import Region
from repro.measurement.campaign import CampaignConfig
from repro.measurement.dataset import MeasurementDataset
from repro.node.pool import PoolPolicy, PoolSpec
from repro.workload import ScenarioConfig, WorkloadConfig

BLOCKS = 300
SEEDS = (13, 14)


def build_duel(seed: int = 13) -> CampaignConfig:
    """Two equal pools; one harvests uncle rewards via one-miner forks."""
    honest = PoolSpec(
        name="HonestPool",
        hashpower=0.40,
        home_region=Region.WESTERN_EUROPE,
        policy=PoolPolicy(),
    )
    selfish = PoolSpec(
        name="SelfishPool",
        hashpower=0.40,
        home_region=Region.EASTERN_ASIA,
        # Exaggerated versus mainnet (~1.3%) so a short run shows the
        # effect clearly; the mechanism is identical.
        policy=PoolPolicy(one_miner_fork_probability=0.25),
    )
    fringe = PoolSpec(
        name="Fringe",
        hashpower=0.20,
        home_region=Region.NORTH_AMERICA,
        policy=PoolPolicy(),
    )
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=24,
            pool_specs=(honest, selfish, fringe),
            workload=WorkloadConfig(tx_rate=0.5, senders=40),
            warmup=20.0,
        ),
        duration=BLOCKS * 13.3,
    )


def _lottery_wins(dataset: MeasurementDataset) -> dict[str, int]:
    """Distinct heights each pool produced blocks at — its lottery wins.

    A one-miner fork publishes *several* same-height variants per win, so
    counting distinct heights (not blocks) keeps the denominator equal
    between honest and selfish pools of equal hash power.
    """
    heights: dict[str, set[int]] = {}
    for block in dataset.chain.blocks.values():
        if block.height == 0:
            continue
        heights.setdefault(block.miner, set()).add(block.height)
    return {name: len(won) for name, won in heights.items()}


def _rates(dataset: MeasurementDataset) -> dict[str, float]:
    """ETH per lottery win, per pool."""
    ledger = reward_ledger(dataset)
    wins = _lottery_wins(dataset)
    return {
        name: ledger.get(name, 0.0) / count
        for name, count in wins.items()
        if count
    }


def main() -> None:
    print(
        f"Racing HonestPool vs SelfishPool for ~{BLOCKS} blocks "
        f"across seeds {SEEDS} (parallel fleet)..."
    )
    pool = CampaignPool(jobs=len(SEEDS), progress=print)
    sweep = pool.run(seed_sweep_jobs(config=build_duel(), seeds=SEEDS, label="duel"))
    sweep.raise_on_failure()

    advantages = []
    for outcome in sweep.outcomes:
        dataset = outcome.dataset
        ledger = reward_ledger(dataset)
        wins = _lottery_wins(dataset)
        rates = _rates(dataset)
        print(f"\n--- seed {outcome.job.seed} ---")
        print(f"{'pool':<14} {'wins':>8} {'ETH earned':>12} {'ETH/win':>10}")
        for name in ("HonestPool", "SelfishPool", "Fringe"):
            print(
                f"{name:<14} {wins.get(name, 0):>8} "
                f"{ledger.get(name, 0.0):>12.2f} {rates.get(name, 0.0):>10.3f}"
            )
        honest_rate = rates.get("HonestPool", 0.0)
        selfish_rate = rates.get("SelfishPool", 0.0)
        if honest_rate > 0:
            advantages.append(selfish_rate / honest_rate - 1)

    mean_advantage = 100 * sum(advantages) / len(advantages) if advantages else 0.0
    print()
    if mean_advantage > 0:
        print(
            f"Across {len(advantages)} seeds SelfishPool earned "
            f"{mean_advantage:.1f}% more ETH per lottery win on average: "
            "the losing same-height variants were recognized as uncles and "
            "paid out anyway — the §III-C5 exploit."
        )
    else:
        print(
            "No mean advantage across these seeds (short races, heavy "
            "variance) — add seeds to the sweep; over a month the edge "
            "compounds."
        )
    print(
        "\n§V's proposed fix — reject uncles whose miner already mined the "
        "main block at that height — would zero out those extra rewards."
    )


if __name__ == "__main__":
    main()
