#!/usr/bin/env python3
"""Selfish mining-pool behaviour: does it actually pay?

§III-C3/C5 document two selfish practices — empty-block mining and
one-miner forks — and argue both are profitable, hence likely to spread.
This example makes the profitability claim concrete: two pools with
identical hash power race for a few hundred blocks, one honest and one
running the one-miner fork policy, and we compare the ETH each collects
per unit of hash power.

Run with::

    python examples/selfish_pools.py
"""

from __future__ import annotations

from repro.chain.rewards import ledger_for_chain
from repro.geo.regions import Region
from repro.node.pool import PoolPolicy, PoolSpec
from repro.workload import ScenarioConfig, WorkloadConfig, build_scenario


def build_duel(seed: int = 13) -> ScenarioConfig:
    """Two equal pools; one harvests uncle rewards via one-miner forks."""
    honest = PoolSpec(
        name="HonestPool",
        hashpower=0.40,
        home_region=Region.WESTERN_EUROPE,
        policy=PoolPolicy(),
    )
    selfish = PoolSpec(
        name="SelfishPool",
        hashpower=0.40,
        home_region=Region.EASTERN_ASIA,
        # Exaggerated versus mainnet (~1.3%) so a short run shows the
        # effect clearly; the mechanism is identical.
        policy=PoolPolicy(one_miner_fork_probability=0.25),
    )
    fringe = PoolSpec(
        name="Fringe",
        hashpower=0.20,
        home_region=Region.NORTH_AMERICA,
        policy=PoolPolicy(),
    )
    return ScenarioConfig(
        seed=seed,
        n_nodes=24,
        pool_specs=(honest, selfish, fringe),
        workload=WorkloadConfig(tx_rate=0.5, senders=40),
        warmup=20.0,
    )


def main() -> None:
    scenario = build_scenario(build_duel())
    blocks = 400
    print(f"Racing HonestPool vs SelfishPool for ~{blocks} blocks...")
    scenario.start()
    scenario.run_for(blocks * scenario.config.inter_block_time)

    tree = scenario.pools[0].primary.tree
    ledger = ledger_for_chain(tree)
    wins = scenario.coordinator.wins_by_pool()

    print()
    print(f"{'pool':<14} {'lottery wins':>12} {'ETH earned':>12} {'ETH/win':>9}")
    for name in ("HonestPool", "SelfishPool", "Fringe"):
        earned = ledger.get(name, 0.0)
        count = wins.get(name, 0)
        per_win = earned / count if count else 0.0
        print(f"{name:<14} {count:>12} {earned:>12.2f} {per_win:>9.3f}")

    honest_rate = ledger.get("HonestPool", 0.0) / max(wins.get("HonestPool", 1), 1)
    selfish_rate = ledger.get("SelfishPool", 0.0) / max(wins.get("SelfishPool", 1), 1)
    print()
    if selfish_rate > honest_rate:
        advantage = 100 * (selfish_rate / honest_rate - 1)
        print(
            f"SelfishPool earned {advantage:.1f}% more ETH per lottery win: "
            "the losing same-height variants were recognized as uncles and "
            "paid out anyway — the §III-C5 exploit."
        )
    else:
        print(
            "No advantage this run (short race, heavy variance) — rerun "
            "with another seed; over a month the edge compounds."
        )
    print(
        "\n§V's proposed fix — reject uncles whose miner already mined the "
        "main block at that height — would zero out those extra rewards."
    )


if __name__ == "__main__":
    main()
