#!/usr/bin/env python3
"""The full geo-distributed measurement study, end to end.

Reproduces the paper's §II methodology: a month-equivalent campaign
observed from North America, Eastern Asia, Western Europe and Central
Europe, followed by every analysis in §III — then saves the collected
data set as JSONL, mirroring the paper's open-data release.

Run with::

    python examples/geo_vantage_study.py [small|standard|large] [out.jsonl]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.cache import campaign_dataset
from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str]) -> int:
    preset = argv[1] if len(argv) > 1 else "small"
    out_path = Path(argv[2]) if len(argv) > 2 else None

    started = time.time()
    print(f"Running the '{preset}' campaign (4 vantages + default-peer node)...")
    dataset = campaign_dataset(preset)
    print(
        f"done in {time.time() - started:.1f}s wall: "
        f"{len(dataset.chain.canonical_hashes) - 1} main blocks, "
        f"{len(dataset.tx_receptions)} tx observations, "
        f"{len(dataset.block_messages)} block messages"
    )

    for experiment in EXPERIMENTS:
        print()
        print("=" * 72)
        print(f"[{experiment.experiment_id}] {experiment.title}")
        print("=" * 72)
        try:
            print(experiment.run(dataset).render())
        except Exception as error:  # small presets can starve an analysis
            print(f"  (not computable on this preset: {error})")
        for key, value in experiment.paper_values.items():
            print(f"    paper: {key} = {value}")

    if out_path is not None:
        dataset.save(out_path)
        print(f"\nData set saved to {out_path} "
              f"({out_path.stat().st_size / 1e6:.1f} MB JSONL)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
