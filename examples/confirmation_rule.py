#!/usr/bin/env python3
"""How safe is the 12-block confirmation rule, really?

§III-D's argument in executable form: with mining concentrated in pools,
single-entity streaks long enough to threaten "final" blocks happen at
human timescales.  This example tabulates streak expectations for the
measured 2019 pool shares, replays the whole-history lookback, and
answers the practical question: how many confirmations buy a given level
of protection against the biggest pool?

Run with::

    python examples/confirmation_rule.py
"""

from __future__ import annotations

from repro.analysis.sequences import (
    expected_streaks,
    months_to_observe,
    simulate_history_epochs,
)
from repro.stats.tables import format_table

BLOCKS_PER_MONTH = 201_086

#: The paper's top-pool shares during the measurement window.
POOLS_2019 = {
    "Ethermine": 0.2532,
    "Sparkpool": 0.2288,
    "F2pool2": 0.1275,
    "Nanopool": 0.1210,
}


def streak_expectation_table() -> str:
    rows = []
    for name, share in POOLS_2019.items():
        rows.append(
            (
                name,
                f"{100 * share:.1f}%",
                f"{expected_streaks(share, 8, BLOCKS_PER_MONTH):.2f}",
                f"{expected_streaks(share, 9, BLOCKS_PER_MONTH):.2f}",
                f"{expected_streaks(share, 12, BLOCKS_PER_MONTH):.4f}",
                f"{months_to_observe(share, 12):.0f}",
            )
        )
    return format_table(
        headers=["Pool", "Share", "E[8-runs]/mo", "E[9-runs]/mo",
                 "E[12-runs]/mo", "Months per 12-run"],
        rows=rows,
        title="Expected single-pool streaks per month (2019 shares)",
    )


def confirmations_for_safety(share: float, monthly_risk: float) -> int:
    """Smallest k such that a share-p pool starts a >=k streak less than
    ``monthly_risk`` times per month in expectation."""
    for k in range(1, 200):
        if expected_streaks(share, k, BLOCKS_PER_MONTH) < monthly_risk:
            return k
    return 200


def main() -> None:
    print(streak_expectation_table())
    print()
    print("Paper cross-check: Ethermine at 25.98% should produce an 8-streak")
    print(
        f"  about {expected_streaks(0.2598, 8, BLOCKS_PER_MONTH):.1f} "
        "times per month — the paper observed exactly 4."
    )
    print()

    print("Whole-history lookback (epoch-calibrated lottery):")
    print(simulate_history_epochs(seed=5).render())
    print("  paper observed: 102 / 41 / 4 / 1 streaks of length >= 10/11/12/14")
    print()

    rows = []
    for risk, label in [(1.0, "monthly"), (1 / 12, "yearly"), (1 / 120, "decadal")]:
        rows.append(
            (
                label,
                confirmations_for_safety(0.2532, risk),
                confirmations_for_safety(0.40, risk),
                confirmations_for_safety(0.51, risk),
            )
        )
    print(
        format_table(
            headers=["Tolerated streak freq.", "vs 25% pool", "vs 40% pool",
                     "vs 51% pool"],
            rows=rows,
            title="Confirmations needed so a single pool outruns you less often",
        )
    )
    print()
    print(
        "Against 2019's biggest pool, 12 confirmations are only a ~monthly-"
        "risk guarantee; and against a majority pool no constant works — "
        "the paper's point that pool concentration voids the textbook "
        "finality analysis."
    )


if __name__ == "__main__":
    main()
