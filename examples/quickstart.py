#!/usr/bin/env python3
"""Quickstart: run a small measurement campaign and print the headline
results.

This is the five-minute tour of the library: build a simulated Ethereum
network calibrated to April 2019, deploy the paper's four geographic
vantage nodes plus the subsidiary default-peer client, run a short
measurement window, and compute a few of the paper's metrics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CampaignConfig, run_campaign
from repro.analysis import (
    block_propagation_delays,
    first_reception_shares,
    study_summary,
)
from repro.workload import ScenarioConfig, WorkloadConfig


def main() -> None:
    # A compact campaign: ~100 blocks, 30 regular nodes, light traffic.
    config = CampaignConfig(
        scenario=ScenarioConfig(
            seed=7,
            n_nodes=30,
            workload=WorkloadConfig(tx_rate=1.0, senders=60),
            gas_limit=520_000,
            warmup=80.0,
        ),
        duration=100 * 13.3,
    )
    print("Running campaign (~100 blocks, 5 vantage nodes)...")
    dataset = run_campaign(config)

    print()
    print(study_summary(dataset).render())

    print()
    propagation = block_propagation_delays(dataset)
    print(
        f"Block propagation: median "
        f"{propagation.summary.median * 1000:.0f} ms, "
        f"p95 {propagation.summary.p95 * 1000:.0f} ms "
        f"(paper: 74 ms / 211 ms)"
    )

    print()
    print(first_reception_shares(dataset).render())
    print()
    print(
        "Next steps: python -m repro.experiments.runner --preset standard "
        "regenerates every paper table and figure."
    )


if __name__ == "__main__":
    main()
