"""Tests for the transaction workload generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.node.node import ProtocolNode
from repro.p2p.network import Network
from repro.sim.engine import Simulator
from repro.workload.transactions import TransactionWorkload, WorkloadConfig


def _world(config: WorkloadConfig, seed: int = 0, nodes: int = 4):
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    entry_nodes = [
        ProtocolNode(network, Region.NORTH_AMERICA, name=f"n{i}") for i in range(nodes)
    ]
    for i, a in enumerate(entry_nodes):
        for b in entry_nodes[i + 1 :]:
            network.connect(a.node_id, b.node_id)
    workload = TransactionWorkload(simulator, entry_nodes, config)
    return simulator, entry_nodes, workload


def test_config_validation():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(tx_rate=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadConfig(senders=0)
    with pytest.raises(ConfigurationError):
        WorkloadConfig(burst_size_weights={})
    with pytest.raises(ConfigurationError):
        WorkloadConfig(burst_size_weights={0: 1.0})
    with pytest.raises(ConfigurationError):
        WorkloadConfig(multi_entry_probability=1.5)


def test_mean_burst_size():
    config = WorkloadConfig(burst_size_weights={1: 0.5, 3: 0.5})
    assert config.mean_burst_size == pytest.approx(2.0)


def test_requires_entry_nodes():
    with pytest.raises(ConfigurationError):
        TransactionWorkload(Simulator(), [], WorkloadConfig())


def test_nonces_are_sequential_per_sender():
    config = WorkloadConfig(tx_rate=5.0, senders=3)
    simulator, _, workload = _world(config)
    workload.start()
    simulator.run(until=100.0)
    by_sender: dict[str, list[int]] = {}
    for tx in workload.submitted:
        by_sender.setdefault(tx.sender, []).append(tx.nonce)
    for nonces in by_sender.values():
        assert nonces == list(range(len(nonces)))


def test_tx_rate_statistically_close():
    config = WorkloadConfig(tx_rate=2.0, senders=50)
    simulator, _, workload = _world(config, seed=5)
    workload.start()
    simulator.run(until=3000.0)
    count = len(workload.submitted)
    expected = 2.0 * 3000.0
    assert abs(count - expected) < 0.15 * expected


def test_transactions_enter_the_mempool():
    config = WorkloadConfig(tx_rate=2.0, senders=5)
    simulator, entry_nodes, workload = _world(config)
    workload.start()
    simulator.run(until=60.0)
    total_seen = sum(
        1
        for tx in workload.submitted
        if any(tx.tx_hash in node.mempool for node in entry_nodes)
    )
    assert total_seen >= len(workload.submitted) * 0.9  # tail still in flight


def test_gas_profile_values_used():
    config = WorkloadConfig(tx_rate=5.0, senders=5)
    simulator, _, workload = _world(config, seed=2)
    workload.start()
    simulator.run(until=200.0)
    allowed = {gas for gas, _ in config.gas_profiles}
    assert {tx.gas_used for tx in workload.submitted} <= allowed


def test_determinism_per_seed():
    config = WorkloadConfig(tx_rate=2.0, senders=10)

    def run() -> list[str]:
        simulator, _, workload = _world(config, seed=9)
        workload.start()
        simulator.run(until=100.0)
        return [tx.tx_hash for tx in workload.submitted]

    assert run() == run()


def test_stop_halts_submission():
    config = WorkloadConfig(tx_rate=5.0, senders=5)
    simulator, _, workload = _world(config)
    workload.start()
    simulator.run(until=50.0)
    workload.stop()
    count = len(workload.submitted)
    simulator.run(until=100.0)
    assert len(workload.submitted) == count


def test_created_at_timestamps_are_within_the_run():
    """Bursts may overlap (a sender can start a new burst before the
    previous one drains), so per-sender creation times are only loosely
    ordered — but they must all fall inside the simulated window."""
    config = WorkloadConfig(tx_rate=5.0, senders=2)
    simulator, _, workload = _world(config, seed=4)
    workload.start()
    simulator.run(until=200.0)
    assert workload.submitted
    for tx in workload.submitted:
        assert 0.0 <= tx.created_at <= 200.0 + 10.0  # intra-burst tail slack


def test_bursts_spread_creation_times():
    config = WorkloadConfig(
        tx_rate=5.0,
        senders=2,
        burst_size_weights={3: 1.0},
        intra_burst_gap=0.1,
    )
    simulator, _, workload = _world(config, seed=4)
    workload.start()
    simulator.run(until=100.0)
    spreads = {tx.created_at for tx in workload.submitted}
    assert len(spreads) > len(workload.submitted) / 2  # not all coincident
