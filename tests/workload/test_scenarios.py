"""Tests for the scenario builder."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.regions import Region
from repro.node.pool import PoolSpec
from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.workload.transactions import WorkloadConfig


def _tiny_config(**overrides) -> ScenarioConfig:
    defaults = dict(
        seed=1,
        n_nodes=6,
        pool_specs=(
            PoolSpec(name="A", hashpower=0.6, home_region=Region.EASTERN_ASIA),
            PoolSpec(name="B", hashpower=0.4, home_region=Region.NORTH_AMERICA),
        ),
        workload=WorkloadConfig(tx_rate=0.5, senders=5),
        warmup=5.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(n_nodes=1)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(inter_block_time=0)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(gas_limit=0)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(warmup=-1)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(pool_specs=())


def test_build_creates_expected_population():
    scenario = build_scenario(_tiny_config())
    assert len(scenario.regular_nodes) == 6
    assert len(scenario.pools) == 2
    # one gateway per configured gateway region
    assert len(scenario.all_nodes) == 6 + 2
    assert len(scenario.network) == 8


def test_pools_respect_gateway_regions():
    config = _tiny_config(
        pool_specs=(
            PoolSpec(
                name="Multi",
                hashpower=1.0,
                home_region=Region.EASTERN_ASIA,
                extra_gateway_regions=(Region.NORTH_AMERICA, Region.WESTERN_EUROPE),
            ),
        )
    )
    scenario = build_scenario(config)
    regions = [gateway.region for gateway in scenario.pools[0].gateways]
    assert regions == [
        Region.EASTERN_ASIA,
        Region.NORTH_AMERICA,
        Region.WESTERN_EUROPE,
    ]


def test_pool_by_name():
    scenario = build_scenario(_tiny_config())
    assert scenario.pool_by_name("A").name == "A"
    with pytest.raises(ConfigurationError):
        scenario.pool_by_name("Nope")


def test_workload_disabled_when_none():
    scenario = build_scenario(_tiny_config(workload=None))
    assert scenario.workload is None
    scenario.start()
    scenario.run_for(50.0)  # must not crash without transactions


def test_start_is_idempotent():
    scenario = build_scenario(_tiny_config())
    scenario.start()
    scenario.start()
    scenario.run_for(20.0)
    assert scenario.simulator.now >= 20.0


def test_run_for_advances_clock():
    scenario = build_scenario(_tiny_config())
    scenario.run_for(30.0)  # auto-starts
    assert scenario.simulator.now == pytest.approx(30.0)


def test_run_warmup_uses_configured_duration():
    scenario = build_scenario(_tiny_config(warmup=7.0))
    scenario.run_warmup()
    assert scenario.simulator.now == pytest.approx(7.0)


def test_same_seed_same_chain():
    def chain_hashes(seed: int):
        scenario = build_scenario(_tiny_config(seed=seed))
        scenario.start()
        scenario.run_for(300.0)
        return [
            block.block_hash
            for block in scenario.pools[0].primary.tree.canonical_chain()
        ]

    assert chain_hashes(7) == chain_hashes(7)
    assert chain_hashes(7) != chain_hashes(8)


def test_mining_produces_blocks_near_target_rate():
    scenario = build_scenario(_tiny_config(inter_block_time=5.0))
    scenario.start()
    scenario.run_for(500.0)
    wins = len(scenario.coordinator.wins)
    assert 60 <= wins <= 140  # 100 expected
