"""Tests for the April-2019 mainnet calibration."""

from __future__ import annotations

import pytest

from repro.geo.regions import Region
from repro.workload.mainnet import (
    FRINGE_POOL_NAMES,
    MAINNET_POOL_SPECS,
    TOP_POOL_NAMES,
    mainnet_pool_specs,
    total_hashpower,
)


def _spec(name: str):
    for spec in MAINNET_POOL_SPECS:
        if spec.name == name:
            return spec
    raise AssertionError(f"no spec named {name}")


def test_total_hashpower_is_one():
    assert total_hashpower() == pytest.approx(1.0, abs=1e-6)


def test_top_shares_match_figure3():
    assert _spec("Ethermine").hashpower == pytest.approx(0.2532)
    assert _spec("Sparkpool").hashpower == pytest.approx(0.2288)
    assert _spec("F2pool2").hashpower == pytest.approx(0.1275)
    assert _spec("Nanopool").hashpower == pytest.approx(0.1210)


def test_top_four_hold_majority():
    """§I: the top four Ethereum pools held ≈70% of capacity."""
    top4 = sum(spec.hashpower for spec in MAINNET_POOL_SPECS[:4])
    assert 0.6 < top4 < 0.8


def test_fifteen_named_pools_plus_fringe():
    assert len(TOP_POOL_NAMES) == 15
    assert set(FRINGE_POOL_NAMES).isdisjoint(TOP_POOL_NAMES)
    assert {spec.name for spec in MAINNET_POOL_SPECS} == set(TOP_POOL_NAMES) | set(
        FRINGE_POOL_NAMES
    )


def test_zhizhu_mines_mostly_empty_blocks():
    """Figure 6: more than 25% of Zhizhu's blocks were empty."""
    assert _spec("Zhizhu").policy.empty_block_probability > 0.25


def test_clean_pools_never_mine_empty():
    assert _spec("Nanopool").policy.empty_block_probability == 0.0
    assert _spec("Miningpoolhub1").policy.empty_block_probability == 0.0


def test_all_empty_solo_miner_exists():
    """§III-C3: one miner only ever mined empty blocks."""
    assert _spec("AllEmptyMiner").policy.empty_block_probability == 1.0
    assert _spec("AllEmptyMiner").hashpower < 0.001


def test_asian_pools_dominate():
    """The EA dominance behind Figure 2's 40% first receptions."""
    ea_share = sum(
        spec.hashpower
        for spec in MAINNET_POOL_SPECS
        if spec.home_region == Region.EASTERN_ASIA
    )
    assert ea_share > 0.4


def test_big_pools_practise_one_miner_forks():
    assert _spec("Ethermine").policy.one_miner_fork_probability > 0
    assert _spec("Sparkpool").policy.one_miner_fork_probability > 0


def test_expected_empty_share_matches_paper():
    """Weighted empty-block probability should land near 1.45% (§III-C3)."""
    expected = sum(
        spec.hashpower * spec.policy.empty_block_probability
        for spec in MAINNET_POOL_SPECS
    )
    assert 0.010 < expected < 0.020


def test_expected_one_miner_fork_rate_matches_paper():
    """§III-C5: ≈1,777 one-miner fork events over ≈201k wins ⇒ ≈0.9%."""
    expected = sum(
        spec.hashpower * spec.policy.one_miner_fork_probability
        for spec in MAINNET_POOL_SPECS
    )
    assert 0.005 < expected < 0.013


def test_specs_are_returned_by_factory():
    assert mainnet_pool_specs() == MAINNET_POOL_SPECS
