"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import cache


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "presets" in out


def test_history_command(capsys):
    assert main(["history", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Whole-history streaks" in out
    assert "paper observed" in out


def test_run_command_saves_dataset(tmp_path, capsys):
    out_path = tmp_path / "ds.jsonl"
    assert main(["run", "--preset", "small", "--seed", "91", "--out", str(out_path)]) == 0
    assert out_path.exists()
    out = capsys.readouterr().out
    assert "campaign complete" in out


def test_analyze_command_on_saved_dataset(tmp_path, capsys):
    out_path = tmp_path / "ds.jsonl"
    main(["run", "--preset", "small", "--seed", "91", "--out", str(out_path)])
    capsys.readouterr()
    code = main(["analyze", "fig1", "fig2", "--dataset", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 1" in out
    assert "Figure 2" in out


def test_analyze_unknown_experiment_fails_fast():
    with pytest.raises(Exception):
        main(["analyze", "fig99", "--preset", "small"])


def test_analyze_uses_campaign_cache(capsys):
    cache.clear_memory_cache()
    try:
        assert main(["analyze", "summary", "--preset", "small", "--seed", "92"]) == 0
        expected_key = ("small", 92, str(cache.DEFAULT_CACHE_DIR))
        assert expected_key in cache._MEMORY_CACHE
    finally:
        cache.clear_memory_cache()
    out = capsys.readouterr().out
    assert "Campaign summary" in out


@pytest.mark.slow
def test_sweep_command_runs_parallel_fleet(tmp_path, capsys):
    cache.clear_memory_cache()
    try:
        merged_out = tmp_path / "merged.jsonl"
        code = main(
            [
                "sweep",
                "--preset", "small",
                "--seed", "93",
                "--seeds", "2",
                "--jobs", "2",
                "--batch-size", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--merged-out", str(merged_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet profile" in out
        assert "2 ok, 0 failed" in out
        assert merged_out.exists()
        for seed in (93, 94):
            assert (tmp_path / "cache" / cache.cache_key("small", seed)).exists()
    finally:
        cache.clear_memory_cache()


def test_sweep_command_rejects_nonpositive_seeds(capsys):
    assert main(["sweep", "--preset", "small", "--seeds", "0"]) == 2


def test_trace_lifecycle(tmp_path, capsys):
    """run --trace-out → repro trace: summary, tree, and delta report."""
    ds_path = tmp_path / "ds.jsonl"
    tr_path = tmp_path / "tr.jsonl"
    assert (
        main(
            [
                "run",
                "--preset", "small",
                "--seed", "95",
                "--out", str(ds_path),
                "--trace-out", str(tr_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"trace saved to {tr_path}" in out
    assert tr_path.exists()

    # Summary mode: one row per canonical block.
    assert main(["trace", str(tr_path), "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "canonical blocks" in out
    assert "seed 95" in out and "preset small" in out

    # Tree mode on the head, capped.
    assert main(["trace", str(tr_path), "head", "--max-nodes", "5"]) == 0
    out = capsys.readouterr().out
    assert "block 0x" in out
    assert "injected" in out
    assert "more nodes" in out

    # Delta report against the same run's dataset.
    assert (
        main(["trace", str(tr_path), "head", "--dataset", str(ds_path)]) == 0
    )
    out = capsys.readouterr().out
    assert "ground truth vs measured" in out
    assert "WE-default" in out


def test_columnar_trace_convert_round_trip(tmp_path, capsys):
    """run → .trace.bin → JSONL → .trace.bin: same analysis either way."""
    bin_path = tmp_path / "tr.trace.bin"
    assert (
        main(
            [
                "run",
                "--preset", "small",
                "--seed", "95",
                "--trace-out", str(bin_path),
            ]
        )
        == 0
    )
    capsys.readouterr()

    def summary(path) -> str:
        assert main(["trace", str(path), "--limit", "3"]) == 0
        return capsys.readouterr().out

    columnar_summary = summary(bin_path)
    assert "seed 95" in columnar_summary

    # Columnar -> JSONL: the analysis output must not change with the
    # storage format.
    jsonl_path = tmp_path / "tr.trace.jsonl"
    assert main(["trace", "convert", str(bin_path), str(jsonl_path)]) == 0
    assert f"trace converted to {jsonl_path}" in capsys.readouterr().out
    assert summary(jsonl_path) == columnar_summary

    # JSONL -> columnar again: still the same report.
    back_path = tmp_path / "back.trace.bin"
    assert main(["trace", "convert", str(jsonl_path), str(back_path)]) == 0
    capsys.readouterr()
    assert summary(back_path) == columnar_summary


def test_trace_command_failure_modes(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot load trace" in capsys.readouterr().out
