"""FaultPlan model: validation, JSON round trip, intensity scaling."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ChurnSpec,
    CrashSpec,
    FaultPlan,
    LinkFaultSpec,
    PartitionSpec,
)


def _nonzero_plan() -> FaultPlan:
    return FaultPlan(
        churn=ChurnSpec(
            session_mean=300.0,
            downtime_mean=45.0,
            region_scale=(("EA", 0.5), ("OC", 2.0)),
        ),
        links=LinkFaultSpec(
            drop_prob=0.02, duplicate_prob=0.05, jitter_prob=0.3, jitter_mean=0.25
        ),
        partitions=(PartitionSpec(start=60.0, duration=30.0, regions=("EA", "OC")),),
        crashes=CrashSpec(mtbf=1800.0, downtime_mean=90.0),
    )


def test_default_plan_is_zero():
    assert FaultPlan().is_zero()
    assert ChurnSpec().is_zero()
    assert LinkFaultSpec().is_zero()
    assert PartitionSpec().is_zero()
    assert CrashSpec().is_zero()


def test_any_nonzero_component_makes_the_plan_nonzero():
    assert not FaultPlan(churn=ChurnSpec(session_mean=10.0)).is_zero()
    assert not FaultPlan(links=LinkFaultSpec(drop_prob=0.1)).is_zero()
    assert not FaultPlan(
        partitions=(PartitionSpec(start=0.0, duration=5.0, regions=("EA",)),)
    ).is_zero()
    assert not FaultPlan(crashes=CrashSpec(mtbf=100.0)).is_zero()
    # A degenerate partition (no duration) stays zero.
    assert FaultPlan(partitions=(PartitionSpec(),)).is_zero()


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        LinkFaultSpec(drop_prob=1.5)
    with pytest.raises(ConfigurationError):
        LinkFaultSpec(jitter_prob=0.5, jitter_mean=0.0)
    with pytest.raises(ConfigurationError):
        ChurnSpec(session_mean=-1.0)
    with pytest.raises(ConfigurationError):
        ChurnSpec(session_mean=10.0, downtime_mean=0.0)
    with pytest.raises(ConfigurationError):
        ChurnSpec(session_mean=10.0, region_scale=(("EA", 0.0),))
    with pytest.raises(ConfigurationError):
        PartitionSpec(start=10.0, duration=5.0, regions=())
    with pytest.raises(ConfigurationError):
        CrashSpec(mtbf=100.0, downtime_mean=-1.0)


def test_region_scale_lookup():
    churn = ChurnSpec(session_mean=100.0, region_scale=(("EA", 0.5),))
    assert churn.session_factor("EA") == 0.5
    assert churn.session_factor("WE") == 1.0


def test_json_round_trip_preserves_the_plan():
    plan = _nonzero_plan()
    payload = plan.to_json()
    # The payload must be plain JSON (tuples flattened to lists).
    restored = FaultPlan.from_json(json.loads(json.dumps(payload)))
    assert restored == plan


def test_save_load_round_trip(tmp_path):
    plan = _nonzero_plan()
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_load_rejects_missing_and_malformed_files(tmp_path):
    with pytest.raises(ConfigurationError):
        FaultPlan.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        FaultPlan.load(bad)
    arr = tmp_path / "arr.json"
    arr.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        FaultPlan.load(arr)


def test_from_json_rejects_newer_schema_and_bad_fields():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_json({"schema": 99})
    with pytest.raises(ConfigurationError):
        FaultPlan.from_json({"links": {"no_such_field": 1}})


def test_scaled_zero_and_identity():
    plan = _nonzero_plan()
    assert plan.scaled(0.0).is_zero()
    assert plan.scaled(1.0) is plan


def test_scaled_intensity_moves_every_knob():
    plan = _nonzero_plan()
    double = plan.scaled(2.0)
    # More churn: sessions half as long, downtime unchanged.
    assert double.churn.session_mean == pytest.approx(150.0)
    assert double.churn.downtime_mean == plan.churn.downtime_mean
    # Link fault probabilities double (clamped at 1).
    assert double.links.drop_prob == pytest.approx(0.04)
    assert double.links.jitter_prob == pytest.approx(0.6)
    assert plan.scaled(100.0).links.drop_prob == 1.0
    # Crashes twice as frequent; partitions twice as long.
    assert double.crashes.mtbf == pytest.approx(900.0)
    assert double.partitions[0].duration == pytest.approx(60.0)
    assert double.partitions[0].start == plan.partitions[0].start
