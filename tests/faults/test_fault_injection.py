"""Behavioural tests for the fault injector (churn, crash, partition,
link faults), on small two-pool scenarios."""

from __future__ import annotations

from repro.faults import (
    ChurnSpec,
    CrashSpec,
    FaultPlan,
    LinkFaultSpec,
    PartitionSpec,
)
from repro.geo.regions import Region
from repro.node.pool import PoolSpec
from repro.workload.scenarios import ScenarioConfig, build_scenario

_POOLS = (
    PoolSpec(name="A", hashpower=0.6, home_region=Region.EASTERN_ASIA),
    PoolSpec(name="B", hashpower=0.4, home_region=Region.NORTH_AMERICA),
)


def _scenario(plan, seed: int = 44, n_nodes: int = 10, **overrides):
    config = ScenarioConfig(
        seed=seed,
        n_nodes=n_nodes,
        pool_specs=_POOLS,
        workload=None,
        warmup=0.0,
        faults=plan,
        **overrides,
    )
    return build_scenario(config)


def test_zero_plan_builds_no_injector():
    assert _scenario(FaultPlan()).faults is None
    assert _scenario(None).faults is None


def test_nonzero_plan_builds_an_injector_with_hooks():
    scenario = _scenario(FaultPlan(links=LinkFaultSpec(drop_prob=0.1)))
    assert scenario.faults is not None
    assert scenario.network.faults is scenario.faults.link_hooks
    # A churn-only plan needs no link hooks at all.
    churn_only = _scenario(FaultPlan(churn=ChurnSpec(session_mean=100.0)))
    assert churn_only.faults is not None
    assert churn_only.faults.link_hooks is None
    assert churn_only.network.faults is None


def test_churn_cycles_nodes_and_rejoined_nodes_resync():
    plan = FaultPlan(churn=ChurnSpec(session_mean=80.0, downtime_mean=15.0))
    scenario = _scenario(plan)
    scenario.start()
    scenario.run_for(600.0)
    injector = scenario.faults
    assert injector is not None
    stats = injector.stats()
    assert stats["churn_sessions"] > 0
    assert stats["churn_rejoins"] > 0
    # Let in-flight sessions settle, then check sync: every currently
    # online node agrees with the gateways' chain prefix.
    reference = scenario.pools[0].primary.tree
    shared = [
        node for node in scenario.regular_nodes if node.online
    ]
    assert shared, "some regular nodes should be online"
    for node in shared:
        height = min(node.tree.head.height, reference.head.height) - 2
        if height <= 0:
            continue
        ours = [
            b.block_hash for b in node.tree.canonical_chain() if b.height <= height
        ]
        theirs = [
            b.block_hash
            for b in reference.canonical_chain()
            if b.height <= height
        ]
        assert ours == theirs


def test_offline_node_has_no_peers_and_drops_submissions():
    plan = FaultPlan(churn=ChurnSpec(session_mean=1e9))  # injector built, idle
    scenario = _scenario(plan)
    scenario.start()
    scenario.run_for(50.0)
    node = scenario.regular_nodes[0]
    assert node.online and node.peers
    node.go_offline()
    assert not node.online
    assert not node.peers
    # Offline wallets lose their submissions.
    from repro.chain.transaction import Transaction

    tx = Transaction(sender="wallet", nonce=0)
    node.submit_transaction(tx)
    assert tx.tx_hash not in node.mempool
    # And nobody can dial an offline node.
    other = scenario.regular_nodes[1]
    assert scenario.network.connect(other.node_id, node.node_id) is False
    node.go_online()
    assert node.online
    assert node.peers, "rejoin re-dials peers"


def test_crash_loses_mempool_but_keeps_chain():
    plan = FaultPlan(churn=ChurnSpec(session_mean=1e9))
    scenario = _scenario(plan)
    scenario.start()
    scenario.run_for(100.0)
    node = scenario.regular_nodes[0]
    from repro.chain.transaction import Transaction

    tx = Transaction(sender="wallet", nonce=0)
    node.submit_transaction(tx)
    height_before = node.tree.head.height
    assert height_before > 0
    assert tx.tx_hash in node.mempool
    node.go_offline(crash=True)
    assert tx.tx_hash not in node.mempool  # mempool lost
    assert node.tree.head.height == height_before  # chain persisted
    node.go_online()
    scenario.run_for(100.0)
    assert node.tree.head.height > height_before  # resynced and following


def test_crash_spec_cycles_nodes():
    plan = FaultPlan(crashes=CrashSpec(mtbf=120.0, downtime_mean=10.0))
    scenario = _scenario(plan)
    scenario.start()
    scenario.run_for(600.0)
    stats = scenario.faults.stats()
    assert stats["crashes"] > 0
    assert stats["restarts"] > 0


def test_partition_drops_cross_island_messages_then_heals():
    # Pool A (EA home) is islanded from everyone else for a window.
    plan = FaultPlan(
        partitions=(
            PartitionSpec(start=100.0, duration=100.0, regions=("EA", "SEA")),
        )
    )
    scenario = _scenario(plan, n_nodes=12)
    scenario.start()
    scenario.run_for(400.0)
    injector = scenario.faults
    assert injector is not None
    hooks = injector.link_hooks
    assert hooks is not None
    stats = injector.stats()
    assert stats["partitions_started"] == 1
    assert stats["partition_drops"] > 0
    # Healed: the island flag is clear again.
    assert not hooks.partitioned("EA", "WE")
    # And with no probabilistic faults configured, none fired.
    assert stats["link_drops"] == 0
    assert stats["link_duplicates"] == 0


def test_link_faults_fire_and_duplicates_deliver():
    plan = FaultPlan(
        links=LinkFaultSpec(
            drop_prob=0.05, duplicate_prob=0.1, jitter_prob=0.5, jitter_mean=0.2
        )
    )
    scenario = _scenario(plan)
    scenario.start()
    scenario.run_for(300.0)
    stats = scenario.faults.stats()
    assert stats["link_drops"] > 0
    assert stats["link_duplicates"] > 0
    assert stats["link_jitters"] > 0
    # The network still converges despite the faults.
    reference = scenario.pools[0].primary.tree
    assert reference.head.height > 0


def test_faulted_run_emits_trace_records_and_metrics():
    plan = FaultPlan(
        churn=ChurnSpec(session_mean=60.0, downtime_mean=10.0),
        links=LinkFaultSpec(drop_prob=0.05),
        partitions=(PartitionSpec(start=50.0, duration=50.0, regions=("EA",)),),
    )
    scenario = _scenario(plan, trace=True)
    scenario.start()
    scenario.run_for(300.0)
    recorder = scenario.simulator.trace
    kinds = {type(record).__name__ for record in recorder.events}
    assert "NodeOffline" in kinds
    assert "NodeOnline" in kinds
    assert "PartitionStarted" in kinds
    assert "PartitionHealed" in kinds
    assert "LinkFault" in kinds
    snapshot = recorder.registry.snapshot()
    assert snapshot.get("faults_node_offline_total{cause=churn}", 0) > 0
    assert snapshot.get("faults_partitions_total", 0) == 1
    assert snapshot.get("faults_link_faults_total{fault=drop}", 0) > 0


def test_fault_trace_records_round_trip_as_json():
    from repro.obs.records import trace_from_json, trace_to_json
    from repro.obs import (
        LinkFault,
        NodeOffline,
        NodeOnline,
        PartitionHealed,
        PartitionStarted,
    )

    records = [
        NodeOffline(time=1.0, node="reg-0001", crash=True),
        NodeOnline(time=2.0, node="reg-0001"),
        PartitionStarted(time=3.0, regions=("EA", "OC"), duration=60.0),
        PartitionHealed(time=63.0, regions=("EA", "OC")),
        LinkFault(
            time=4.0,
            kind="NewBlock",
            fault="jitter",
            sender="reg-0001",
            recipient="reg-0002",
            extra_delay=0.25,
        ),
    ]
    for record in records:
        assert trace_from_json(trace_to_json(record)) == record
