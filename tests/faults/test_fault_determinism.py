"""Fault-layer determinism contract (DESIGN.md §5f).

Two pins protect the whole comparison methodology:

* an **all-zeros** plan must be indistinguishable from no plan at all —
  the seed-55 canonical chain stays byte-identical (same sha256 as the
  pin in ``tests/integration/test_determinism.py``); and
* a **nonzero** plan must be reproducible: identical seeds give
  byte-identical datasets across runs and across execution modes
  (in-process sequential vs the multiprocess fleet).
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.experiments.fleet import CampaignPool, fault_grid_jobs
from repro.experiments.presets import small_campaign
from repro.faults import ChurnSpec, FaultPlan, LinkFaultSpec
from repro.measurement.campaign import Campaign

SEED_55_DIGEST = "aff2ea94748b9462f59cc134da366767120cfe31d5a30d8cf79bd20909e4c609"


def _chain_digest(dataset) -> str:
    return hashlib.sha256(
        ",".join(dataset.chain.canonical_hashes).encode()
    ).hexdigest()


def _nonzero_plan() -> FaultPlan:
    return FaultPlan(
        churn=ChurnSpec(session_mean=120.0, downtime_mean=20.0),
        links=LinkFaultSpec(
            drop_prob=0.02, duplicate_prob=0.02, jitter_prob=0.2, jitter_mean=0.2
        ),
    )


def test_all_zeros_plan_preserves_the_seed_55_pin():
    """FaultPlan() must not even perturb event-sequence tie-breaks."""
    config = replace(small_campaign(seed=55), faults=FaultPlan())
    dataset = Campaign(config).run()
    assert len(dataset.chain.canonical_hashes) == 42
    assert dataset.chain.canonical_hashes[-1] == (
        "0x11a3922b4d81ede15e19105f48671269"
    )
    assert _chain_digest(dataset) == SEED_55_DIGEST


def test_nonzero_plan_is_reproducible_and_differs_from_clean_run():
    config = replace(small_campaign(seed=55), faults=_nonzero_plan())
    first = Campaign(config).run()
    second = Campaign(replace(small_campaign(seed=55), faults=_nonzero_plan())).run()
    assert first.chain.canonical_hashes == second.chain.canonical_hashes
    assert first.block_messages == second.block_messages
    assert first.tx_receptions == second.tx_receptions
    # And the faults actually changed the world.
    assert _chain_digest(first) != SEED_55_DIGEST


def test_fault_grid_fleet_matches_sequential_byte_for_byte(tmp_path):
    """The multiprocess fleet and an in-process run serialize identically."""
    plan = _nonzero_plan()
    jobs = fault_grid_jobs(
        "small", plan, intensities=(0.0, 1.0), seeds=(55,)
    )
    pool = CampaignPool(jobs=2, cache_dir=tmp_path, use_disk=True)
    result = pool.run(jobs)
    assert not result.failures()
    by_label = {outcome.job.name: outcome for outcome in result.outcomes}

    for intensity, label in ((0.0, "faults-x0"), (1.0, "faults-x1")):
        config = replace(small_campaign(seed=55), faults=plan.scaled(intensity))
        sequential = Campaign(config).run()
        outcome = by_label[label]
        fleet_bytes = outcome.path.read_bytes()
        local_path = tmp_path / f"sequential-{label}.jsonl"
        sequential.save(local_path)
        assert fleet_bytes == local_path.read_bytes(), label

    # Intensity 0 of any plan degenerates to the clean pinned chain.
    zero = by_label["faults-x0"]
    assert _chain_digest(zero.dataset) == SEED_55_DIGEST
    one = by_label["faults-x1"]
    assert _chain_digest(one.dataset) != SEED_55_DIGEST
