"""A node joining mid-campaign must sync the existing chain.

The sync path is Status → head fetch → recursive missing-parent fetches;
this exercises orphan buffering, the fetch request/response cycle and the
head-switch logic together.
"""

from __future__ import annotations

from repro.geo.regions import Region
from repro.node.config import NodeConfig
from repro.node.node import ProtocolNode
from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.node.pool import PoolSpec


def test_late_joiner_catches_up():
    scenario = build_scenario(
        ScenarioConfig(
            seed=44,
            n_nodes=10,
            pool_specs=(
                PoolSpec(name="A", hashpower=0.6, home_region=Region.EASTERN_ASIA),
                PoolSpec(name="B", hashpower=0.4, home_region=Region.NORTH_AMERICA),
            ),
            workload=None,
            warmup=0.0,
        )
    )
    scenario.start()
    scenario.run_for(200.0)  # ≈15 blocks mined before the newcomer exists

    veteran_height = scenario.regular_nodes[0].tree.head.height
    assert veteran_height >= 5

    newcomer = ProtocolNode(
        scenario.network,
        Region.WESTERN_EUROPE,
        config=NodeConfig(max_peers=8, target_outbound=4),
        name="late-joiner",
    )
    newcomer.start()
    assert newcomer.tree.head.height == 0

    # Give the backward fetch chain time to walk the history.
    scenario.run_for(150.0)
    assert newcomer.tree.head.height >= veteran_height
    # The newcomer's canonical chain matches the network's.
    reference = scenario.regular_nodes[0].tree
    shared_height = min(newcomer.tree.head.height, reference.head.height)
    newcomer_chain = [
        b.block_hash
        for b in newcomer.tree.canonical_chain()
        if b.height <= shared_height - 2  # tail may still be racing
    ]
    reference_chain = [
        b.block_hash
        for b in reference.canonical_chain()
        if b.height <= shared_height - 2
    ]
    assert newcomer_chain == reference_chain
