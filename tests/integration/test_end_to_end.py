"""End-to-end integration tests over one shared small campaign.

These assert the cross-module invariants the unit suites cannot see:
the peer mesh forms, the chain converges across nodes, the vantage logs
support every paper analysis, and the dataset survives a save/load
round trip with analysis results intact.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    block_propagation_delays,
    commit_times,
    empty_block_analysis,
    first_reception_shares,
    fork_analysis,
    one_miner_forks,
    pool_first_receptions,
    reception_redundancy,
    sequence_analysis,
    study_summary,
)
from repro.measurement.dataset import MeasurementDataset


def test_campaign_collects_every_record_kind(small_dataset):
    assert small_dataset.block_messages
    assert small_dataset.block_imports
    assert small_dataset.tx_receptions
    assert small_dataset.connections
    assert small_dataset.chain.blocks


def test_all_five_vantages_observed_blocks(small_dataset):
    vantages_seen = {record.vantage for record in small_dataset.block_messages}
    assert vantages_seen == set(small_dataset.vantages)


def test_main_chain_grows_at_roughly_target_rate(small_dataset):
    summary = study_summary(small_dataset)
    # 13.3s target; Poisson noise over ~30 blocks is wide but bounded.
    assert 7.0 < summary.mean_inter_block < 25.0


def test_most_observed_txs_commit(small_dataset):
    summary = study_summary(small_dataset)
    assert summary.committed_share > 0.5


def test_propagation_analysis_runs(small_dataset):
    result = block_propagation_delays(small_dataset)
    assert result.summary.median < 1.0  # well under the inter-block time
    assert result.blocks_used > 10


def test_redundancy_analysis_runs(small_dataset):
    result = reception_redundancy(small_dataset)
    combined = result.row("Both combined")
    assert combined.average >= 1.0


def test_geography_analysis_runs(small_dataset):
    result = first_reception_shares(small_dataset)
    assert sum(result.shares.values()) == pytest.approx(1.0)
    pools = pool_first_receptions(small_dataset)
    assert pools.blocks_used > 0


def test_commit_analysis_runs(small_dataset):
    result = commit_times(small_dataset)
    assert result.txs_used > 0
    assert result.inclusion.quantile(0.5) > 0
    if 3 in result.confirmations:
        assert result.confirmations[3].quantile(0.5) > result.inclusion.quantile(0.5)


def test_empty_block_analysis_runs(small_dataset):
    result = empty_block_analysis(small_dataset)
    assert result.total_blocks > 10


def test_fork_and_sequence_analyses_run(small_dataset):
    forks = fork_analysis(small_dataset)
    assert forks.main_share > 0.8
    one_miner_forks(small_dataset)  # must not raise
    runs = sequence_analysis(small_dataset)
    assert runs.chain_length == forks.main_blocks


def test_every_vantage_chain_view_converges(small_dataset):
    """The reference snapshot's canonical prefix must be stable: all
    canonical hashes below the head's last few blocks are final."""
    canonical = small_dataset.chain.canonical_hashes
    assert len(canonical) > 10
    heights = [small_dataset.chain.blocks[h].height for h in canonical]
    assert heights == sorted(heights)
    assert heights == list(range(len(heights)))


def test_dataset_round_trip_preserves_analysis_results(small_dataset, tmp_path):
    path = tmp_path / "dataset.jsonl"
    small_dataset.save(path)
    restored = MeasurementDataset.load(path)
    original = block_propagation_delays(small_dataset)
    reloaded = block_propagation_delays(restored)
    assert reloaded.summary.median == pytest.approx(original.summary.median)
    assert reloaded.blocks_used == original.blocks_used


def test_experiment_runner_renders_all(small_dataset):
    from repro.experiments.registry import EXPERIMENTS

    for experiment in EXPERIMENTS:
        result = experiment.run(small_dataset)
        rendered = result.render()
        assert isinstance(rendered, str) and rendered


def test_overlay_is_geography_blind_in_live_campaign():
    """§III-B1's structural premise holds in a full campaign world."""
    from repro.experiments.presets import small_campaign
    from repro.measurement.campaign import Campaign
    from repro.p2p.topology import analyze_topology

    campaign = Campaign(small_campaign(seed=66))
    campaign.deploy()
    assert campaign.scenario is not None
    campaign.scenario.start()
    for vantage in campaign.vantages.values():
        vantage.start()
    campaign.scenario.run_for(30.0)
    report = analyze_topology(campaign.scenario.network)
    assert report.connected
    assert report.geography_blind


def test_gas_utilization_reflects_standing_backlog(small_dataset):
    from repro.analysis.gas import gas_utilization
    from repro.experiments.presets import small_campaign

    gas_limit = small_campaign().scenario.gas_limit
    result = gas_utilization(small_dataset, gas_limit)
    assert result.mean_utilization > 0.4
    assert result.blocks > 10
