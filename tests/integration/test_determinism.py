"""Whole-stack determinism: identical seeds must give identical campaigns.

Reproducibility of entire runs from a seed is a core design property
(namespaced RNG streams + deterministic event ordering); these tests
pin it at the campaign level, where any violation anywhere in the stack
would surface.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign


def _fingerprint(dataset) -> tuple:
    return (
        tuple(dataset.chain.canonical_hashes),
        len(dataset.block_messages),
        len(dataset.tx_receptions),
        len(dataset.block_imports),
        tuple(sorted(dataset.tx_duplicate_counts.items())),
    )


def test_same_seed_identical_campaign():
    a = Campaign(small_campaign(seed=55)).run()
    b = Campaign(small_campaign(seed=55)).run()
    assert a.chain.canonical_hashes == b.chain.canonical_hashes
    assert _fingerprint(a) == _fingerprint(b)
    # Record-level equality, not just counts.
    assert a.block_messages == b.block_messages
    assert a.tx_receptions == b.tx_receptions


def test_profiling_does_not_perturb_the_simulation():
    """Profiling observes the event loop; it must not change its outcome."""
    plain = Campaign(small_campaign(seed=58)).run()
    config = small_campaign(seed=58)
    config = replace(config, scenario=replace(config.scenario, profile=True))
    campaign = Campaign(config)
    profiled = campaign.run()
    assert plain.chain.canonical_hashes == profiled.chain.canonical_hashes
    assert _fingerprint(plain) == _fingerprint(profiled)
    metrics = campaign.metrics
    assert metrics.profiled
    assert sum(metrics.event_counts.values()) == metrics.events_processed


def test_different_seed_different_campaign():
    a = Campaign(small_campaign(seed=56)).run()
    b = Campaign(small_campaign(seed=57)).run()
    assert _fingerprint(a) != _fingerprint(b)


def test_canonical_chain_pinned_for_seed_55():
    """Cross-revision regression pin for the DET003 ordering fixes.

    Same-process determinism (above) cannot catch a change that is
    *consistently* different — e.g. membership structures switched from
    sets to insertion-ordered dicts, or a set iteration feeding the
    chain.  This pins the exact canonical chain for one seed; it may
    only change when a PR deliberately alters RNG draw order, and such a
    PR must say so (and regenerate EXPERIMENTS.md, as PR 1 did).
    """
    import hashlib

    dataset = Campaign(small_campaign(seed=55)).run()
    hashes = dataset.chain.canonical_hashes
    digest = hashlib.sha256(",".join(hashes).encode()).hexdigest()
    assert len(hashes) == 42
    assert hashes[-1] == "0x11a3922b4d81ede15e19105f48671269"
    assert (
        digest
        == "aff2ea94748b9462f59cc134da366767120cfe31d5a30d8cf79bd20909e4c609"
    )


def test_tracing_does_not_perturb_the_seed_55_pin():
    """Ground-truth tracing must be a pure observer.

    Trace hooks draw no randomness and schedule nothing; the metrics
    snapshotter adds events but preserves the relative sequence order of
    everything else.  The proof obligation is the same digest as the
    untraced pin above — with tracing ON.
    """
    import hashlib

    config = small_campaign(seed=55)
    config = replace(config, scenario=replace(config.scenario, trace=True))
    campaign = Campaign(config)
    dataset = campaign.run()
    hashes = dataset.chain.canonical_hashes
    digest = hashlib.sha256(",".join(hashes).encode()).hexdigest()
    assert (
        digest
        == "aff2ea94748b9462f59cc134da366767120cfe31d5a30d8cf79bd20909e4c609"
    )
    # And the trace actually observed the run.
    trace = campaign.build_trace()
    assert trace.seed == 55
    assert trace.canonical_hashes == tuple(hashes)
    assert len(trace.records) > 0


def test_queue_backend_does_not_perturb_the_seed_55_pin():
    """The calendar queue must replay the heap backend bit for bit.

    Backend choice is an implementation detail of the event loop; the
    ``(time, priority, sequence)`` drain order — and therefore every
    digest in the repo — must be invariant under it.  Both backends are
    requested *explicitly* (the config override beats the
    ``REPRO_QUEUE_BACKEND`` environment), so this comparison is
    meaningful on every CI matrix leg, whichever backend the leg pins.
    """
    import hashlib

    def run(backend: str):
        config = small_campaign(seed=55)
        config = replace(
            config, scenario=replace(config.scenario, queue_backend=backend)
        )
        return Campaign(config).run()

    heap, calendar = run("heap"), run("calendar")
    assert heap.chain.canonical_hashes == calendar.chain.canonical_hashes
    assert _fingerprint(heap) == _fingerprint(calendar)
    assert heap.block_messages == calendar.block_messages
    digest = hashlib.sha256(
        ",".join(calendar.chain.canonical_hashes).encode()
    ).hexdigest()
    assert (
        digest
        == "aff2ea94748b9462f59cc134da366767120cfe31d5a30d8cf79bd20909e4c609"
    )


def test_columnar_trace_container_is_byte_identical_for_seed_55(tmp_path):
    """Two traced runs of one seed write the same ``.trace.bin`` bytes.

    This is the columnar pipeline's determinism pin: emission order,
    symbol/id intern order, block seal points, and the binary codecs all
    feed the container, so any nondeterminism anywhere in the trace path
    diverges the files.  Byte identity holds per write strategy (an
    in-memory save groups blocks by kind, a streamed container carries
    them in seal order); across strategies the decoded record streams
    must be identical.
    """
    from itertools import zip_longest

    from repro.obs.export import Trace

    def traced(path, stream: bool) -> bytes:
        config = small_campaign(seed=55)
        config = replace(config, scenario=replace(config.scenario, trace=True))
        campaign = Campaign(config)
        if stream:
            campaign.stream_trace_to(path)
        campaign.run()
        campaign.save_trace(path, preset="small")
        return path.read_bytes()

    assert traced(tmp_path / "a.trace.bin", stream=False) == traced(
        tmp_path / "b.trace.bin", stream=False
    )
    assert traced(tmp_path / "c.trace.bin", stream=True) == traced(
        tmp_path / "d.trace.bin", stream=True
    )
    in_memory = Trace.scan(tmp_path / "a.trace.bin")
    streamed = Trace.scan(tmp_path / "c.trace.bin")
    assert streamed.canonical_hashes == in_memory.canonical_hashes
    assert streamed.record_count() == in_memory.record_count()
    for left, right in zip_longest(
        in_memory.iter_records(), streamed.iter_records()
    ):
        assert left == right
