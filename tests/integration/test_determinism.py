"""Whole-stack determinism: identical seeds must give identical campaigns.

Reproducibility of entire runs from a seed is a core design property
(namespaced RNG streams + deterministic event ordering); these tests
pin it at the campaign level, where any violation anywhere in the stack
would surface.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign


def _fingerprint(dataset) -> tuple:
    return (
        tuple(dataset.chain.canonical_hashes),
        len(dataset.block_messages),
        len(dataset.tx_receptions),
        len(dataset.block_imports),
        tuple(sorted(dataset.tx_duplicate_counts.items())),
    )


def test_same_seed_identical_campaign():
    a = Campaign(small_campaign(seed=55)).run()
    b = Campaign(small_campaign(seed=55)).run()
    assert a.chain.canonical_hashes == b.chain.canonical_hashes
    assert _fingerprint(a) == _fingerprint(b)
    # Record-level equality, not just counts.
    assert a.block_messages == b.block_messages
    assert a.tx_receptions == b.tx_receptions


def test_profiling_does_not_perturb_the_simulation():
    """Profiling observes the event loop; it must not change its outcome."""
    plain = Campaign(small_campaign(seed=58)).run()
    config = small_campaign(seed=58)
    config = replace(config, scenario=replace(config.scenario, profile=True))
    campaign = Campaign(config)
    profiled = campaign.run()
    assert plain.chain.canonical_hashes == profiled.chain.canonical_hashes
    assert _fingerprint(plain) == _fingerprint(profiled)
    metrics = campaign.metrics
    assert metrics.profiled
    assert sum(metrics.event_counts.values()) == metrics.events_processed


def test_different_seed_different_campaign():
    a = Campaign(small_campaign(seed=56)).run()
    b = Campaign(small_campaign(seed=57)).run()
    assert _fingerprint(a) != _fingerprint(b)
