"""Smoke tests: the shipped examples must run to completion.

These invoke the example scripts in-process (import-free, via runpy) so
a broken public API surfaces as a failing test, not a broken README.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, argv: list[str] | None = None) -> None:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script), *(argv or [])]
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exit_info:  # geo_vantage_study exits explicitly
        assert exit_info.code in (0, None)
    finally:
        sys.argv = old_argv


def test_confirmation_rule_example(capsys):
    _run_example("confirmation_rule.py")
    out = capsys.readouterr().out
    assert "Whole-history lookback" in out
    assert "Confirmations needed" in out


@pytest.mark.slow
def test_quickstart_example(capsys):
    _run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Block propagation" in out
    assert "Figure 2" in out


@pytest.mark.slow
def test_selfish_pools_example(capsys):
    _run_example("selfish_pools.py")
    out = capsys.readouterr().out
    assert "SelfishPool" in out
    assert "ETH" in out
