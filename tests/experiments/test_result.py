"""Tests for the experiment-result protocol."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import Experiment
from repro.experiments.result import ExperimentResult, ensure_renderable
from repro.experiments.runner import run_experiment


class _Renderable:
    def render(self) -> str:
        return "ok"


def test_analysis_dataclasses_satisfy_the_protocol_structurally():
    assert isinstance(_Renderable(), ExperimentResult)
    assert ensure_renderable(_Renderable(), "fake") .render() == "ok"


def test_non_renderable_result_fails_with_a_clear_error():
    with pytest.raises(ExperimentError, match="fig99.*render"):
        ensure_renderable({"median": 74}, "fig99")


def test_none_result_fails_with_a_clear_error():
    with pytest.raises(ExperimentError, match="NoneType"):
        ensure_renderable(None, "fig1")


def test_run_experiment_surfaces_misbehaving_experiments(monkeypatch):
    """A registered experiment whose analysis returns a bare value must
    fail as ExperimentError, not AttributeError deep in a sweep."""
    rogue = Experiment(
        "rogue", "returns a number", {}, lambda dataset: 42
    )
    monkeypatch.setattr(
        "repro.experiments.runner.get_experiment", lambda _id: rogue
    )
    with pytest.raises(ExperimentError, match="rogue"):
        run_experiment("rogue", dataset=None)
