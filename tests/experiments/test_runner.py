"""Tests for the experiments runner CLI module."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import main, run_experiment


def test_run_experiment_renders_paper_values(small_dataset):
    output = run_experiment("fig1", small_dataset)
    assert "[fig1]" in output
    assert "paper: median = 74 ms" in output
    assert "Figure 1" in output


def test_run_experiment_unknown_id(small_dataset):
    with pytest.raises(ConfigurationError):
        run_experiment("fig99", small_dataset)


def test_main_validates_before_running():
    """Unknown experiment ids must fail before the campaign is built."""
    with pytest.raises(ConfigurationError):
        main(["definitely-not-an-experiment", "--preset", "large"])


def test_main_runs_selected_experiments(capsys):
    code = main(["summary", "--preset", "small", "--seed", "95"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[summary]" in out
    assert "Campaign summary" in out


def test_main_rejects_nonpositive_seeds():
    with pytest.raises(SystemExit):
        main(["summary", "--seeds", "0"])


@pytest.mark.slow
def test_main_multi_seed_sweep_aggregates_over_the_fleet(capsys):
    """--seeds N runs the campaigns as a parallel fleet and the analyses
    consume the merged multi-seed dataset."""
    code = main(
        [
            "summary", "--preset", "small", "--seed", "96",
            "--seeds", "2", "--jobs", "2", "--batch-size", "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Fleet profile" in out
    assert "2 ok, 0 failed" in out
    assert "[summary]" in out
