"""Tests for the experiments runner CLI module."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import main, run_experiment


def test_run_experiment_renders_paper_values(small_dataset):
    output = run_experiment("fig1", small_dataset)
    assert "[fig1]" in output
    assert "paper: median = 74 ms" in output
    assert "Figure 1" in output


def test_run_experiment_unknown_id(small_dataset):
    with pytest.raises(ConfigurationError):
        run_experiment("fig99", small_dataset)


def test_main_validates_before_running():
    """Unknown experiment ids must fail before the campaign is built."""
    with pytest.raises(ConfigurationError):
        main(["definitely-not-an-experiment", "--preset", "large"])


def test_main_runs_selected_experiments(capsys):
    code = main(["summary", "--preset", "small", "--seed", "95"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[summary]" in out
    assert "Campaign summary" in out
