"""Tests for the full-population ``mainnet`` preset.

The 15k-peer preset itself is exercised by ``benchmarks/bench_mainnet.py``
(running it takes minutes); these tests pin its *configuration* and run a
scaled-down smoke campaign through the identical code path — degree
sampling, propagation-only workload, batched fan-out — with a seed-pinned
canonical chain so draw-order regressions on the mainnet path surface in
the tier-1 suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.experiments.presets import mainnet_campaign, preset
from repro.measurement.campaign import Campaign
from repro.node.miner import MAINNET_INTER_BLOCK_TIME
from repro.p2p.degrees import DegreeDistribution
from repro.workload.scenarios import build_scenario


def _smoke_config(seed: int = 55):
    """The mainnet preset scaled to tier-1-test size.

    Everything but the population and window matches the real preset, so
    the smoke run covers the same code path: heavy-tailed degree caps
    drawn from ``scenario.degrees``, no transaction workload, batched
    block gossip.
    """
    config = mainnet_campaign(seed=seed)
    return replace(
        config,
        duration=20 * MAINNET_INTER_BLOCK_TIME,
        scenario=replace(config.scenario, n_nodes=150),
    )


def test_mainnet_preset_shape():
    config = preset("mainnet", seed=9)
    assert config.scenario.seed == 9
    assert config.scenario.n_nodes == 15_000
    assert config.scenario.workload is None
    assert isinstance(config.scenario.degrees, DegreeDistribution)


def test_mainnet_degrees_produce_heterogeneous_caps():
    """The sampled degree caps must actually vary and respect the bounds."""
    config = _smoke_config()
    scenario = build_scenario(config.scenario)
    caps = [node.config.max_peers for node in scenario.regular_nodes]
    dist = config.scenario.degrees
    assert min(caps) >= dist.min_degree
    assert max(caps) <= dist.max_degree
    assert len(set(caps)) > 5  # heavy-tailed, not homogeneous
    # Outbound targets scale with the cap but never drop below the floor.
    for node in scenario.regular_nodes:
        assert node.config.target_outbound == max(2, node.config.max_peers // 2)


def test_mainnet_smoke_canonical_chain_pinned():
    """Seed-pinned regression for the mainnet code path.

    Same contract as the seed-55 small-campaign pin: this digest may only
    change when a PR deliberately alters RNG draw order, and such a PR
    must say so.  Two in-process runs must also agree bit-for-bit.
    """
    first = Campaign(_smoke_config(seed=55)).run()
    second = Campaign(_smoke_config(seed=55)).run()
    assert first.chain.canonical_hashes == second.chain.canonical_hashes

    hashes = first.chain.canonical_hashes
    digest = hashlib.sha256(",".join(hashes).encode()).hexdigest()
    assert len(hashes) == 29
    assert hashes[-1] == "0x27860f438a83ab12ec255629ca3e5bde"
    assert (
        digest
        == "8a86a8f682a43d12b88982a0f64859a1f261e7b24d889c9b05f403ba913e6765"
    )


def test_mainnet_smoke_identical_across_queue_backends():
    """The batched mainnet path drains identically on both queue backends.

    The smoke campaign covers the arity-5 batched gossip entries and the
    engine's inlined calendar loop; explicit backend overrides keep the
    comparison meaningful on every CI matrix leg.
    """

    def run(backend: str):
        config = _smoke_config(seed=55)
        return Campaign(
            replace(
                config,
                scenario=replace(config.scenario, queue_backend=backend),
            )
        ).run()

    heap, calendar = run("heap"), run("calendar")
    assert heap.chain.canonical_hashes == calendar.chain.canonical_hashes
    assert heap.block_messages == calendar.block_messages
    digest = hashlib.sha256(
        ",".join(calendar.chain.canonical_hashes).encode()
    ).hexdigest()
    assert (
        digest
        == "8a86a8f682a43d12b88982a0f64859a1f261e7b24d889c9b05f403ba913e6765"
    )
