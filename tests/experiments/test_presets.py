"""Tests for campaign presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.presets import (
    large_campaign,
    preset,
    small_campaign,
    standard_campaign,
)


def test_presets_scale_up():
    small = small_campaign()
    standard = standard_campaign()
    large = large_campaign()
    assert small.duration < standard.duration < large.duration
    assert small.scenario.n_nodes < standard.scenario.n_nodes <= large.scenario.n_nodes


def test_preset_lookup():
    assert preset("small").duration == small_campaign().duration
    assert preset("large", seed=7).scenario.seed == 7


def test_unknown_preset_rejected():
    with pytest.raises(ConfigurationError):
        preset("gigantic")


def test_presets_deploy_default_peer_vantage():
    """Table II needs the subsidiary 25-peer vantage in every preset."""
    for config in (small_campaign(), standard_campaign(), large_campaign()):
        assert config.deploy_default_peer_vantage


def test_presets_use_four_paper_vantages():
    for config in (small_campaign(), standard_campaign(), large_campaign()):
        assert len(config.vantage_regions) == 4


def test_seed_propagates_to_scenario():
    assert small_campaign(seed=42).scenario.seed == 42
