"""Tests for the parallel campaign fleet.

The load-bearing guarantees: job specs validate eagerly, a warm-pool
sweep is *bit-identical* to sequential execution for the same seeds
(including across batch boundaries), a raising job is retried, a worker
that *dies* mid-batch is respawned with its batch requeued, duplicate
jobs are deduplicated, a persistently failing job becomes a per-job
failure without sinking the sweep, and jobs already in the disk cache
are served — with their persisted event counts — without running a
worker.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, FleetError
from repro.experiments import cache
from repro.experiments.fleet import (
    CampaignJob,
    CampaignPool,
    _auto_batch_size,
    config_digest,
    seed_sweep_jobs,
)
from repro.experiments.presets import small_campaign
from repro.geo.regions import Region
from repro.measurement.campaign import Campaign


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    cache.clear_memory_cache()
    yield
    cache.clear_memory_cache()


# ---------------------------------------------------------------------- #
# Job specs
# ---------------------------------------------------------------------- #


def test_job_requires_exactly_one_source():
    with pytest.raises(FleetError):
        CampaignJob()
    with pytest.raises(FleetError):
        CampaignJob(preset_name="small", config=small_campaign(), label="x")


def test_config_job_requires_label():
    with pytest.raises(FleetError):
        CampaignJob(config=small_campaign())


def test_job_rejects_hostile_label():
    with pytest.raises(FleetError):
        CampaignJob(config=small_campaign(), label="../escape")


def test_job_rejects_unknown_preset_eagerly():
    with pytest.raises(ConfigurationError):
        CampaignJob(preset_name="galactic")


def test_config_job_seed_overrides_scenario_seed():
    job = CampaignJob(config=small_campaign(seed=1), label="variant", seed=9)
    assert job.resolved_config().scenario.seed == 9


def test_preset_job_cache_filename_matches_cache_key():
    job = CampaignJob(preset_name="small", seed=7)
    assert job.cache_filename() == cache.cache_key("small", 7)


def test_config_job_cache_filename_tracks_config_changes():
    base = small_campaign(seed=1)
    job = CampaignJob(config=base, label="variant", seed=1)
    changed = CampaignJob(
        config=replace(base, duration=base.duration + 13.3),
        label="variant",
        seed=1,
    )
    assert "variant" in job.cache_filename()
    assert job.cache_filename() != changed.cache_filename()
    assert config_digest(base) != config_digest(changed.config)


def test_pool_rejects_zero_workers_and_empty_sweeps():
    with pytest.raises(FleetError):
        CampaignPool(jobs=0)
    with pytest.raises(FleetError):
        CampaignPool(jobs=1).run([])
    with pytest.raises(FleetError):
        CampaignPool(jobs=1, batch_size=0)


def test_meta_filename_is_a_cache_sibling():
    job = CampaignJob(preset_name="small", seed=7)
    assert job.meta_filename() == "campaign-small-seed7.meta.json"
    traced = CampaignJob(preset_name="small", seed=7, trace=True)
    # The meta sibling is shared with the untraced twin, like the dataset.
    assert traced.meta_filename() == job.meta_filename()


def test_dedup_key_separates_trace_but_not_labels():
    plain = CampaignJob(preset_name="small", seed=7)
    twin = CampaignJob(preset_name="small", seed=7)
    traced = CampaignJob(preset_name="small", seed=7, trace=True)
    other_seed = CampaignJob(preset_name="small", seed=8)
    assert plain.dedup_key() == twin.dedup_key()
    # A traced twin still has to run to export the .trace.jsonl sibling.
    assert plain.dedup_key() != traced.dedup_key()
    assert plain.dedup_key() != other_seed.dedup_key()


def test_auto_batch_size_targets_four_waves_per_worker():
    assert _auto_batch_size(4, 4) == 1
    assert _auto_batch_size(64, 4) == 4
    assert _auto_batch_size(1, 1) == 1
    assert _auto_batch_size(100, 2) == 13


def test_traced_and_untraced_jobs_share_a_cache_entry():
    plain = CampaignJob(preset_name="small", seed=7)
    traced = CampaignJob(preset_name="small", seed=7, trace=True)
    assert traced.resolved_config().scenario.trace is True
    assert plain.resolved_config().scenario.trace is False
    # The dataset is bit-identical with tracing on, so the cache entry
    # is shared; only the .trace.bin sibling differs.
    assert traced.cache_filename() == plain.cache_filename()
    assert traced.trace_filename().endswith(".trace.bin")
    labeled = CampaignJob(
        config=small_campaign(seed=1), label="variant", seed=1
    )
    labeled_traced = CampaignJob(
        config=small_campaign(seed=1), label="variant", seed=1, trace=True
    )
    assert labeled.cache_filename() == labeled_traced.cache_filename()


def test_traced_jobs_require_the_disk_cache():
    pool = CampaignPool(jobs=1, use_disk=False)
    with pytest.raises(FleetError, match="use_disk"):
        pool.run([CampaignJob(preset_name="small", seed=1, trace=True)])


# ---------------------------------------------------------------------- #
# Parallel/sequential equivalence + cache-aware scheduling
# ---------------------------------------------------------------------- #


@pytest.mark.slow
def test_parallel_sweep_bit_identical_and_cache_aware(tmp_path):
    """A 2-worker warm-pool sweep over seeds {1, 2, 3} with batch_size=2
    (so one worker runs two campaigns back-to-back in one process)
    produces datasets byte-identical (after the JSONL round-trip) to
    sequential ``Campaign(...).run()`` — and a rerun over the warm cache
    runs no workers at all while still reporting the persisted per-seed
    event counts."""
    seeds = (1, 2, 3)
    sequential_dir = tmp_path / "sequential"
    sequential_dir.mkdir()
    for seed in seeds:
        dataset = Campaign(small_campaign(seed=seed)).run()
        dataset.save(sequential_dir / f"seed{seed}.jsonl")

    fleet_dir = tmp_path / "fleet"
    pool = CampaignPool(jobs=2, cache_dir=fleet_dir, use_disk=True, batch_size=2)
    result = pool.run(seed_sweep_jobs("small", seeds))
    result.raise_on_failure()
    assert result.metrics.jobs_succeeded == 3
    assert result.metrics.total_events > 0
    for seed, outcome in zip(seeds, result.outcomes):
        assert outcome.job.seed == seed
        sequential_bytes = (sequential_dir / f"seed{seed}.jsonl").read_bytes()
        assert outcome.path.read_bytes() == sequential_bytes

    rerun = pool.run(seed_sweep_jobs("small", seeds))
    assert rerun.metrics.cache_hits == 3
    assert all(o.from_cache and o.attempts == 0 for o in rerun.outcomes)
    assert [
        d.chain.canonical_hashes for d in rerun.datasets()
    ] == [d.chain.canonical_hashes for d in result.datasets()]
    # Event counts survive the cache round-trip via the .meta.json
    # sibling, but don't inflate the sweep's *executed* throughput.
    for fresh, cached in zip(result.outcomes, rerun.outcomes):
        assert cached.events_processed == fresh.events_processed > 0
        assert cached.sim_metrics is not None
    assert rerun.metrics.total_events == 0
    assert rerun.metrics.cached_events == result.metrics.total_events


@pytest.mark.slow
def test_duplicate_jobs_dedup_to_one_worker_run(tmp_path):
    """Identical (config, seed) jobs in one sweep run once; the
    duplicates adopt the primary's outcome instead of racing on the
    same cache file."""
    pool = CampaignPool(jobs=2, cache_dir=tmp_path / "cache", use_disk=True)
    result = pool.run(
        [
            CampaignJob(preset_name="small", seed=41),
            CampaignJob(preset_name="small", seed=41),
            CampaignJob(preset_name="small", seed=41),
        ]
    )
    result.raise_on_failure()
    primary, *dups = result.outcomes
    assert result.metrics.deduped == 2
    assert result.metrics.jobs_succeeded == 3
    assert not primary.deduped and primary.attempts == 1
    for dup in dups:
        assert dup.deduped
        assert dup.attempts == 0
        assert dup.dataset is primary.dataset
        assert dup.events_processed == primary.events_processed
        assert dup.path == primary.path
    # Executed events counted once, not three times.
    assert result.metrics.total_events == primary.events_processed


@pytest.mark.slow
def test_traced_sweep_exports_trace_and_sim_metrics(tmp_path):
    """A traced job ships a loadable trace next to its cache entry and a
    full per-worker SimMetrics snapshot; a cached-dataset job without a
    trace sibling still spawns a worker to produce one."""
    from repro.obs.export import Trace

    cache_dir = tmp_path / "cache"
    pool = CampaignPool(jobs=1, cache_dir=cache_dir, use_disk=True)

    # Warm the dataset cache WITHOUT a trace.
    first = pool.run([CampaignJob(preset_name="small", seed=3)])
    first.raise_on_failure()
    assert first.outcomes[0].trace_path is None
    assert first.outcomes[0].sim_metrics is not None
    assert first.outcomes[0].sim_metrics.events_processed > 0
    assert first.outcomes[0].events_per_second > 0

    # Same job traced: the dataset is cached, but the missing trace
    # sibling forces a worker run.
    traced = pool.run([CampaignJob(preset_name="small", seed=3, trace=True)])
    traced.raise_on_failure()
    outcome = traced.outcomes[0]
    assert not outcome.from_cache
    assert outcome.trace_path is not None and outcome.trace_path.exists()
    assert outcome.trace_path.parent == cache_dir
    # The worker streams the columnar container, block by block.
    from repro.obs.binio import is_binary_trace

    assert outcome.trace_path.name.endswith(".trace.bin")
    assert is_binary_trace(outcome.trace_path)
    trace = Trace.load(outcome.trace_path)
    assert trace.seed == 3
    assert trace.preset == "small"
    assert trace.canonical_hashes == outcome.dataset.chain.canonical_hashes
    assert len(trace.records) > 0

    # Rerun: now both dataset and trace are cached — pure cache hit.
    rerun = pool.run([CampaignJob(preset_name="small", seed=3, trace=True)])
    assert rerun.metrics.cache_hits == 1
    assert rerun.outcomes[0].trace_path == outcome.trace_path


# ---------------------------------------------------------------------- #
# Fault tolerance
# ---------------------------------------------------------------------- #


@pytest.mark.slow
def test_flaky_worker_is_retried_and_sweep_completes(tmp_path, monkeypatch):
    """A worker that raises on its first attempt is retried; the retry
    succeeds and the sweep completes.  Failure injection rides on the
    ``fork`` start method: the patched ``Campaign.run`` and the marker
    file are both visible inside the worker."""
    marker = tmp_path / "fail-once"
    marker.touch()
    original_run = Campaign.run

    def flaky_run(self):
        if marker.exists():
            marker.unlink()
            raise RuntimeError("injected transient failure")
        return original_run(self)

    monkeypatch.setattr(Campaign, "run", flaky_run)
    pool = CampaignPool(jobs=1, retries=1, start_method="fork")
    result = pool.run([CampaignJob(preset_name="small", seed=31)])
    outcome = result.outcomes[0]
    assert outcome.ok
    assert outcome.attempts == 2
    assert result.metrics.retries == 1
    assert result.metrics.jobs_failed == 0
    assert not marker.exists()


@pytest.mark.slow
def test_mid_batch_worker_crash_requeues_rest_of_batch(tmp_path, monkeypatch):
    """A worker killed partway through a two-job batch charges an attempt
    only to the job it died on; the untouched rest of the batch is
    requeued for free and the respawned worker finishes the sweep."""
    marker = tmp_path / "kill-once"
    marker.touch()
    original_run = Campaign.run

    def killer_run(self):
        # Die hard (no exception, no meta report) on the second batch
        # job's first attempt — simulating an OOM kill mid-batch.
        if self.config.scenario.seed == 35 and marker.exists():
            marker.unlink()
            os._exit(9)
        return original_run(self)

    monkeypatch.setattr(Campaign, "run", killer_run)
    pool = CampaignPool(
        jobs=1,
        retries=1,
        cache_dir=tmp_path / "cache",
        use_disk=True,
        start_method="fork",
        batch_size=2,
    )
    result = pool.run(
        [
            CampaignJob(preset_name="small", seed=34),
            CampaignJob(preset_name="small", seed=35),
        ]
    )
    result.raise_on_failure()
    survivor, crashed = result.outcomes
    assert survivor.ok and crashed.ok
    assert crashed.attempts == 2  # in flight when the worker died
    assert survivor.attempts == 1  # requeued without an attempt charge
    assert result.metrics.retries == 1
    assert not marker.exists()


@pytest.mark.slow
def test_worker_killed_without_report_synthesizes_a_clear_error(
    tmp_path, monkeypatch
):
    """A worker that dies before writing its meta report (every attempt)
    surfaces as a per-job failure naming the exitcode, not a silent hang
    or an unexplained empty error."""

    def always_die(self):
        os._exit(9)

    monkeypatch.setattr(Campaign, "run", always_die)
    pool = CampaignPool(jobs=1, retries=0, start_method="fork")
    result = pool.run([CampaignJob(preset_name="small", seed=36)])
    outcome = result.outcomes[0]
    assert not outcome.ok
    assert "exitcode 9" in outcome.error
    assert "no report" in outcome.error
    assert result.metrics.jobs_failed == 1


def test_persistent_failure_is_reported_without_sinking_the_sweep(tmp_path):
    """A job that fails on every attempt ends up as a per-job failure;
    the healthy jobs in the same sweep still complete."""
    # Duplicate vantage regions fail fast at deploy time, inside the worker.
    broken = replace(
        small_campaign(seed=1),
        vantage_regions=(Region.WESTERN_EUROPE, Region.WESTERN_EUROPE),
    )
    progress_lines: list[str] = []
    pool = CampaignPool(
        jobs=2, retries=1, cache_dir=tmp_path, progress=progress_lines.append
    )
    result = pool.run(
        [
            CampaignJob(config=broken, label="broken", seed=1),
            CampaignJob(preset_name="small", seed=32),
        ]
    )
    failed, healthy = result.outcomes
    assert not failed.ok
    assert failed.attempts == 2  # first attempt + one retry
    assert "duplicate vantage region" in failed.error
    assert healthy.ok
    assert result.metrics.jobs_failed == 1
    assert result.metrics.jobs_succeeded == 1
    with pytest.raises(FleetError, match="broken"):
        result.raise_on_failure()
    assert any("[fleet]" in line for line in progress_lines)


def test_adopted_preset_datasets_land_in_the_memory_cache(tmp_path):
    """Worker-produced preset datasets flow through campaign_dataset, so
    in-process consumers get them without re-running the campaign."""
    pool = CampaignPool(jobs=1, cache_dir=tmp_path, use_disk=True)
    result = pool.run([CampaignJob(preset_name="small", seed=33)])
    result.raise_on_failure()
    adopted = cache.campaign_dataset(
        "small", 33, cache_dir=tmp_path, use_disk=True
    )
    assert adopted is result.outcomes[0].dataset
