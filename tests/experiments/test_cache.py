"""Tests for campaign dataset caching."""

from __future__ import annotations

from repro.experiments import cache
from repro.measurement.dataset import MeasurementDataset


def test_memory_cache_returns_same_object():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=21)
    b = cache.campaign_dataset("small", seed=21)
    assert a is b
    cache.clear_memory_cache()


def test_different_seed_different_dataset():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=22)
    b = cache.campaign_dataset("small", seed=23)
    assert a is not b
    cache.clear_memory_cache()


def test_disk_cache_round_trip(tmp_path):
    cache.clear_memory_cache()
    first = cache.campaign_dataset("small", seed=24, cache_dir=tmp_path, use_disk=True)
    path = tmp_path / cache.cache_key("small", 24)
    assert path.exists()
    cache.clear_memory_cache()
    second = cache.campaign_dataset(
        "small", seed=24, cache_dir=tmp_path, use_disk=True
    )
    assert isinstance(second, MeasurementDataset)
    assert second.chain.canonical_hashes == first.chain.canonical_hashes
    cache.clear_memory_cache()


def test_corrupt_disk_cache_regenerates(tmp_path):
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 25)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("")  # corrupt
    dataset = cache.campaign_dataset(
        "small", seed=25, cache_dir=tmp_path, use_disk=True
    )
    assert dataset.chain.blocks
    cache.clear_memory_cache()
