"""Tests for campaign dataset caching."""

from __future__ import annotations

import multiprocessing

from repro.experiments import cache
from repro.measurement.dataset import MeasurementDataset


def test_memory_cache_returns_same_object():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=21)
    b = cache.campaign_dataset("small", seed=21)
    assert a is b
    cache.clear_memory_cache()


def test_different_seed_different_dataset():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=22)
    b = cache.campaign_dataset("small", seed=23)
    assert a is not b
    cache.clear_memory_cache()


def test_disk_cache_round_trip(tmp_path):
    cache.clear_memory_cache()
    first = cache.campaign_dataset("small", seed=24, cache_dir=tmp_path, use_disk=True)
    path = tmp_path / cache.cache_key("small", 24)
    assert path.exists()
    cache.clear_memory_cache()
    second = cache.campaign_dataset(
        "small", seed=24, cache_dir=tmp_path, use_disk=True
    )
    assert isinstance(second, MeasurementDataset)
    assert second.chain.canonical_hashes == first.chain.canonical_hashes
    cache.clear_memory_cache()


def test_corrupt_disk_cache_regenerates(tmp_path):
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 25)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("")  # corrupt
    dataset = cache.campaign_dataset(
        "small", seed=25, cache_dir=tmp_path, use_disk=True
    )
    assert dataset.chain.blocks
    cache.clear_memory_cache()


def test_garbage_disk_cache_regenerates(tmp_path):
    """Truncated/garbage JSONL (JSONDecodeError, bad tags) must not leak
    out of the loader — the campaign regenerates and overwrites it."""
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 26)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"kind": "not-a-real-record"}\n{truncated garbage')
    dataset = cache.campaign_dataset(
        "small", seed=26, cache_dir=tmp_path, use_disk=True
    )
    assert dataset.chain.blocks
    # The regenerated dataset replaced the corrupt file on disk.
    cache.clear_memory_cache()
    reloaded = cache.campaign_dataset(
        "small", seed=26, cache_dir=tmp_path, use_disk=True
    )
    assert reloaded.chain.canonical_hashes == dataset.chain.canonical_hashes
    cache.clear_memory_cache()


def test_save_is_atomic_and_leaves_no_tmp_sibling(tmp_path, small_dataset):
    path = tmp_path / "ds.jsonl"
    small_dataset.save(path)
    assert path.exists()
    assert list(tmp_path.glob("*.tmp")) == []


def test_interrupted_write_cannot_corrupt_the_cache(tmp_path, small_dataset):
    """A killed writer leaves only a truncated ``.tmp`` sibling behind;
    readers of the real path must never see it."""
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 28)
    cache.store_dataset(small_dataset, path)
    # Simulate a writer killed mid-stream: a half-written tmp sibling.
    stale = path.with_name(f"{path.name}.31337.tmp")
    stale.write_text('{"_type": "Header", "vantage_regio')
    loaded = cache.load_cached_dataset(path)
    assert loaded is not None
    assert loaded.chain.canonical_hashes == small_dataset.chain.canonical_hashes
    # And the tolerant loader treats the truncated tmp itself as a miss.
    assert cache.load_cached_dataset(stale) is None
    cache.clear_memory_cache()


def _hammer_saves(dataset, path: str, rounds: int) -> None:
    for _ in range(rounds):
        dataset.save(path)


def test_two_processes_writing_one_cache_path_never_corrupt_reads(
    tmp_path, small_dataset
):
    """Two processes repeatedly replacing the same cache file while the
    parent reads it: every read must parse as a complete dataset."""
    path = tmp_path / cache.cache_key("small", 29)
    cache.store_dataset(small_dataset, path)
    context = multiprocessing.get_context("fork")
    writers = [
        context.Process(
            target=_hammer_saves, args=(small_dataset, str(path), 5)
        )
        for _ in range(2)
    ]
    for writer in writers:
        writer.start()
    expected = small_dataset.chain.canonical_hashes
    reads = 0
    while any(writer.is_alive() for writer in writers):
        loaded = MeasurementDataset.load(path)
        assert loaded.chain.canonical_hashes == expected
        reads += 1
    for writer in writers:
        writer.join()
        assert writer.exitcode == 0
    assert reads > 0
    assert MeasurementDataset.load(path).chain.canonical_hashes == expected


def test_campaign_dataset_adopts_materialized_dataset(tmp_path, small_dataset):
    """An already-materialized dataset (e.g. from a fleet worker) enters
    both cache layers without re-running the campaign."""
    cache.clear_memory_cache()
    adopted = cache.campaign_dataset(
        "small", 30, cache_dir=tmp_path, use_disk=True, dataset=small_dataset
    )
    assert adopted is small_dataset
    disk_path = tmp_path / cache.cache_key("small", 30)
    assert disk_path.exists()
    # Memory cache serves the adopted object back.
    assert (
        cache.campaign_dataset("small", 30, cache_dir=tmp_path, use_disk=True)
        is small_dataset
    )
    cache.clear_memory_cache()


def test_memory_cache_keys_on_cache_dir(tmp_path):
    """Datasets loaded from a private cache_dir must not shadow (or be
    shadowed by) the default-directory entry for the same preset/seed."""
    cache.clear_memory_cache()
    stale = tmp_path / cache.cache_key("small", 27)
    stale.parent.mkdir(parents=True, exist_ok=True)
    first = cache.campaign_dataset(
        "small", seed=27, cache_dir=tmp_path, use_disk=True
    )
    # Same preset/seed, different directory: a fresh memory entry, not
    # the tmp_path one.
    other_dir = tmp_path / "elsewhere"
    second = cache.campaign_dataset(
        "small", seed=27, cache_dir=other_dir, use_disk=False
    )
    assert first is not second
    keys = set(cache._MEMORY_CACHE)
    assert ("small", 27, str(tmp_path)) in keys
    assert ("small", 27, str(other_dir)) in keys
    cache.clear_memory_cache()
