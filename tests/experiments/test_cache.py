"""Tests for campaign dataset caching."""

from __future__ import annotations

from repro.experiments import cache
from repro.measurement.dataset import MeasurementDataset


def test_memory_cache_returns_same_object():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=21)
    b = cache.campaign_dataset("small", seed=21)
    assert a is b
    cache.clear_memory_cache()


def test_different_seed_different_dataset():
    cache.clear_memory_cache()
    a = cache.campaign_dataset("small", seed=22)
    b = cache.campaign_dataset("small", seed=23)
    assert a is not b
    cache.clear_memory_cache()


def test_disk_cache_round_trip(tmp_path):
    cache.clear_memory_cache()
    first = cache.campaign_dataset("small", seed=24, cache_dir=tmp_path, use_disk=True)
    path = tmp_path / cache.cache_key("small", 24)
    assert path.exists()
    cache.clear_memory_cache()
    second = cache.campaign_dataset(
        "small", seed=24, cache_dir=tmp_path, use_disk=True
    )
    assert isinstance(second, MeasurementDataset)
    assert second.chain.canonical_hashes == first.chain.canonical_hashes
    cache.clear_memory_cache()


def test_corrupt_disk_cache_regenerates(tmp_path):
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 25)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("")  # corrupt
    dataset = cache.campaign_dataset(
        "small", seed=25, cache_dir=tmp_path, use_disk=True
    )
    assert dataset.chain.blocks
    cache.clear_memory_cache()


def test_garbage_disk_cache_regenerates(tmp_path):
    """Truncated/garbage JSONL (JSONDecodeError, bad tags) must not leak
    out of the loader — the campaign regenerates and overwrites it."""
    cache.clear_memory_cache()
    path = tmp_path / cache.cache_key("small", 26)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"kind": "not-a-real-record"}\n{truncated garbage')
    dataset = cache.campaign_dataset(
        "small", seed=26, cache_dir=tmp_path, use_disk=True
    )
    assert dataset.chain.blocks
    # The regenerated dataset replaced the corrupt file on disk.
    cache.clear_memory_cache()
    reloaded = cache.campaign_dataset(
        "small", seed=26, cache_dir=tmp_path, use_disk=True
    )
    assert reloaded.chain.canonical_hashes == dataset.chain.canonical_hashes
    cache.clear_memory_cache()


def test_memory_cache_keys_on_cache_dir(tmp_path):
    """Datasets loaded from a private cache_dir must not shadow (or be
    shadowed by) the default-directory entry for the same preset/seed."""
    cache.clear_memory_cache()
    stale = tmp_path / cache.cache_key("small", 27)
    stale.parent.mkdir(parents=True, exist_ok=True)
    first = cache.campaign_dataset(
        "small", seed=27, cache_dir=tmp_path, use_disk=True
    )
    # Same preset/seed, different directory: a fresh memory entry, not
    # the tmp_path one.
    other_dir = tmp_path / "elsewhere"
    second = cache.campaign_dataset(
        "small", seed=27, cache_dir=other_dir, use_disk=False
    )
    assert first is not second
    keys = set(cache._MEMORY_CACHE)
    assert ("small", 27, str(tmp_path)) in keys
    assert ("small", 27, str(other_dir)) in keys
    cache.clear_memory_cache()
