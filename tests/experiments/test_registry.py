"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiment_ids,
    get_experiment,
)


def test_every_paper_artifact_is_registered():
    ids = set(all_experiment_ids())
    assert {
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table2",
        "table3",
        "oneminer",
        "summary",
        "txprop",
        "censorship",
        "decentralization",
        "unclerule",
    } <= ids


def test_experiment_ids_are_unique():
    ids = all_experiment_ids()
    assert len(ids) == len(set(ids))


def test_get_experiment():
    experiment = get_experiment("fig1")
    assert "propagation" in experiment.title.lower()
    assert callable(experiment.run)


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


def test_paper_values_present_for_all():
    for experiment in EXPERIMENTS:
        assert experiment.paper_values, experiment.experiment_id
        assert experiment.title
