"""Tests for the EXPERIMENTS.md report generator."""

from __future__ import annotations

from repro.experiments.report import render_report


def test_report_covers_every_experiment(small_dataset):
    report = render_report(small_dataset, "small", seed=11)
    for heading in ("Figure 1", "Figure 7", "Table II", "Table III", "§III-C5"):
        assert heading in report


def test_report_includes_paper_values(small_dataset):
    report = render_report(small_dataset, "small", seed=11)
    assert "Paper reports:" in report
    assert "74 ms" in report  # Figure 1's paper median


def test_report_is_valid_markdown_shape(small_dataset):
    report = render_report(small_dataset, "small", seed=11)
    assert report.startswith("# EXPERIMENTS")
    assert report.count("```") % 2 == 0  # balanced code fences


def test_report_survives_uncomputable_analyses():
    """A dataset with no transactions must yield a report, not a crash."""
    from helpers import DatasetBuilder

    builder = DatasetBuilder()
    builder.add_main_chain(["A", "B"])
    report = render_report(builder.build(), "synthetic", seed=0)
    assert "not computable" in report
