"""Per-rule fixtures: each rule must fire on the hazard and stay quiet on
the idiomatic fix.  These snippets are the executable specification of
the rule set."""

from __future__ import annotations

import textwrap

from repro.devtools.lint import LintConfig, lint_source


def _lint(source: str, relpath: str = "mod.py", **kwargs) -> list:
    return lint_source(textwrap.dedent(source), relpath, LintConfig(**kwargs))


def _rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# --------------------------------------------------------------------- #
# DET001 — wall clock
# --------------------------------------------------------------------- #


def test_det001_flags_time_time():
    findings = _lint(
        """
        import time

        def handler(simulator):
            return time.time()
        """
    )
    assert _rule_ids(findings) == ["DET001"]
    assert findings[0].line == 5
    assert "time.time" in findings[0].message


def test_det001_resolves_aliases_and_from_imports():
    findings = _lint(
        """
        import time as t
        from datetime import datetime

        def stamp():
            return t.monotonic(), datetime.now()
        """
    )
    assert _rule_ids(findings) == ["DET001", "DET001"]


def test_det001_ignores_simulated_time_and_allowlisted_modules():
    clean = """
        import time

        def handler(simulator):
            simulator.call_later(1.0, lambda: None)
            return simulator.now + time.gmtime(0).tm_year
        """
    assert _lint(clean) == []
    wallclock = """
        import time

        def throughput():
            return time.perf_counter()
        """
    assert _rule_ids(_lint(wallclock, "repro/experiments/fleet.py")) == []
    assert _rule_ids(_lint(wallclock, "repro/node/node.py")) == ["DET001"]


# --------------------------------------------------------------------- #
# DET002 — ambient RNG
# --------------------------------------------------------------------- #


def test_det002_flags_stdlib_random_import():
    findings = _lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """
    )
    assert "DET002" in _rule_ids(findings)


def test_det002_flags_legacy_numpy_and_unseeded_default_rng():
    findings = _lint(
        """
        import numpy as np

        def draw():
            a = np.random.rand(4)
            b = np.random.default_rng()
            return a, b
        """
    )
    assert _rule_ids(findings) == ["DET002", "DET002"]


def test_det002_allows_seeded_generators():
    findings = _lint(
        """
        import numpy as np

        def draw(rng: np.random.Generator, seed: int):
            fresh = np.random.default_rng(seed)
            return rng.integers(10), fresh.integers(10)
        """
    )
    assert findings == []


# --------------------------------------------------------------------- #
# DET003 — unordered iteration
# --------------------------------------------------------------------- #


def test_det003_flags_for_loop_over_set_variable():
    findings = _lint(
        """
        def fanout(peers: set[int]):
            acc = []
            for peer in peers:
                acc.append(peer)
            return acc
        """
    )
    assert _rule_ids(findings) == ["DET003"]


def test_det003_tracks_assignments_attributes_and_algebra():
    findings = _lint(
        """
        class Node:
            def __init__(self):
                self._known: set[str] = set()

            def snapshot(self, extra):
                merged = self._known | extra
                return [h for h in merged]
        """
    )
    assert _rule_ids(findings) == ["DET003"]


def test_det003_flags_list_conversion_but_not_sorted():
    findings = _lint(
        """
        def freeze(hashes: set[str]):
            bad = list(hashes)
            good = sorted(hashes)
            return bad, good
        """
    )
    assert _rule_ids(findings) == ["DET003"]
    assert "list()" in findings[0].message


def test_det003_quiet_on_membership_and_len():
    findings = _lint(
        """
        def check(hashes: set[str], h: str):
            return h in hashes, len(hashes), bool(hashes)
        """
    )
    assert findings == []


def test_det003_flags_set_returning_function_calls():
    findings = _lint(
        """
        def canonical() -> set[str]:
            return {"a"}

        def walk():
            return [h for h in canonical()]
        """
    )
    assert _rule_ids(findings) == ["DET003"]


# --------------------------------------------------------------------- #
# DET004 — unordered float accumulation
# --------------------------------------------------------------------- #


def test_det004_flags_sum_over_set():
    findings = _lint(
        """
        def total(delays: set[float]):
            return sum(delays)
        """
    )
    assert _rule_ids(findings) == ["DET004"]


def test_det004_quiet_on_sorted_sum_and_lists():
    findings = _lint(
        """
        def total(delays: set[float], xs: list[float]):
            return sum(sorted(delays)) + sum(xs)
        """
    )
    assert findings == []


# --------------------------------------------------------------------- #
# SIM001 — scheduling ordered by a set
# --------------------------------------------------------------------- #


def test_sim001_flags_send_inside_set_loop():
    findings = _lint(
        """
        def gossip(network, node_id, targets: set[int]):
            for target in targets:
                network.send(node_id, target, None)
        """
    )
    assert _rule_ids(findings) == ["DET003", "SIM001"]
    assert ".send()" in findings[1].message


def test_sim001_flags_schedule_and_call_later():
    findings = _lint(
        """
        def arm(simulator, deadlines: set[float]):
            for deadline in deadlines:
                simulator.schedule(deadline, lambda: None)
                simulator.call_later(deadline, lambda: None)
        """,
        select=frozenset({"SIM001"}),
    )
    assert _rule_ids(findings) == ["SIM001", "SIM001"]


def test_sim001_quiet_when_loop_is_sorted():
    findings = _lint(
        """
        def gossip(network, node_id, targets: set[int]):
            for target in sorted(targets):
                network.send(node_id, target, None)
        """
    )
    assert findings == []


# --------------------------------------------------------------------- #
# OBS001 — ad-hoc output in simulation hot layers
# --------------------------------------------------------------------- #


def test_obs001_flags_print_in_hot_layers():
    source = """
        def deliver(node, block):
            print(f"delivered {block} to {node}")
        """
    findings = _lint(source, "src/repro/p2p/network.py")
    assert _rule_ids(findings) == ["OBS001"]
    assert "simulator.trace" in findings[0].message


def test_obs001_flags_logging_imports_in_hot_layers():
    findings = _lint(
        """
        import logging
        from logging import getLogger
        """,
        "src/repro/node/node.py",
    )
    assert _rule_ids(findings) == ["OBS001", "OBS001"]


def test_obs001_ignores_other_layers_and_trace_emission():
    noisy = """
        def report(result):
            print(result)
        """
    # The CLI/experiment layers are exactly where print() belongs.
    assert _lint(noisy, "src/repro/cli.py") == []
    assert _lint(noisy, "src/repro/experiments/runner.py") == []
    clean = """
        def deliver(self, node, block):
            if self._trace.enabled:
                self._trace.block_received(
                    time=self.simulator.now, node=node.name,
                    block_hash=block, height=1, peer_id=0, direct=True,
                )
        """
    assert _lint(clean, "src/repro/node/node.py") == []


# --------------------------------------------------------------------- #
# API001 — broad except / mutable defaults
# --------------------------------------------------------------------- #


def test_api001_flags_bare_and_broad_except():
    findings = _lint(
        """
        def guarded():
            try:
                return 1
            except Exception:
                return 2

        def bare():
            try:
                return 1
            except:
                return 2
        """
    )
    assert _rule_ids(findings) == ["API001", "API001"]


def test_api001_allows_reraising_handlers_and_narrow_catches():
    findings = _lint(
        """
        class ReproError(Exception):
            pass

        def convert():
            try:
                return 1
            except BaseException:
                raise SystemExit(1)

        def narrow():
            try:
                return 1
            except ReproError:
                return 2
        """
    )
    assert findings == []


def test_api001_flags_mutable_defaults():
    findings = _lint(
        """
        def bad(a, cache={}, items=[], seen=set()):
            return a

        def good(a, cache=None, items=(), flag=False):
            return a
        """
    )
    assert _rule_ids(findings) == ["API001", "API001", "API001"]


# --------------------------------------------------------------------- #
# FLT001 — fault code outside dedicated RNG streams
# --------------------------------------------------------------------- #


def test_flt001_flags_generic_rng_receivers_in_fault_code():
    source = """
        class Injector:
            def decide(self):
                if self.rng.random() < 0.5:
                    return True
                return self._rng.exponential(2.0)
        """
    findings = _lint(source, "src/repro/faults/injector.py")
    assert _rule_ids(findings) == ["FLT001", "FLT001"]
    assert "faults.* child stream" in findings[0].message


def test_flt001_flags_non_faults_stream_namespaces():
    source = """
        class Injector:
            def __init__(self, simulator):
                self._churn_rng = simulator.rng.stream("workload.churn")
                self._link_rng = simulator.rng.stream(prefix + "links")
        """
    findings = _lint(source, "src/repro/faults/injector.py")
    assert _rule_ids(findings) == ["FLT001", "FLT001"]
    assert "'workload.churn'" in findings[0].message
    assert "computed namespace" in findings[1].message


def test_flt001_flags_ambient_module_rng():
    source = """
        import random
        import numpy.random as npr

        def jitter():
            return random.random() + npr.exponential(0.1)
        """
    findings = _lint(
        source, "src/repro/faults/injector.py", select=frozenset({"FLT001"})
    )
    assert _rule_ids(findings) == ["FLT001", "FLT001"]
    assert all("ambient" in finding.message for finding in findings)


def test_flt001_allows_dedicated_streams_and_other_layers():
    clean = """
        class Injector:
            def __init__(self, simulator):
                self._churn_rng = simulator.rng.stream("faults.churn")

            def decide(self):
                return self._churn_rng.exponential(120.0)
        """
    assert _lint(clean, "src/repro/faults/injector.py") == []
    # Outside the fault layer, generically named receivers are fine.
    generic = """
        def draw(self):
            return self.rng.random()
        """
    assert _lint(generic, "src/repro/p2p/network.py") == []


# --------------------------------------------------------------------- #
# PERF004 — direct heapq import outside repro.sim
# --------------------------------------------------------------------- #


def test_perf004_flags_heapq_import_outside_sim():
    source = """
        import heapq

        def next_job(jobs):
            return heapq.heappop(jobs)
        """
    findings = _lint(source, "src/repro/workload/jobs.py")
    assert _rule_ids(findings) == ["PERF004"]
    assert "queue backends" in findings[0].message


def test_perf004_flags_from_import_and_aliases():
    findings = _lint(
        """
        from heapq import heappush
        import heapq as hq
        """,
        "src/repro/stats/rank.py",
    )
    assert _rule_ids(findings) == ["PERF004", "PERF004"]


def test_perf004_allows_queue_backends_and_justified_uses():
    backend = """
        from heapq import heappop, heappush

        def push(bucket, entry):
            heappush(bucket, entry)
        """
    assert _lint(backend, "src/repro/sim/calqueue.py") == []
    justified = """
        import heapq  # repro: noqa[PERF004] cold-path k-way merge, not event scheduling

        def merge(streams):
            return heapq.merge(*streams)
        """
    assert _lint(justified, "src/repro/obs/columns.py") == []


# --------------------------------------------------------------------- #
# Framework behaviour
# --------------------------------------------------------------------- #


def test_select_restricts_rules():
    source = """
        import random

        def loop(peers: set[int]):
            return [p for p in peers]
        """
    assert _rule_ids(_lint(source)) == ["DET002", "DET003"]
    assert _rule_ids(_lint(source, select=frozenset({"DET002"}))) == ["DET002"]


def test_findings_carry_location_and_snippet():
    findings = _lint(
        """
        def loop(peers: set[int]):
            return [p for p in peers]
        """
    )
    (finding,) = findings
    assert finding.path == "mod.py"
    assert finding.line == 3
    assert finding.snippet == "return [p for p in peers]"
    assert finding.location() == "mod.py:3:23"
