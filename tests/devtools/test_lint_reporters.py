"""Reporter contracts: the JSON schema is stable and the text report is
one clickable ``path:line:col`` line per finding plus a verdict."""

from __future__ import annotations

import json
import textwrap

from repro.devtools.lint import (
    LintConfig,
    lint_paths,
    render_json,
    render_text,
)

HAZARD = textwrap.dedent(
    """
    import random

    def loop(peers: set[int]):
        return [p for p in peers]
    """
)


def _report(tmp_path, source=HAZARD):
    target = tmp_path / "mod.py"
    target.write_text(source, encoding="utf-8")
    return lint_paths([target], LintConfig())


def test_json_schema_top_level(tmp_path):
    payload = json.loads(render_json(_report(tmp_path)))
    assert payload["version"] == 2
    assert payload["tool"] == "repro-lint"
    assert set(payload) == {
        "version",
        "tool",
        "summary",
        "findings",
        "baselined",
        "unused_suppressions",
        "expired_baseline",
        "parse_errors",
        "internal_errors",
    }
    assert set(payload["summary"]) == {
        "files_checked",
        "findings",
        "baselined",
        "suppressed",
        "expired_baseline",
        "unused_suppressions",
        "parse_errors",
        "internal_errors",
        "failed",
    }


def test_json_finding_shape_and_counts(tmp_path):
    payload = json.loads(render_json(_report(tmp_path)))
    assert payload["summary"]["files_checked"] == 1
    assert payload["summary"]["findings"] == 2
    assert payload["summary"]["failed"] is True
    for finding in payload["findings"]:
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "snippet",
        }
        assert isinstance(finding["line"], int)
    assert sorted(f["rule"] for f in payload["findings"]) == [
        "DET002",
        "DET003",
    ]


def test_json_is_deterministic(tmp_path):
    report = _report(tmp_path)
    assert render_json(report) == render_json(report)


def test_text_report_lines_and_verdict(tmp_path):
    report = _report(tmp_path)
    text = render_text(report)
    lines = text.splitlines()
    assert any(
        line.endswith("mod.py:2:0: DET002 stdlib `random` uses hidden global "
                      "state — draw from the injected np.random.Generator")
        or "mod.py:2:0: DET002" in line
        for line in lines
    )
    assert lines[-1].startswith("FAILED: 2 finding(s)")


def test_text_report_clean_verdict(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("def ok() -> int:\n    return 1\n", encoding="utf-8")
    report = lint_paths([target], LintConfig())
    assert render_text(report).splitlines()[-1].startswith("ok: 0 finding(s)")


def test_parse_error_is_fatal_and_reported(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    report = lint_paths([target], LintConfig())
    assert report.failed(strict=False)
    payload = json.loads(render_json(report))
    assert payload["summary"]["parse_errors"] == 1
    assert "broken.py" in payload["parse_errors"][0]
