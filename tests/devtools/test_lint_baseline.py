"""Baseline lifecycle: grandfathered findings pass, new findings fail,
fixed findings expire their entries, and update regenerates the file."""

from __future__ import annotations

import json
import textwrap

from repro.devtools.lint import Baseline, LintConfig, lint_paths

HAZARD = textwrap.dedent(
    """
    def loop(peers: set[int]):
        return [p for p in peers]
    """
)

CLEAN = textwrap.dedent(
    """
    def loop(peers: set[int]):
        return sorted(peers)
    """
)


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


def test_empty_baseline_reports_all_findings(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    report = lint_paths([target], LintConfig())
    assert [f.rule_id for f in report.findings] == ["DET003"]
    assert report.baselined == []
    assert report.failed(strict=False)


def test_baselined_finding_is_non_fatal(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    first = lint_paths([target], LintConfig())
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(first.findings).save(baseline_path)

    report = lint_paths([target], LintConfig(baseline_path=baseline_path))
    assert report.findings == []
    assert [f.rule_id for f in report.baselined] == ["DET003"]
    assert not report.failed(strict=False)
    assert not report.failed(strict=True)


def test_new_finding_fails_despite_baseline(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(
        lint_paths([target], LintConfig()).findings
    ).save(baseline_path)

    _write(
        tmp_path,
        "mod.py",
        HAZARD + "\n\ndef more(extra: set[str]):\n    return list(extra)\n",
    )
    report = lint_paths([target], LintConfig(baseline_path=baseline_path))
    assert len(report.baselined) == 1
    assert [f.rule_id for f in report.findings] == ["DET003"]
    assert report.failed(strict=False)


def test_baseline_matching_survives_line_shifts(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(
        lint_paths([target], LintConfig()).findings
    ).save(baseline_path)

    _write(tmp_path, "mod.py", "\n\nX = 1\n" + HAZARD)  # shift lines down
    report = lint_paths([target], LintConfig(baseline_path=baseline_path))
    assert report.findings == []
    assert len(report.baselined) == 1


def test_fixed_finding_expires_entry_and_strict_fails(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(
        lint_paths([target], LintConfig()).findings
    ).save(baseline_path)

    _write(tmp_path, "mod.py", CLEAN)
    report = lint_paths([target], LintConfig(baseline_path=baseline_path))
    assert report.findings == [] and report.baselined == []
    assert len(report.expired_baseline) == 1
    assert report.expired_baseline[0]["rule"] == "DET003"
    assert not report.failed(strict=False)
    assert report.failed(strict=True)  # baseline may only shrink


def test_baseline_file_roundtrip_is_stable(tmp_path):
    target = _write(tmp_path, "mod.py", HAZARD)
    baseline_path = tmp_path / "lint-baseline.json"
    findings = lint_paths([target], LintConfig()).findings
    Baseline.from_findings(findings).save(baseline_path)
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 1
    (entry,) = payload["entries"]
    assert entry["rule"] == "DET003" and entry["count"] == 1
    reloaded = Baseline.load(baseline_path)
    assert reloaded.counts == Baseline.from_findings(findings).counts


def test_missing_baseline_is_empty_and_corrupt_baseline_raises(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").counts == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    try:
        Baseline.load(bad)
    except ValueError as error:
        assert "bad.json" in str(error)
    else:  # pragma: no cover - defends the assertion
        raise AssertionError("corrupt baseline must raise ValueError")
