"""Unit tests for the whole-program analysis layer (symbol table, call
graph, dataflow summaries) — the machinery under the STR/OBS1xx/PERF
rule families."""

from __future__ import annotations

import textwrap

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.graph import ProjectContext
from repro.devtools.lint.graph.symbols import (
    annotation_text,
    module_name_for,
    stream_family,
    stream_namespace,
)

import ast


def _project(*sources: tuple[str, str]) -> ProjectContext:
    modules = [
        ModuleContext.from_source(textwrap.dedent(source), relpath)
        for relpath, source in sources
    ]
    return ProjectContext(modules)


# --------------------------------------------------------------------- #
# Symbols
# --------------------------------------------------------------------- #


def test_module_name_for_maps_src_tree_and_fixtures():
    assert module_name_for("src/repro/p2p/network.py") == "repro.p2p.network"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("/tmp/x/fixture_mod.py") == "fixture_mod"


def test_annotation_text_unwraps_strings_optionals_and_subscripts():
    def head(expr: str) -> str:
        return annotation_text(ast.parse(expr, mode="eval").body)

    assert head("Simulator") == "Simulator"
    assert head("np.random.Generator") == "np.random.Generator"
    assert head("Optional[Network]") == "Network"
    assert head("'Network'") == "Network"
    assert head("dict[str, int]") == "dict"


def test_stream_namespace_literal_and_fstring_prefix():
    call = ast.parse('r.stream("mining.lottery")', mode="eval").body
    assert stream_namespace(call) == "mining.lottery"
    call = ast.parse('r.stream(f"node.{i}")', mode="eval").body
    assert stream_namespace(call) == "node."
    call = ast.parse("r.stream(name)", mode="eval").body
    assert stream_namespace(call) is None
    assert stream_family("mining.lottery") == "mining"
    assert stream_family("node.") == "node"


def test_index_binds_classes_methods_and_attr_types():
    project = _project(
        (
            "src/repro/demo/engine.py",
            """
            class Simulator:
                def __init__(self) -> None:
                    self.queue = EventQueue()

                def run(self) -> None:
                    self.queue.push(1)

            class EventQueue:
                def push(self, item) -> None:
                    pass
            """,
        )
    )
    index = project.index
    assert "repro.demo.engine.Simulator" in index.classes
    info = index.classes["repro.demo.engine.Simulator"]
    assert index.attr_type(info, "queue") == "EventQueue"
    method = index.lookup_method(info, "run")
    assert method is not None and method.qualname.endswith("Simulator.run")


def test_method_resolution_walks_project_visible_mro():
    project = _project(
        (
            "mod.py",
            """
            class Base:
                def helper(self) -> None:
                    pass

            class Child(Base):
                def caller(self) -> None:
                    self.helper()
            """,
        )
    )
    edges = project.graph.facts["mod.Child.caller"].edges
    assert [edge.callee for edge in edges] == ["mod.Base.helper"]


# --------------------------------------------------------------------- #
# Call graph
# --------------------------------------------------------------------- #


def test_cross_module_call_resolution_through_imports():
    project = _project(
        (
            "src/repro/demo/util.py",
            """
            def helper() -> int:
                return 1
            """,
        ),
        (
            "src/repro/demo/caller.py",
            """
            from repro.demo.util import helper

            def entry() -> int:
                return helper()
            """,
        ),
    )
    edges = project.graph.facts["repro.demo.caller.entry"].edges
    assert [edge.callee for edge in edges] == ["repro.demo.util.helper"]


def test_constructor_call_resolves_to_init_and_types_local():
    project = _project(
        (
            "mod.py",
            """
            class Widget:
                def __init__(self) -> None:
                    pass

                def spin(self) -> None:
                    pass

            def build() -> None:
                w = Widget()
                w.spin()
            """,
        )
    )
    callees = [e.callee for e in project.graph.facts["mod.build"].edges]
    assert callees == ["mod.Widget.__init__", "mod.Widget.spin"]


def test_trace_guard_and_raise_edges_are_guarded():
    project = _project(
        (
            "mod.py",
            """
            def cold() -> None:
                pass

            def hot() -> None:
                pass

            class Runner:
                def __init__(self, trace) -> None:
                    self._trace = trace

                def step(self) -> None:
                    hot()
                    if self._trace.enabled:
                        cold()
            """,
        )
    )
    edges = {e.callee: e.guarded for e in project.graph.facts["mod.Runner.step"].edges}
    assert edges == {"mod.hot": False, "mod.cold": True}


def test_dynamic_dispatch_produces_no_edge_but_is_counted():
    project = _project(
        (
            "mod.py",
            """
            def run(entry) -> None:
                entry[3].callback()
            """,
        )
    )
    facts = project.graph.facts["mod.run"]
    assert facts.edges == []
    assert facts.dynamic_calls == 1


# --------------------------------------------------------------------- #
# Dataflow
# --------------------------------------------------------------------- #


def test_transitive_may_draw_and_trail():
    project = _project(
        (
            "mod.py",
            """
            import numpy as np

            def leaf(rng: np.random.Generator) -> float:
                return float(rng.random())

            def mid(rng: np.random.Generator) -> float:
                return leaf(rng)

            def top(rng: np.random.Generator) -> float:
                return mid(rng)
            """,
        )
    )
    summaries = project.summaries
    assert summaries.summary_for("mod.leaf").may_draw_rng
    assert summaries.summary_for("mod.top").may_draw_rng
    assert summaries.draw_trail("mod.top") == ("mod.top", "mod.mid", "mod.leaf")


def test_family_fixpoint_propagates_through_forwarding():
    project = _project(
        (
            "mod.py",
            """
            import numpy as np
            from repro.sim.rng import RngRegistry

            def inner(rng: np.random.Generator) -> float:
                return float(rng.random())

            def outer(rng: np.random.Generator) -> float:
                return inner(rng)

            def site_a(registry: RngRegistry) -> float:
                return outer(registry.stream("mining.lottery"))

            def site_b(registry: RngRegistry) -> float:
                return outer(registry.stream("faults.churn"))
            """,
        )
    )
    summaries = project.summaries
    assert summaries.summary_for("mod.outer").param_families["rng"] == frozenset(
        {"mining", "faults"}
    )
    # ...and the fixpoint pushes the same families one hop further down.
    assert summaries.summary_for("mod.inner").param_families["rng"] == frozenset(
        {"mining", "faults"}
    )


def test_unguarded_reachability_skips_cold_edges():
    project = _project(
        (
            "mod.py",
            """
            def cold() -> None:
                pass

            def warm() -> None:
                pass

            class Runner:
                def __init__(self, trace) -> None:
                    self._trace = trace

                def step(self) -> None:
                    warm()
                    if self._trace.enabled:
                        cold()
            """,
        )
    )
    summaries = project.summaries
    hot = summaries.reachable(["mod.Runner.step"], include_guarded=False)
    assert set(hot) == {"mod.Runner.step", "mod.warm"}
    full = summaries.reachable(["mod.Runner.step"], include_guarded=True)
    assert set(full) == {"mod.Runner.step", "mod.warm", "mod.cold"}
    assert full["mod.cold"] == ("mod.Runner.step", "mod.cold")


def test_real_tree_analysis_is_fast_and_covers_hot_core():
    import pathlib
    import time

    root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    modules = [
        ModuleContext.from_source(path.read_text(encoding="utf-8"), str(path))
        for path in sorted(root.rglob("*.py"))
    ]
    started = time.perf_counter()
    project = ProjectContext(modules)
    summaries = project.summaries
    elapsed = time.perf_counter() - started
    assert elapsed < 10.0, f"whole-program pass took {elapsed:.1f}s"
    send_many = summaries.summary_for("repro.p2p.network.Network.send_many")
    assert send_many is not None and send_many.may_draw_rng
    hooks = summaries.summary_for("repro.obs.recorder.TraceRecorder.gossip_send")
    assert hooks is not None
    assert not hooks.may_draw_rng and not hooks.may_schedule
