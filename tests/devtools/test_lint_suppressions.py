"""Suppression comments: justified noqa silences, unjustified noqa is
itself a finding, and stale noqa is reported so exemptions cannot rot."""

from __future__ import annotations

import textwrap

from repro.devtools.lint import LintConfig, lint_source
from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.runner import lint_module
from repro.devtools.lint.suppressions import SuppressionIndex


def _lint(source: str, relpath: str = "mod.py"):
    return lint_source(textwrap.dedent(source), relpath)


def test_same_line_suppression_with_reason():
    findings = _lint(
        """
        def loop(peers: set[int]):
            return [p for p in peers]  # repro: noqa[DET003] output feeds len() only
        """
    )
    assert findings == []


def test_preceding_line_suppression_covers_next_line():
    findings = _lint(
        """
        def loop(peers: set[int]):
            # repro: noqa[DET003] order-insensitive aggregation
            return [p for p in peers]
        """
    )
    assert findings == []


def test_suppression_is_per_rule():
    findings = _lint(
        """
        def gossip(network, targets: set[int]):
            for target in targets:  # repro: noqa[DET003] justified elsewhere
                network.send(0, target, None)
        """
    )
    # DET003 on the loop line is silenced; SIM001 on the send line is not.
    assert [f.rule_id for f in findings] == ["SIM001"]


def test_multiple_rules_in_one_comment():
    findings = _lint(
        """
        def total(delays: set[float]):
            return sum(delays), list(delays)  # repro: noqa[DET003, DET004] snapshot for debugging only
        """
    )
    assert findings == []


def test_reasonless_suppression_reports_sup001_and_does_not_silence():
    findings = _lint(
        """
        def loop(peers: set[int]):
            return [p for p in peers]  # repro: noqa[DET003]
        """
    )
    assert [f.rule_id for f in findings] == ["DET003", "SUP001"]


def test_marker_inside_string_literal_is_not_a_suppression():
    findings = _lint(
        """
        def loop(peers: set[int]):
            note = "# repro: noqa[DET003] not a comment"
            return [p for p in peers], note
        """
    )
    assert [f.rule_id for f in findings] == ["DET003"]


def test_suppression_does_not_leak_to_unrelated_lines():
    findings = _lint(
        """
        def loop(peers: set[int]):
            first = [p for p in peers]  # repro: noqa[DET003] benchmark scratch
            second = [p for p in peers]
            return first, second
        """
    )
    assert [f.rule_id for f in findings] == ["DET003"]
    assert findings[0].line == 4


def test_unused_suppressions_are_tracked():
    source = textwrap.dedent(
        """
        def clean():  # repro: noqa[DET003] historical, loop removed
            return 1
        """
    )
    module = ModuleContext.from_source(source, "mod.py", LintConfig())
    findings, suppressions = lint_module(module)
    kept, suppressed = suppressions.filter(findings)
    assert kept == [] and suppressed == 0
    unused = suppressions.unused("mod.py")
    assert [f.rule_id for f in unused] == ["SUP002"]
    assert "DET003" in unused[0].message


def test_used_suppressions_are_not_reported_unused():
    source = textwrap.dedent(
        """
        def loop(peers: set[int]):
            return [p for p in peers]  # repro: noqa[DET003] order irrelevant here
        """
    )
    index = SuppressionIndex.from_source(source, "mod.py")
    module = ModuleContext.from_source(source, "mod.py", LintConfig())
    findings, index = lint_module(module)
    index.filter(findings)
    assert index.unused("mod.py") == []
