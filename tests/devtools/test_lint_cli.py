"""CLI contract for `repro lint` — including the acceptance scenario:
the shipped tree lints clean with the committed (empty) baseline, and a
deliberately introduced hazard fails with the right rule id and
file:line."""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.lint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

HAZARD = textwrap.dedent(
    """
    def loop(peers: set[int]):
        return [p for p in peers]
    """
)


def test_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("def ok() -> int:\n    return 1\n", encoding="utf-8")
    assert repro_main(["lint", str(target)]) == 0
    assert "ok: 0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_rule_and_location(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(HAZARD, encoding="utf-8")
    assert repro_main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "DET003" in out
    assert "mod.py:3:" in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert repro_main(["lint", str(tmp_path / "nope")]) == 2
    assert "repro lint:" in capsys.readouterr().err


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("X = 1\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[]", encoding="utf-8")  # valid JSON, wrong shape
    code = repro_main(["lint", str(target), "--baseline", str(baseline)])
    assert code == 2
    assert "entries" in capsys.readouterr().err


def test_update_baseline_then_clean_then_strict_expiry(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(HAZARD, encoding="utf-8")
    baseline = tmp_path / "baseline.json"

    # 1. grandfather the existing finding
    assert (
        repro_main(
            ["lint", str(target), "--baseline", str(baseline), "--update-baseline"]
        )
        == 0
    )
    assert baseline.exists()
    capsys.readouterr()

    # 2. baselined finding no longer fails
    assert repro_main(["lint", str(target), "--baseline", str(baseline)]) == 0
    assert "[baselined]" in capsys.readouterr().out

    # 3. fixing the finding expires the entry: plain run passes,
    #    strict run demands the baseline shrink
    target.write_text("def ok() -> int:\n    return 1\n", encoding="utf-8")
    assert repro_main(["lint", str(target), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert (
        repro_main(["lint", str(target), "--baseline", str(baseline), "--strict"])
        == 1
    )
    assert "--update-baseline" in capsys.readouterr().out


def test_json_format_flag(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(HAZARD, encoding="utf-8")
    assert repro_main(["lint", str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro-lint"
    assert payload["summary"]["findings"] == 1


def test_select_flag_limits_rules(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import random\n" + HAZARD, encoding="utf-8")
    assert repro_main(["lint", str(target), "--select", "DET002"]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET003" not in out


def test_list_rules_describes_every_rule(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "SIM001", "API001",
                    "SUP001", "SUP002"):
        assert rule_id in out
    assert "noqa" in out


def test_module_entry_point_matches_subcommand(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(HAZARD, encoding="utf-8")
    assert lint_main([str(target)]) == 1
    direct = capsys.readouterr().out
    assert repro_main(["lint", str(target)]) == 1
    assert capsys.readouterr().out == direct


# --------------------------------------------------------------------- #
# Acceptance: the shipped tree is clean; a planted hazard is caught
# --------------------------------------------------------------------- #


def test_shipped_tree_lints_clean_with_committed_baseline(capsys):
    baseline = REPO_ROOT / "lint-baseline.json"
    assert baseline.exists(), "committed baseline missing"
    assert json.loads(baseline.read_text())["entries"] == []
    code = repro_main(
        [
            "lint",
            str(REPO_ROOT / "src" / "repro"),
            "--baseline",
            str(baseline),
            "--strict",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out


@pytest.mark.parametrize(
    "snippet, expected_rule",
    [
        ("\ndef _planted(rng=None):\n    import random\n    return random.random()\n", "DET002"),
        (
            "\ndef _planted(network, peers: set[int]):\n"
            "    for p in peers:\n"
            "        network.send(0, p, None)\n",
            "SIM001",
        ),
    ],
)
def test_planted_hazard_fails_with_rule_and_location(
    tmp_path, capsys, snippet, expected_rule
):
    """Copy a real module, plant a hazard, expect rule id + file:line."""
    victim = tmp_path / "gossip.py"
    shutil.copy(REPO_ROOT / "src" / "repro" / "p2p" / "gossip.py", victim)
    original_lines = len(victim.read_text().splitlines())
    victim.write_text(victim.read_text() + snippet, encoding="utf-8")
    assert repro_main(["lint", str(victim)]) == 1
    out = capsys.readouterr().out
    assert expected_rule in out
    # The reported location points into the planted lines.
    reported = [
        line for line in out.splitlines() if line.count(":") >= 3 and "gossip.py" in line
    ]
    assert reported, out
    assert any(
        int(line.split(":")[1]) > original_lines for line in reported
    ), out
