"""Golden-file pin of the versioned lint JSON report.

Downstream tooling consumes ``repro lint --format json``; this test
freezes the full rendered document — schema version 2, summary keys,
finding shapes — over a fixture that fires per-file *and* cross-module
(STR/OBS1xx/PERF) rules.  Regenerate the golden with::

    REGEN_LINT_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/devtools/test_lint_golden.py

and review the diff like any schema change.
"""

from __future__ import annotations

import json
import os
import textwrap
from pathlib import Path

from repro.devtools.lint import LintConfig, lint_paths
from repro.devtools.lint.reporters import render_json

GOLDEN = Path(__file__).parent / "golden" / "lint_report.json"

#: One fixture, many findings: DET002 (stdlib random), STR001 (cross-
#: family aliasing), OBS101 (hook transitively draws), PERF002
#: (f-string on a marked hot path).
FIXTURE = textwrap.dedent(
    '''
    import random

    import numpy as np

    from repro.sim.rng import RngRegistry


    def legacy() -> float:
        return random.random()


    def helper(rng: np.random.Generator) -> float:
        return float(rng.random())


    def mining_site(registry: RngRegistry) -> float:
        return helper(registry.stream("mining.lottery"))


    def faults_site(registry: RngRegistry) -> float:
        return helper(registry.stream("faults.churn"))


    class TraceRecorder:
        enabled = False

        def block_seen(self, rng: np.random.Generator) -> None:
            helper(rng)


    # repro: hotpath
    def dispatch(items) -> None:
        for item in items:
            text = f"evt-{item}"
    '''
)


def _rendered(tmp_path) -> str:
    target = tmp_path / "fixture_mod.py"
    target.write_text(FIXTURE, encoding="utf-8")
    report = lint_paths([target], LintConfig())
    rendered = render_json(report)
    # The tmp dir varies per run; the golden uses a stable placeholder.
    return rendered.replace(str(target), "<fixture>/fixture_mod.py")


def test_lint_json_report_matches_golden(tmp_path):
    rendered = _rendered(tmp_path)
    if os.environ.get("REGEN_LINT_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(rendered + "\n", encoding="utf-8")
    assert GOLDEN.exists(), (
        "golden file missing — regenerate with REGEN_LINT_GOLDEN=1"
    )
    assert rendered + "\n" == GOLDEN.read_text(encoding="utf-8")


def test_golden_covers_every_new_rule_family(tmp_path):
    payload = json.loads(_rendered(tmp_path))
    assert payload["version"] == 2
    rules = {finding["rule"] for finding in payload["findings"]}
    assert {"DET002", "STR001", "OBS101", "PERF002"} <= rules
