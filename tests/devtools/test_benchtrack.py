"""benchtrack: raw pytest-benchmark dumps -> trajectory records -> gate."""

from __future__ import annotations

import json

import pytest

from repro.devtools.benchtrack import (
    compare_records,
    main,
    reduce_benchmarks,
)


def _raw(events_per_second: float = 14_000.0) -> dict:
    return {
        "benchmarks": [
            {
                "name": (
                    "benchmarks/bench_simulation.py::"
                    "test_standard_campaign_events_per_second"
                ),
                "stats": {"mean": 60.2},
                "extra_info": {
                    "events_per_second": events_per_second,
                    "events_processed": 1_200_000,
                    "note": "not numeric, must be dropped",
                    "flag": True,
                },
            },
            {
                "name": "benchmarks/bench_simulation.py::test_parallel_sweep_speedup",
                "stats": {"mean": 30.0},
                "extra_info": {"speedup": 3.1},
            },
        ]
    }


def test_reduce_keeps_wall_and_numeric_extra_info_only():
    record = reduce_benchmarks(_raw(), date="2026-08-07")
    assert record["schema"] == 1
    assert record["date"] == "2026-08-07"
    bench = record["benchmarks"]["test_standard_campaign_events_per_second"]
    assert bench["wall_seconds"] == 60.2
    assert bench["events_per_second"] == 14_000.0
    assert "note" not in bench
    assert "flag" not in bench  # bools are not metrics


def test_reduce_rejects_empty_dumps():
    with pytest.raises(ValueError):
        reduce_benchmarks({"benchmarks": []}, date="2026-08-07")


def test_compare_passes_within_threshold_and_ignores_missing_metrics():
    baseline = reduce_benchmarks(_raw(14_000.0), date="2026-01-01")
    record = reduce_benchmarks(_raw(11_000.0), date="2026-08-07")
    # 21% drop < 30% threshold; obs metrics absent from both -> no gate.
    assert compare_records(record, baseline) == []


def test_compare_fails_on_throughput_regression():
    baseline = reduce_benchmarks(_raw(14_000.0), date="2026-01-01")
    record = reduce_benchmarks(_raw(9_000.0), date="2026-08-07")
    failures = compare_records(record, baseline)
    assert len(failures) == 1
    assert "events_per_second" in failures[0]
    assert "drop" in failures[0]
    # A tighter threshold catches the smaller drop too.
    record = reduce_benchmarks(_raw(13_000.0), date="2026-08-07")
    assert compare_records(record, baseline, threshold=0.05)


def _sweep_record(speedup: float, cores: float | None) -> dict:
    entry: dict = {"wall_seconds": 30.0, "speedup": speedup}
    if cores is not None:
        entry["cores"] = cores
    return {
        "schema": 1,
        "date": "2026-08-08",
        "benchmarks": {"test_parallel_sweep_speedup": entry},
    }


def test_speedup_floor_fails_below_one_on_multicore_runners():
    baseline = _sweep_record(0.53, cores=1)  # slow baseline can't mask it
    record = _sweep_record(0.81, cores=4)
    failures = compare_records(record, baseline)
    assert len(failures) == 1
    assert "below the hard floor" in failures[0]
    assert "cores=4" in failures[0]
    # Above the floor the same record passes.
    assert compare_records(_sweep_record(1.7, cores=4), baseline) == []


def test_speedup_floor_is_skipped_on_single_core_or_unrecorded_runners():
    baseline = _sweep_record(2.0, cores=4)
    # Single-core hosts cannot beat sequential: floor exempt (the
    # relative gate still applies, hence the generous baseline check).
    assert all(
        "hard floor" not in failure
        for failure in compare_records(_sweep_record(0.6, cores=1), baseline)
    )
    # No cores recorded at all -> guard absent -> floor skipped.
    assert all(
        "hard floor" not in failure
        for failure in compare_records(_sweep_record(0.6, cores=None), baseline)
    )


def _obs_record(overhead: float | None) -> dict:
    entry: dict = {"wall_seconds": 12.0, "plain_events_per_second": 90_000.0}
    if overhead is not None:
        entry["tracing_overhead"] = overhead
    return {
        "schema": 1,
        "date": "2026-08-08",
        "benchmarks": {"test_tracing_noop_overhead": entry},
    }


def test_tracing_overhead_ceiling_fails_above_budget():
    # Ceilings are baseline-independent: a generous baseline can't mask
    # the overhead ratio creeping past the DESIGN §5e budget.
    baseline = _obs_record(1.50)
    failures = compare_records(_obs_record(1.35), baseline)
    assert len(failures) == 1
    assert "above the hard ceiling" in failures[0]
    assert "tracing_overhead" in failures[0]


def test_tracing_overhead_ceiling_passes_at_or_below_budget():
    baseline = _obs_record(1.05)
    assert compare_records(_obs_record(1.20), baseline) == []
    assert compare_records(_obs_record(1.08), baseline) == []
    # Records that never measured the ratio are not gated on it.
    assert compare_records(_obs_record(None), baseline) == []


def test_cli_reduce_then_compare_round_trip(tmp_path, capsys):
    raw_path = tmp_path / "bench-raw.json"
    raw_path.write_text(json.dumps(_raw()))
    out_path = tmp_path / "BENCH_2026-08-07.json"
    assert main([
        "reduce", "--input", str(raw_path),
        "--date", "2026-08-07", "--out", str(out_path),
    ]) == 0
    assert json.loads(out_path.read_text())["date"] == "2026-08-07"

    assert main([
        "compare", "--record", str(out_path), "--baseline", str(out_path),
    ]) == 0
    assert "no perf regression" in capsys.readouterr().out

    slow = tmp_path / "slow.json"
    slow_raw = _raw(events_per_second=5_000.0)
    slow_record = tmp_path / "BENCH_slow.json"
    slow.write_text(json.dumps(slow_raw))
    assert main([
        "reduce", "--input", str(slow), "--date", "2026-08-08",
        "--out", str(slow_record),
    ]) == 0
    assert main([
        "compare", "--record", str(slow_record), "--baseline", str(out_path),
    ]) == 1
    assert "perf regression" in capsys.readouterr().out


def test_cli_compare_reports_missing_files(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "compare",
            "--record", str(tmp_path / "nope.json"),
            "--baseline", str(tmp_path / "nope.json"),
        ])
