"""Analyzer internal errors surface as exit 2 with the offending path —
never as a traceback.  Covers both failure classes: an unparseable
source file and a rule that raises mid-run."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.devtools.lint import LintConfig, lint_paths
from repro.devtools.lint.registry import get_rule
from repro.devtools.lint.reporters import render_json


def test_broken_fixture_exits_two_with_path(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    code = repro_main(["lint", str(target)])
    err = capsys.readouterr().err
    assert code == 2
    assert "broken.py" in err
    assert "Traceback" not in err


def test_broken_file_does_not_hide_other_findings(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    (tmp_path / "hazard.py").write_text(
        "def loop(peers: set[int]):\n    return [p for p in peers]\n",
        encoding="utf-8",
    )
    report = lint_paths([tmp_path], LintConfig())
    assert len(report.parse_errors) == 1
    assert [f.rule_id for f in report.findings] == ["DET003"]


def test_crashed_rule_is_internal_error_not_traceback(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")

    def boom(module):
        raise RuntimeError("rule exploded")

    monkeypatch.setattr(get_rule("DET002"), "check", boom)
    code = repro_main(["lint", str(target)])
    err = capsys.readouterr().err
    assert code == 2
    assert "DET002" in err and "mod.py" in err
    assert "rule exploded" in err
    assert "Traceback" not in err


def test_crashed_rule_lands_in_json_report(tmp_path, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")

    def boom(module):
        raise RuntimeError("rule exploded")

    monkeypatch.setattr(get_rule("DET002"), "check", boom)
    report = lint_paths([target], LintConfig())
    assert report.failed(strict=False)
    payload = json.loads(render_json(report))
    assert payload["summary"]["internal_errors"] == 1
    assert "DET002" in payload["internal_errors"][0]


def test_crashed_project_rule_is_contained(tmp_path, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")

    def boom(project):
        raise RuntimeError("graph pass exploded")

    monkeypatch.setattr(get_rule("OBS101"), "check_project", boom)
    report = lint_paths([target], LintConfig())
    assert any("OBS101" in error for error in report.internal_errors)
    # Other rules still ran to completion.
    assert report.files_checked == 1


def test_update_baseline_refused_on_internal_errors(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    code = repro_main(
        ["lint", str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
    )
    assert code == 2
    assert not baseline.exists()
