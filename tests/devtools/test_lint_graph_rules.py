"""Fixtures for the cross-module rule families (STR0xx stream
provenance, OBS1xx hook purity, PERF0xx hot-path hygiene).

Each rule fires on its hazard and stays quiet on the idiomatic fix —
the executable specification, same contract as ``test_lint_rules.py``
for the per-file rules."""

from __future__ import annotations

import textwrap

from repro.devtools.lint import LintConfig, lint_source


def _lint(source: str, relpath: str = "mod.py", **kwargs) -> list:
    return lint_source(textwrap.dedent(source), relpath, LintConfig(**kwargs))


def _rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# --------------------------------------------------------------------- #
# STR001 — cross-family aliasing
# --------------------------------------------------------------------- #


def test_str001_flags_parameter_bound_to_two_families():
    findings = _lint(
        """
        import numpy as np
        from repro.sim.rng import RngRegistry

        def helper(rng: np.random.Generator) -> float:
            return float(rng.random())

        def mining_site(registry: RngRegistry) -> float:
            return helper(registry.stream("mining.lottery"))

        def faults_site(registry: RngRegistry) -> float:
            return helper(registry.stream("faults.churn"))
        """,
        select=frozenset({"STR001"}),
    )
    assert _rule_ids(findings) == ["STR001"]
    assert "faults" in findings[0].message and "mining" in findings[0].message
    assert "helper" in findings[0].message


def test_str001_transitive_forwarding_is_flagged_too():
    findings = _lint(
        """
        import numpy as np
        from repro.sim.rng import RngRegistry

        def inner(rng: np.random.Generator) -> float:
            return float(rng.random())

        def outer(rng: np.random.Generator) -> float:
            return inner(rng)

        def a(registry: RngRegistry) -> float:
            return outer(registry.stream("mining.lottery"))

        def b(registry: RngRegistry) -> float:
            return outer(registry.stream("scenario.jitter"))
        """,
        select=frozenset({"STR001"}),
    )
    # Both the directly-called helper and the one it forwards to.
    assert _rule_ids(findings) == ["STR001", "STR001"]


def test_str001_single_family_and_dynamic_namespaces_stay_quiet():
    findings = _lint(
        """
        import numpy as np
        from repro.sim.rng import RngRegistry

        def helper(rng: np.random.Generator) -> float:
            return float(rng.random())

        def site_a(registry: RngRegistry) -> float:
            return helper(registry.stream("mining.lottery"))

        def site_b(registry: RngRegistry, name: str) -> float:
            return helper(registry.stream(name))
        """,
        select=frozenset({"STR001"}),
    )
    assert findings == []


# --------------------------------------------------------------------- #
# STR002 — draws on the registry itself
# --------------------------------------------------------------------- #


def test_str002_flags_draw_on_registry():
    findings = _lint(
        """
        from repro.sim.rng import RngRegistry

        def bad(registry: RngRegistry) -> float:
            return float(registry.normal())
        """,
        select=frozenset({"STR002"}),
    )
    assert _rule_ids(findings) == ["STR002"]
    assert "child stream" in findings[0].message


def test_str002_stream_and_fork_are_fine():
    findings = _lint(
        """
        from repro.sim.rng import RngRegistry

        def good(registry: RngRegistry) -> float:
            child = registry.fork("node.7")
            return float(registry.stream("mining.lottery").random())
        """,
        select=frozenset({"STR002"}),
    )
    assert findings == []


# --------------------------------------------------------------------- #
# STR003 — provenance-erasing containers
# --------------------------------------------------------------------- #


def test_str003_flags_generators_stored_in_list():
    findings = _lint(
        """
        from repro.sim.rng import RngRegistry

        def bad(registry: RngRegistry):
            return [registry.stream("mining.a"), registry.stream("faults.b")]
        """,
        select=frozenset({"STR003"}),
    )
    assert _rule_ids(findings) == ["STR003", "STR003"]


def test_str003_storing_namespaces_is_the_fix():
    findings = _lint(
        """
        from repro.sim.rng import RngRegistry

        def good(registry: RngRegistry):
            names = ["mining.a", "faults.b"]
            return [registry.stream(n).random() for n in names]
        """,
        select=frozenset({"STR003"}),
    )
    assert findings == []


# --------------------------------------------------------------------- #
# OBS101/OBS102 — hook purity (the PR 4 contract, statically)
# --------------------------------------------------------------------- #

#: The acceptance fixture: a trace hook that *transitively* calls a
#: function that draws RNG must be flagged.
TRANSITIVE_DRAW_HOOK = """
import numpy as np

def jitter(rng: np.random.Generator) -> float:
    return float(rng.random())

def observe(payload, rng: np.random.Generator) -> float:
    return jitter(rng)

class TraceRecorder:
    enabled = False

    def block_seen(self, payload, rng: np.random.Generator) -> None:
        observe(payload, rng)
"""


def test_obs101_flags_hook_that_transitively_draws():
    findings = _lint(TRANSITIVE_DRAW_HOOK, select=frozenset({"OBS101"}))
    assert _rule_ids(findings) == ["OBS101"]
    assert "block_seen" in findings[0].message
    assert "observe" in findings[0].message  # the trail names the path


def test_obs101_covers_trace_recorder_subclasses():
    findings = _lint(
        """
        import numpy as np

        class TraceRecorder:
            enabled = False

        class FancyRecorder(TraceRecorder):
            def gossip_send(self, rng: np.random.Generator) -> None:
                rng.random()
        """,
        select=frozenset({"OBS101"}),
    )
    assert _rule_ids(findings) == ["OBS101"]


def test_obs101_flags_columnar_seal_helper_that_draws():
    """The columnar pipeline's internal helpers are inside the contract.

    Emit hooks call seal/drain helpers on the hot path; a helper that
    draws RNG perturbs the simulation exactly like a hook that draws
    directly, and the transitive walk must catch it.
    """
    findings = _lint(
        """
        import numpy as np

        class TraceRecorder:
            enabled = False

        class ColumnarRecorder(TraceRecorder):
            def _seal(self, rng: np.random.Generator) -> None:
                rng.shuffle([3, 1, 2])

            def gossip_wave(self, rng: np.random.Generator) -> None:
                self._seal(rng)
        """,
        select=frozenset({"OBS101"}),
    )
    # Both the emitting hook and the helper itself are recorder methods,
    # so each carries a finding; the hook's trail names the helper.
    assert set(_rule_ids(findings)) == {"OBS101"}
    wave = [f for f in findings if "gossip_wave" in f.message]
    assert wave and "_seal" in wave[0].message


def test_obs102_flags_hook_that_schedules():
    findings = _lint(
        """
        class TraceRecorder:
            enabled = False

        class BadRecorder(TraceRecorder):
            def block_seen(self, simulator) -> None:
                simulator.call_later(1.0, lambda: None)
        """,
        select=frozenset({"OBS102"}),
    )
    assert _rule_ids(findings) == ["OBS102"]


def test_pure_hook_and_snapshotter_lifecycle_stay_quiet():
    findings = _lint(
        """
        class TraceRecorder:
            enabled = False
            def __init__(self) -> None:
                self.records = []
            def block_seen(self, now, payload) -> None:
                self.records.append((now, payload))

        class MetricsSnapshotter:
            def _sample(self) -> None:
                self.last = 1
            def start(self, simulator) -> None:
                simulator.call_later(1.0, self._sample)
        """,
        select=frozenset({"OBS101", "OBS102"}),
    )
    # start/stop legitimately schedule; the _sample hook is pure.
    assert findings == []


def test_obs102_flags_snapshot_hook_that_schedules():
    findings = _lint(
        """
        class MetricsSnapshotter:
            def _sample(self) -> None:
                self.simulator.call_later(1.0, self._sample)
        """,
        select=frozenset({"OBS102"}),
    )
    assert _rule_ids(findings) == ["OBS102"]


# --------------------------------------------------------------------- #
# PERF001/002/003 — hot-path hygiene
# --------------------------------------------------------------------- #


def test_perf001_flags_closure_in_hot_entry():
    findings = _lint(
        """
        class EventQueue:
            def push_batch(self, items):
                for item in items:
                    cb = lambda: item
        """,
        select=frozenset({"PERF001"}),
    )
    assert _rule_ids(findings) == ["PERF001"]
    assert "EventQueue.push_batch" in findings[0].message


def test_perf002_flags_fstring_reached_transitively():
    findings = _lint(
        """
        def label(item) -> str:
            return f"evt-{item}"

        class Simulator:
            def run(self, items) -> None:
                for item in items:
                    label(item)
        """,
        select=frozenset({"PERF002"}),
    )
    assert _rule_ids(findings) == ["PERF002"]
    assert "hot path" in findings[0].message
    assert "Simulator.run" in findings[0].message


def test_perf002_raise_path_and_trace_guard_are_exempt():
    findings = _lint(
        """
        class Simulator:
            def __init__(self, trace) -> None:
                self._trace = trace

            def run(self, items) -> None:
                if not items:
                    raise ValueError(f"empty batch: {items!r}")
                if self._trace.enabled:
                    banner = f"run of {len(items)}"
        """,
        select=frozenset({"PERF002"}),
    )
    assert findings == []


def test_perf003_flags_scalar_send_in_loop_on_marked_hotpath():
    findings = _lint(
        """
        # repro: hotpath
        def fan_out(network, peers, payload) -> None:
            for peer in peers:
                network.send(0, peer, payload)
        """,
        select=frozenset({"PERF003"}),
    )
    assert _rule_ids(findings) == ["PERF003"]
    assert "send_many" in findings[0].message or "wave" in findings[0].message


def test_perf_rules_ignore_cold_functions():
    findings = _lint(
        """
        def report(results) -> str:
            lines = [f"{name}: {value}" for name, value in results]
            return "\\n".join(lines)
        """,
        select=frozenset({"PERF001", "PERF002", "PERF003"}),
    )
    assert findings == []


def test_mutating_a_real_obs_hook_to_draw_rng_fails_lint(tmp_path):
    """Acceptance: inject an RNG draw into a shipped TraceRecorder hook
    and the lint run over the mutated module fails with OBS101 — the
    check the CI lint job (strict, whole tree) relies on."""
    import ast as ast_mod
    from pathlib import Path

    from repro.cli import main as repro_main

    repo_root = Path(__file__).resolve().parents[2]
    source = (repo_root / "src" / "repro" / "obs" / "recorder.py").read_text(
        encoding="utf-8"
    )
    tree = ast_mod.parse(source)
    recorder = next(
        node
        for node in tree.body
        if isinstance(node, ast_mod.ClassDef) and node.name == "TraceRecorder"
    )
    hook = next(
        node
        for node in recorder.body
        if isinstance(node, ast_mod.FunctionDef) and node.name == "gossip_send"
    )
    first = hook.body[0]
    lines = source.splitlines(keepends=True)
    injected = " " * first.col_offset + "self._hook_rng.random()\n"
    lines.insert(first.lineno - 1, injected)
    mutated = tmp_path / "recorder.py"
    mutated.write_text("".join(lines), encoding="utf-8")
    assert repro_main(["lint", str(mutated), "--select", "OBS101"]) == 1


def test_hotpath_marker_extends_the_registry():
    findings = _lint(
        """
        # repro: hotpath
        def dispatch(items) -> None:
            for item in items:
                text = f"evt-{item}"
        """,
        select=frozenset({"PERF002"}),
    )
    assert _rule_ids(findings) == ["PERF002"]
