"""Schema contract for ``repro lint --graph-out``: the exported call
graph + summaries JSON is versioned, deterministic, and key-stable so
downstream tooling (CI artifact consumers, editor overlays) can rely
on it."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main as repro_main
from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.graph import (
    GRAPH_SCHEMA_VERSION,
    ProjectContext,
    render_graph,
)

FIXTURE = textwrap.dedent(
    """
    import numpy as np

    def draw(rng: np.random.Generator) -> float:
        return float(rng.random())

    class Simulator:
        def run(self, rng: np.random.Generator) -> float:
            return draw(rng)
    """
)


def _doc():
    module = ModuleContext.from_source(FIXTURE, "fixture_mod.py")
    return render_graph(ProjectContext([module]))


def test_graph_schema_version_and_top_level_keys():
    doc = _doc()
    assert doc["version"] == GRAPH_SCHEMA_VERSION == 1
    assert set(doc) == {"version", "modules", "functions", "edges", "stats"}
    assert set(doc["stats"]) == {"modules", "functions", "classes", "edges"}


def test_graph_function_and_edge_shapes():
    doc = _doc()
    assert doc["modules"] == ["fixture_mod"]
    by_name = {entry["qualname"]: entry for entry in doc["functions"]}
    assert set(by_name) == {"fixture_mod.draw", "fixture_mod.Simulator.run"}
    for entry in doc["functions"]:
        assert set(entry) == {
            "qualname",
            "module",
            "path",
            "line",
            "class",
            "hot_marked",
            "may_draw_rng",
            "may_schedule",
            "direct_draw_sites",
            "direct_schedule_sites",
            "dynamic_calls",
            "rng_params",
        }
    assert by_name["fixture_mod.draw"]["may_draw_rng"] is True
    assert by_name["fixture_mod.Simulator.run"]["may_draw_rng"] is True
    assert by_name["fixture_mod.Simulator.run"]["direct_draw_sites"] == 0
    assert doc["edges"] == [
        {
            "caller": "fixture_mod.Simulator.run",
            "callee": "fixture_mod.draw",
            "line": 9,
            "guarded": False,
        }
    ]


def test_graph_export_is_deterministic():
    assert json.dumps(_doc(), sort_keys=True) == json.dumps(
        _doc(), sort_keys=True
    )


def test_cli_graph_out_writes_versioned_document(tmp_path, capsys):
    target = tmp_path / "fixture_mod.py"
    target.write_text(FIXTURE, encoding="utf-8")
    out = tmp_path / "graph.json"
    code = repro_main(["lint", str(target), "--graph-out", str(out)])
    assert code == 0
    capsys.readouterr()
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["version"] == GRAPH_SCHEMA_VERSION
    assert doc["stats"]["functions"] == 2
    assert doc["stats"]["edges"] == 1
