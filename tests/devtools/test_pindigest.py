"""The CI pin-digest artifact tool must agree with the tier-1 pins."""

from __future__ import annotations

import json

import pytest

from repro.devtools.pindigest import (
    EXPECTED_PINS,
    build_artifact,
    check_artifact,
    main,
)


def test_small_pin_matches_canonical_value_under_both_backends():
    for backend in ("heap", "calendar"):
        artifact = build_artifact(backend, only=["small_seed55"])
        assert artifact["backend"] == backend
        assert artifact["pins"]["small_seed55"] == EXPECTED_PINS["small_seed55"]
        assert check_artifact(artifact) == []


def test_check_reports_divergence():
    artifact = {
        "schema": 1,
        "backend": "calendar",
        "pins": {"small_seed55": "0" * 64},
    }
    failures = check_artifact(artifact)
    assert len(failures) == 1
    assert "small_seed55" in failures[0]
    assert "calendar" in failures[0]


def test_unknown_pin_rejected():
    with pytest.raises(ValueError):
        build_artifact("heap", only=["nope"])


def test_cli_writes_artifact_and_gates(tmp_path, capsys):
    out = tmp_path / "pins.json"
    code = main(
        ["--backend", "calendar", "--only", "small_seed55", "--out", str(out),
         "--check"]
    )
    assert code == 0
    artifact = json.loads(out.read_text())
    assert artifact["backend"] == "calendar"
    assert artifact["pins"] == {"small_seed55": EXPECTED_PINS["small_seed55"]}
    assert "match the canonical values" in capsys.readouterr().out
