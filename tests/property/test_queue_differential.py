"""Differential proof-by-test: both queue backends drain identically.

The calendar backend is only admissible because it preserves the heap's
``(time, priority, sequence)`` total order *exactly* (DESIGN.md §5g).
These tests drive randomized push / push_raw / push_batch / cancel /
peek / drain workloads through :class:`EventQueue` and
:class:`CalendarQueue` with identical operation streams and assert the
pop sequences match entry for entry — times, priorities, sequence
numbers, payload identity and batch indices.

Two generators feed the same interpreter:

* a committed fuzz corpus (``tests/sim/data/queue_fuzz_seeds.json``)
  whose seeds were selected for path coverage (bucket growth, shrink,
  corpse compaction, scan jumps, time ties, batch waves) — these replay
  identically forever and run on every CI matrix leg;
* hypothesis, for fresh adversarial workloads on every run.
"""

from __future__ import annotations

import json
import math
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calqueue import CalendarQueue
from repro.sim.events import Event, EventQueue

_CORPUS_PATH = Path(__file__).parent.parent / "sim" / "data" / "queue_fuzz_seeds.json"
_CORPUS = json.loads(_CORPUS_PATH.read_text())


class _Batch:
    cancelled = False

    def fire(self, index: int) -> None:
        pass


class _Raw:
    cancelled = False

    def callback(self) -> None:
        pass


def _entry_key(entry: tuple) -> tuple:
    """Everything observable about a drained entry.

    For shared payloads (raw events, batches) ``id()`` ties the
    comparison to object identity: the backends must drain *the same*
    scheduled object at the same position, not merely equal-looking
    tuples.  :class:`Event` handles are the one per-queue payload (each
    backend mints its own), so their identity is the globally unique
    sequence number already in the key.
    """
    if len(entry) == 5:
        return (entry[0], entry[1], entry[2], "batch", id(entry[3]), entry[4])
    if isinstance(entry[3], Event):
        return (entry[0], entry[1], entry[2], "event")
    return (entry[0], entry[1], entry[2], "raw", id(entry[3]))


def _run_workload(queues, seed: int, n_ops: int) -> list[list[tuple]]:
    """Drive every queue through one identical randomized op stream.

    Returns one drained-entry key sequence per queue.  Payload objects
    are shared across the queues so identity comparison is meaningful.
    Times mix continuous draws with coarsely rounded ones (tie pressure)
    and occasional far-future outliers (scan-jump pressure); horizons
    sometimes precede earlier pushes, exercising pushes behind the
    cursor.
    """
    rng = random.Random(seed)
    drained: list[list[tuple]] = [[] for _ in queues]
    handles: list[list] = [[] for _ in queues]
    # Sequences already drained live.  Cancelling such a handle is legal
    # but its accounting is backend-timing-dependent: the corpse no
    # longer exists, so the cancelled counter stays phantom-high until
    # the next compaction *or rebuild* — and those fire at different
    # moments per backend (even heap-vs-heap would diverge under a
    # different compaction schedule).  Drain order is unaffected either
    # way; the per-op accounting assertion below is only meaningful for
    # cancellations of entries still in the structure, so the workload
    # restricts itself to those.
    drained_sequences: set[int] = set()

    # Per-seed op mix.  Cancel-heavy/batch-light seeds build the queue
    # from individually-cancellable handles, so a mass cancel can push
    # the corpse count past the compaction majority; batch-heavy seeds
    # pile depth on fast, pressuring growth resizes instead.
    # Cancel-heavy seeds also drain rarely and shallowly, so the depth
    # can cross ``COMPACT_MIN_HEAP`` while corpses are the majority.
    cancel_heavy = rng.random() < 0.30
    if cancel_heavy:
        t_push, t_raw, t_batch, t_cancel, t_peek = 0.55, 0.60, 0.60, 0.85, 0.95
        max_horizon = 25.0
    else:
        t_push, t_raw, t_batch, t_cancel, t_peek = 0.40, 0.55, 0.70, 0.80, 0.85
        max_horizon = 150.0

    def draw_time() -> float:
        kind = rng.random()
        if kind < 0.45:
            return rng.uniform(0.0, 100.0)
        if kind < 0.80:
            return round(rng.uniform(0.0, 50.0), 1)  # heavy tie pressure
        if kind < 0.95:
            return float(rng.randrange(20))  # exact duplicates
        return rng.uniform(1e4, 1e6)  # far future: scan-jump pressure

    for _ in range(n_ops):
        op = rng.random()
        if op < t_push:
            time = draw_time()
            priority = rng.choice((0, 100, 100, 100, 200))
            for i, queue in enumerate(queues):
                handles[i].append(queue.push(time, lambda: None, priority))
        elif op < t_raw:
            time = draw_time()
            payload = _Raw()
            priority = rng.choice((50, 100))
            for queue in queues:
                queue.push_raw(time, payload, priority)
        elif op < t_batch:
            times = [draw_time() for _ in range(rng.randrange(1, 40))]
            if rng.random() < 0.3:
                times = [times[0]] * len(times)  # simultaneous wave
            batch = _Batch()
            for queue in queues:
                queue.push_batch(times, batch)
        elif op < t_cancel and handles[0]:
            if rng.random() < 0.15:
                # Mass cancel: drop a majority slice of the undrained
                # handles in one burst, pressuring the cancelled-majority
                # compaction trigger before a rebuild can collect the
                # corpses first.
                pool = [
                    j
                    for j, handle in enumerate(handles[0])
                    if handle.sequence not in drained_sequences
                ]
                victims = pool if cancel_heavy else rng.sample(pool, (len(pool) * 2) // 3)
            else:
                victim = rng.randrange(len(handles[0]))
                if handles[0][victim].sequence in drained_sequences:
                    victims = []
                else:
                    victims = [victim]
            for j in victims:
                for i in range(len(queues)):
                    handles[i][j].cancel()
        elif op < t_peek:
            peeks = {queue.peek_time() for queue in queues}
            assert len(peeks) == 1, f"seed {seed}: peek_time diverged: {peeks}"
        else:
            horizon = rng.uniform(0.0, max_horizon)
            for i, queue in enumerate(queues):
                batch_drain = queue.pop_until(horizon)
                drained[i].extend(_entry_key(e) for e in batch_drain)
                if i == 0:
                    drained_sequences.update(e[2] for e in batch_drain)
        # Live accounting is contract; raw ``len()`` is not — it counts
        # uncollected corpses, and corpse collection timing (heap
        # compaction vs calendar rebuild) differs across backends.
        counts = {(queue.live_count, queue.pending_events) for queue in queues}
        assert len(counts) == 1, f"seed {seed}: accounting diverged: {counts}"
    for i, queue in enumerate(queues):
        drained[i].extend(_entry_key(e) for e in queue.pop_until(math.inf))
        assert queue.pending_events == 0
    return drained


def _assert_identical(seed: int, n_ops: int) -> None:
    heap_seq, cal_seq = _run_workload((EventQueue(), CalendarQueue()), seed, n_ops)
    if heap_seq != cal_seq:  # pinpoint the divergence for the report
        for index, (left, right) in enumerate(zip(heap_seq, cal_seq)):
            assert left == right, (
                f"seed {seed}: backends diverged at pop {index}: "
                f"heap={left} calendar={right}"
            )
        raise AssertionError(
            f"seed {seed}: drain lengths differ: "
            f"heap={len(heap_seq)} calendar={len(cal_seq)}"
        )


@pytest.mark.parametrize("seed", _CORPUS["seeds"])
def test_backends_drain_identically_on_fuzz_corpus(seed):
    _assert_identical(seed, _CORPUS["n_ops"])


def test_corpus_documents_its_coverage():
    """The corpus must keep exercising the paths it was selected for."""
    coverage = {"resizes": 0, "compactions": 0}
    for seed in _CORPUS["seeds"]:
        queue = CalendarQueue()
        _run_workload((queue,), seed, _CORPUS["n_ops"])
        stats = queue.stats()
        coverage["resizes"] += int(stats["resizes_total"] > 0)
        coverage["compactions"] += int(stats["compactions_total"] > 0)
    assert coverage["resizes"] >= 3, coverage
    assert coverage["compactions"] >= 1, coverage


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_backends_drain_identically_on_fresh_workloads(seed):
    _assert_identical(seed, 150)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_plain_pushes_pop_in_heap_order(items):
    """No drains interleaved: the calendar equals one big heapsort."""
    heap, cal = EventQueue(), CalendarQueue()
    for time, priority in items:
        payload = _Raw()
        heap.push_raw(time, payload, priority)
        cal.push_raw(time, payload, priority)
    assert [
        _entry_key(e) for e in heap.pop_until(math.inf)
    ] == [_entry_key(e) for e in cal.pop_until(math.inf)]
