"""Property-based tests (hypothesis) on core data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sequences import run_lengths
from repro.chain.block import Block, make_genesis
from repro.chain.forkchoice import BlockTree
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.p2p.gossip import direct_push_count
from repro.p2p.peer import KnownCache
from repro.sim.events import EventQueue
from repro.stats.descriptive import Cdf, Summary


# ---------------------------------------------------------------------- #
# Event queue
# ---------------------------------------------------------------------- #


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


# ---------------------------------------------------------------------- #
# Mempool invariants
# ---------------------------------------------------------------------- #


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 8)),
        min_size=1,
        max_size=60,
    )
)
def test_mempool_pending_is_always_gapless_per_sender(arrivals):
    """Whatever the arrival order, the pending region must hold a gapless
    nonce prefix per sender — the invariant miners rely on."""
    pool = Mempool()
    for sender_index, nonce in arrivals:
        pool.add(Transaction(f"s{sender_index}", nonce))
    by_sender: dict[str, list[int]] = {}
    for tx in pool.pending.values():
        by_sender.setdefault(tx.sender, []).append(tx.nonce)
    for nonces in by_sender.values():
        nonces.sort()
        assert nonces == list(range(nonces[0], nonces[0] + len(nonces)))
        assert nonces[0] == 0  # nothing executed yet, so prefixes start at 0


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 6), st.floats(0.1, 10)),
        min_size=1,
        max_size=40,
    ),
    st.integers(21_000, 400_000),
)
def test_mempool_selection_respects_gas_limit_and_nonce_order(arrivals, gas_limit):
    pool = Mempool()
    for sender_index, nonce, price in arrivals:
        pool.add(Transaction(f"s{sender_index}", nonce, gas_price=price))
    chosen = pool.select(gas_limit=gas_limit)
    assert sum(tx.gas_used for tx in chosen) <= gas_limit
    seen: dict[str, int] = {}
    for tx in chosen:
        expected = seen.get(tx.sender, 0)
        assert tx.nonce == expected
        seen[tx.sender] = expected + 1


# ---------------------------------------------------------------------- #
# Fork choice invariants
# ---------------------------------------------------------------------- #


@given(st.lists(st.tuples(st.integers(0, 4), st.floats(1, 100)), max_size=30))
def test_block_tree_head_has_maximal_total_difficulty(extensions):
    """After arbitrary tree growth, the head is a heaviest leaf and the
    canonical chain is parent-linked from genesis."""
    tree = BlockTree(make_genesis())
    blocks = [tree.genesis]
    for salt, (parent_index, difficulty) in enumerate(extensions):
        parent = blocks[parent_index % len(blocks)]
        block = Block(
            height=parent.height + 1,
            parent_hash=parent.block_hash,
            miner="M",
            difficulty=float(difficulty),
            timestamp=parent.timestamp + 1.0,
            salt=salt,
        )
        tree.add(block)
        blocks.append(block)
    head_td = tree.total_difficulty(tree.head.block_hash)
    for block in blocks:
        assert tree.total_difficulty(block.block_hash) <= head_td + 1e-9
    chain = tree.canonical_chain()
    for parent, child in zip(chain, chain[1:]):
        assert child.parent_hash == parent.block_hash
        assert child.height == parent.height + 1


# ---------------------------------------------------------------------- #
# Known cache
# ---------------------------------------------------------------------- #


@given(st.lists(st.text(min_size=1, max_size=4), max_size=100), st.integers(1, 20))
def test_known_cache_never_exceeds_capacity(items, capacity):
    cache = KnownCache(capacity)
    for item in items:
        cache.add(item)
    assert len(cache) <= capacity
    # The most recently added item is always retained.
    if items:
        assert items[-1] in cache


# ---------------------------------------------------------------------- #
# Gossip policy
# ---------------------------------------------------------------------- #


@given(st.integers(0, 10_000))
def test_direct_push_count_bounds(peer_count):
    count = direct_push_count(peer_count)
    assert 0 <= count <= peer_count
    if peer_count > 0:
        assert count >= 1
        assert (count - 1) ** 2 < peer_count  # ceil(sqrt) tightness


# ---------------------------------------------------------------------- #
# Run lengths
# ---------------------------------------------------------------------- #


@given(st.lists(st.sampled_from(["A", "B", "C"]), max_size=200))
def test_run_lengths_partition_the_sequence(sequence):
    runs = run_lengths(sequence)
    assert sum(sum(lengths) for lengths in runs.values()) == len(sequence)
    for miner, lengths in runs.items():
        assert all(length >= 1 for length in lengths)
        assert sum(lengths) == sequence.count(miner)


# ---------------------------------------------------------------------- #
# Descriptive statistics
# ---------------------------------------------------------------------- #


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_summary_orderings(values):
    summary = Summary.of(values)
    assert summary.median <= summary.p90 + 1e-9
    assert summary.p90 <= summary.p95 + 1e-9
    assert summary.p95 <= summary.p99 + 1e-9
    assert summary.p99 <= summary.maximum + 1e-9
    assert min(values) - 1e-9 <= summary.mean <= summary.maximum + 1e-9


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50)
def test_cdf_is_a_distribution(values):
    cdf = Cdf.of(values)
    assert np.all(np.diff(cdf.values) >= 0)
    assert np.all(np.diff(cdf.fractions) >= 0)
    assert cdf.fractions[-1] == 1.0
    assert cdf.fraction_at(float(np.max(cdf.values))) == 1.0


# ---------------------------------------------------------------------- #
# Censorship windows
# ---------------------------------------------------------------------- #


@given(st.lists(st.sampled_from(["A", "B", "C"]), min_size=2, max_size=100))
def test_censorship_windows_partition_runs(miners):
    """Window lengths must equal the >=2 runs of the miner sequence."""
    from helpers import DatasetBuilder

    from repro.analysis.censorship import censorship_windows

    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(miners)
    result = censorship_windows(builder.build(), min_length=2)
    expected_runs = [
        lengths
        for pool, lengths_list in run_lengths(miners).items()
        for lengths in lengths_list
        if lengths >= 2
    ]
    assert sorted(w.length for w in result.windows) == sorted(expected_runs)
    for window in result.windows:
        assert window.duration >= 0


# ---------------------------------------------------------------------- #
# Streak theory vs lottery simulation
# ---------------------------------------------------------------------- #


@given(
    st.floats(min_value=0.15, max_value=0.45),
    st.integers(min_value=4, max_value=7),
)
@settings(max_examples=10, deadline=None)
def test_streak_theory_matches_lottery(share, length):
    from repro.analysis.sequences import expected_streaks, simulate_history

    blocks = 300_000
    result = simulate_history(blocks, {"P": share}, seed=9, lengths=(length,))
    expected = expected_streaks(share, length, blocks)
    observed = result.counts_at_least[length]
    # Poisson-ish tolerance around the closed form.
    assert abs(observed - expected) < 6 * (expected**0.5 + 1)
