"""Tests for the latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.latency import (
    LatencyModel,
    LatencyModelConfig,
    base_latency_seconds,
)
from repro.geo.regions import Region


def _model(jitter: float = 0.0, **kwargs) -> LatencyModel:
    return LatencyModel(
        np.random.default_rng(3),
        LatencyModelConfig(jitter_sigma=jitter, **kwargs),
    )


def test_base_latency_is_symmetric():
    for a in Region:
        for b in Region:
            assert base_latency_seconds(a, b) == base_latency_seconds(b, a)


def test_base_latency_defined_for_all_pairs():
    for a in Region:
        for b in Region:
            assert base_latency_seconds(a, b) > 0


def test_intra_region_faster_than_intercontinental():
    assert base_latency_seconds(
        Region.WESTERN_EUROPE, Region.WESTERN_EUROPE
    ) < base_latency_seconds(Region.WESTERN_EUROPE, Region.EASTERN_ASIA)


def test_delay_without_jitter_is_deterministic():
    model = _model(jitter=0.0)
    d1 = model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
    d2 = model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
    assert d1 == d2


def test_delay_includes_overhead_and_base():
    model = _model(jitter=0.0)
    expected = (
        base_latency_seconds(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
        + model.config.per_message_overhead
    )
    assert model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) == pytest.approx(
        expected
    )


def test_size_adds_serialisation_delay():
    model = _model(jitter=0.0, bandwidth_bytes_per_s=1000.0)
    small = model.delay(Region.NORTH_AMERICA, Region.NORTH_AMERICA, 0)
    big = model.delay(Region.NORTH_AMERICA, Region.NORTH_AMERICA, 5000)
    assert big == pytest.approx(small + 5.0)


def test_jitter_varies_delays():
    model = _model(jitter=0.5)
    draws = {
        model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(20)
    }
    assert len(draws) > 1


def test_jitter_mean_matches_lognormal_expectation():
    sigma = 0.35
    model = _model(jitter=sigma, tail_probability=0.0)
    base = base_latency_seconds(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
    samples = np.array(
        [
            model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
            - model.config.per_message_overhead
            for _ in range(20000)
        ]
    )
    expected_mean = base * np.exp(sigma**2 / 2)
    assert samples.mean() == pytest.approx(expected_mean, rel=0.05)


def test_expected_delay_matches_empirical_mean():
    model = _model(jitter=0.35)
    expected = model.expected_delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA)
    samples = np.array(
        [model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(20000)]
    )
    assert samples.mean() == pytest.approx(expected, rel=0.05)


def test_delay_is_always_positive():
    model = _model(jitter=1.5)
    for _ in range(100):
        assert model.delay(Region.CENTRAL_EUROPE, Region.CENTRAL_EUROPE) > 0


def test_invalid_bandwidth_rejected():
    with pytest.raises(ConfigurationError):
        LatencyModel(
            np.random.default_rng(0), LatencyModelConfig(bandwidth_bytes_per_s=0)
        )


def test_negative_jitter_rejected():
    with pytest.raises(ConfigurationError):
        LatencyModel(np.random.default_rng(0), LatencyModelConfig(jitter_sigma=-0.1))


def test_jitter_batching_is_deterministic_per_seed():
    a = LatencyModel(np.random.default_rng(5), LatencyModelConfig(jitter_sigma=0.3))
    b = LatencyModel(np.random.default_rng(5), LatencyModelConfig(jitter_sigma=0.3))
    # (tail mixture included in both — same seed, same draws)
    da = [a.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(50)]
    db = [b.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(50)]
    assert da == db


def test_tail_mixture_creates_heavy_tail():
    """p99/median should grow well beyond the pure-lognormal ratio."""
    plain = _model(jitter=0.35, tail_probability=0.0)
    heavy = _model(jitter=0.35, tail_probability=0.10, tail_multiplier=4.0)
    import numpy as _np

    def ratio(model):
        samples = _np.array(
            [model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(8000)]
        )
        return _np.percentile(samples, 99) / _np.median(samples)

    assert ratio(heavy) > ratio(plain) * 1.5


def test_expected_delay_includes_tail_mixture():
    model = _model(jitter=0.35, tail_probability=0.10, tail_multiplier=4.0)
    import numpy as _np

    samples = _np.array(
        [model.delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA) for _ in range(30000)]
    )
    assert samples.mean() == pytest.approx(
        model.expected_delay(Region.NORTH_AMERICA, Region.EASTERN_ASIA), rel=0.05
    )
