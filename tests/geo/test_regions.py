"""Tests for the region model."""

from __future__ import annotations

import pytest

from repro.geo.regions import (
    DEFAULT_NODE_DISTRIBUTION,
    VANTAGE_REGIONS,
    Region,
    RegionProfile,
    normalized_shares,
)


def test_vantage_regions_match_paper():
    assert set(VANTAGE_REGIONS) == {
        Region.NORTH_AMERICA,
        Region.EASTERN_ASIA,
        Region.WESTERN_EUROPE,
        Region.CENTRAL_EUROPE,
    }


def test_region_values_are_short_codes():
    assert Region.NORTH_AMERICA.value == "NA"
    assert Region.EASTERN_ASIA.value == "EA"


def test_display_names_cover_every_region():
    for region in Region:
        assert region.display_name


def test_default_distribution_sums_near_one():
    total = sum(p.node_share for p in DEFAULT_NODE_DISTRIBUTION)
    assert abs(total - 1.0) < 1e-9


def test_normalized_shares_sum_to_one():
    profiles = (
        RegionProfile(Region.NORTH_AMERICA, 2.0),
        RegionProfile(Region.EASTERN_ASIA, 6.0),
    )
    shares = normalized_shares(profiles)
    assert shares[Region.NORTH_AMERICA] == pytest.approx(0.25)
    assert shares[Region.EASTERN_ASIA] == pytest.approx(0.75)


def test_normalized_shares_rejects_zero_total():
    with pytest.raises(ValueError):
        normalized_shares((RegionProfile(Region.OCEANIA, 0.0),))


def test_region_is_str_enum():
    assert Region("NA") is Region.NORTH_AMERICA
