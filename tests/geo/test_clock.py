"""Tests for the NTP clock model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.clock import NtpClock, NtpModelConfig, PerfectClock


def test_offset_envelope_matches_paper_quantiles():
    """|offset| < 10ms in ~90% and < 100ms in ~99% of clocks (§II)."""
    rng = np.random.default_rng(0)
    offsets = np.array([NtpClock(rng).offset for _ in range(20000)])
    under_10ms = np.mean(np.abs(offsets) < 0.010)
    under_100ms = np.mean(np.abs(offsets) < 0.100)
    assert 0.85 <= under_10ms <= 0.95
    assert under_100ms >= 0.975


def test_offsets_are_centred():
    rng = np.random.default_rng(1)
    offsets = np.array([NtpClock(rng).offset for _ in range(5000)])
    assert abs(offsets.mean()) < 0.005


def test_read_applies_offset_plus_small_noise():
    clock = NtpClock(np.random.default_rng(2))
    readings = np.array([clock.read(100.0) for _ in range(200)])
    assert readings.mean() == pytest.approx(100.0 + clock.offset, abs=0.001)
    assert readings.std() < 0.005


def test_read_is_monotone_in_true_time_for_well_synced_clock():
    clock = NtpClock(
        np.random.default_rng(3),
        NtpModelConfig(reading_noise=0.0),
    )
    assert clock.read(10.0) < clock.read(20.0)


def test_resync_redraws_offset():
    clock = NtpClock(np.random.default_rng(4))
    offsets = set()
    for _ in range(10):
        offsets.add(clock.offset)
        clock.resync()
    assert len(offsets) > 1


def test_invalid_mixture_probabilities_rejected():
    with pytest.raises(ConfigurationError):
        NtpModelConfig(p_good=0.8, p_fair=0.3)
    with pytest.raises(ConfigurationError):
        NtpModelConfig(p_good=1.5)


def test_perfect_clock_has_no_error():
    clock = PerfectClock()
    assert clock.read(123.456) == 123.456
    assert clock.offset == 0.0
