"""Tests for descriptive statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.descriptive import (
    Cdf,
    Histogram,
    Summary,
    percentile,
    top_fraction_threshold,
)


def test_summary_of_known_sample():
    summary = Summary.of(list(range(1, 101)))
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.median == pytest.approx(50.5)
    assert summary.maximum == 100
    assert summary.p90 == pytest.approx(90.1)


def test_summary_rejects_empty():
    with pytest.raises(AnalysisError):
        Summary.of([])


def test_percentile_basic():
    assert percentile([1, 2, 3, 4, 5], 50) == 3


def test_top_fraction_threshold_matches_paper_semantics():
    """'Top 10%' is the value above which the top decile lies."""
    sample = list(range(1, 101))
    assert top_fraction_threshold(sample, 0.10) == pytest.approx(90.1)
    assert top_fraction_threshold(sample, 0.01) == pytest.approx(99.01)


def test_top_fraction_threshold_rejects_bad_fraction():
    with pytest.raises(AnalysisError):
        top_fraction_threshold([1.0], 0.0)
    with pytest.raises(AnalysisError):
        top_fraction_threshold([1.0], 1.0)


def test_cdf_quantiles():
    cdf = Cdf.of([1.0, 2.0, 3.0, 4.0])
    assert cdf.quantile(0.0) == 1.0
    assert cdf.quantile(1.0) == 4.0
    assert cdf.quantile(0.5) == pytest.approx(2.5)


def test_cdf_fraction_at():
    cdf = Cdf.of([1.0, 2.0, 3.0, 4.0])
    assert cdf.fraction_at(2.0) == pytest.approx(0.5)
    assert cdf.fraction_at(0.5) == 0.0
    assert cdf.fraction_at(10.0) == 1.0


def test_cdf_quantile_bounds_checked():
    cdf = Cdf.of([1.0])
    with pytest.raises(AnalysisError):
        cdf.quantile(1.5)


def test_cdf_fractions_are_monotone():
    cdf = Cdf.of(np.random.default_rng(0).random(100))
    assert (np.diff(cdf.fractions) >= 0).all()
    assert cdf.fractions[-1] == pytest.approx(1.0)


def test_histogram_densities_sum_to_one():
    histogram = Histogram.of([0.1, 0.2, 0.3, 0.9], bin_width=0.5, upper=1.0)
    assert histogram.densities.sum() == pytest.approx(1.0)


def test_histogram_clips_outliers_into_last_bin():
    histogram = Histogram.of([0.1, 99.0], bin_width=0.5, upper=1.0)
    assert histogram.densities.sum() == pytest.approx(1.0)


def test_histogram_bin_centers():
    histogram = Histogram.of([0.1], bin_width=0.5, upper=1.0)
    assert histogram.bin_centers[0] == pytest.approx(0.25)


def test_histogram_rejects_bad_bin_width():
    with pytest.raises(AnalysisError):
        Histogram.of([1.0], bin_width=0.0)
