"""Tests for the table renderer."""

from __future__ import annotations

from repro.stats.tables import format_percent, format_table


def test_basic_table_shape():
    rendered = format_table(
        headers=["Name", "Value"],
        rows=[("a", 1), ("bb", 22)],
    )
    lines = rendered.splitlines()
    assert len(lines) == 4  # header + rule + 2 rows
    assert "Name" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_title_is_prepended():
    rendered = format_table(["H"], [["x"]], title="My Table")
    assert rendered.splitlines()[0] == "My Table"


def test_floats_get_three_decimals():
    rendered = format_table(["H"], [[1.23456]])
    assert "1.235" in rendered


def test_large_numbers_get_thousands_separator():
    rendered = format_table(["H"], [[12345.0]])
    assert "12,345.000" in rendered


def test_columns_align():
    rendered = format_table(
        headers=["Name", "N"],
        rows=[("x", 1), ("longer", 100)],
    )
    lines = rendered.splitlines()
    assert len({len(line) for line in lines[0:1]}) == 1
    # Right-aligned numeric column: the '1' ends where '100' ends.
    assert lines[2].rstrip().endswith("1")
    assert lines[3].rstrip().endswith("100")


def test_format_percent():
    assert format_percent(0.0145) == "1.45%"
    assert format_percent(0.5, decimals=0) == "50%"


def test_left_alignment_mode():
    rendered = format_table(
        headers=["A", "B"], rows=[("x", "y")], align_right=False
    )
    lines = rendered.splitlines()
    assert lines[2].startswith("x")


def test_empty_rows_render_header_only():
    rendered = format_table(headers=["A"], rows=[])
    assert len(rendered.splitlines()) == 2  # header + rule


def test_fleet_profile_per_job_rows():
    from pathlib import Path

    from repro.experiments.fleet import (
        CampaignJob,
        FleetMetrics,
        JobOutcome,
    )
    from repro.sim.profile import SimMetrics
    from repro.stats.tables import format_fleet_profile

    metrics = FleetMetrics(
        jobs_total=3,
        jobs_succeeded=3,
        jobs_failed=0,
        cache_hits=1,
        retries=0,
        workers=2,
        wall_seconds=10.0,
        total_events=150_000,
        deduped=1,
        cached_events=90_000,
    )
    worker = JobOutcome(
        job=CampaignJob(preset_name="small", seed=1, trace=True),
        dataset=object(),
        events_processed=150_000,
        wall_seconds=12.5,
        sim_metrics=SimMetrics(
            events_processed=150_000,
            simulated_seconds=500.0,
            run_wall_seconds=12.0,
            events_per_second=12_500.0,
            profiled=False,
        ),
        trace_path=Path("x.trace.jsonl"),
    )
    cached = JobOutcome(
        job=CampaignJob(preset_name="small", seed=2),
        dataset=object(),
        from_cache=True,
    )
    deduped = JobOutcome(
        job=CampaignJob(preset_name="small", seed=1),
        dataset=worker.dataset,
        deduped=True,
    )
    # Without outcomes: summary lines only — but deduped jobs and the
    # persisted cache-hit event counts still show up in the summary.
    summary = format_fleet_profile(metrics)
    assert "Per-job throughput" not in summary
    assert "1 deduped" in summary
    assert "cached events" in summary and "90,000" in summary
    rendered = format_fleet_profile(metrics, [worker, cached, deduped])
    assert "Per-job throughput" in rendered
    assert "small seed 1" in rendered
    assert "12,500" in rendered  # SimMetrics throughput, not events/wall
    assert "yes" in rendered  # trace column
    assert "cached" in rendered
    assert "dedup" in rendered
    assert worker.events_per_second == 12_500.0
    # Fallback when the meta payload lacked SimMetrics.
    no_metrics = JobOutcome(
        job=CampaignJob(preset_name="small", seed=3),
        dataset=object(),
        events_processed=100,
        wall_seconds=4.0,
    )
    assert no_metrics.events_per_second == 25.0
