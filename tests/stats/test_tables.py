"""Tests for the table renderer."""

from __future__ import annotations

from repro.stats.tables import format_percent, format_table


def test_basic_table_shape():
    rendered = format_table(
        headers=["Name", "Value"],
        rows=[("a", 1), ("bb", 22)],
    )
    lines = rendered.splitlines()
    assert len(lines) == 4  # header + rule + 2 rows
    assert "Name" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_title_is_prepended():
    rendered = format_table(["H"], [["x"]], title="My Table")
    assert rendered.splitlines()[0] == "My Table"


def test_floats_get_three_decimals():
    rendered = format_table(["H"], [[1.23456]])
    assert "1.235" in rendered


def test_large_numbers_get_thousands_separator():
    rendered = format_table(["H"], [[12345.0]])
    assert "12,345.000" in rendered


def test_columns_align():
    rendered = format_table(
        headers=["Name", "N"],
        rows=[("x", 1), ("longer", 100)],
    )
    lines = rendered.splitlines()
    assert len({len(line) for line in lines[0:1]}) == 1
    # Right-aligned numeric column: the '1' ends where '100' ends.
    assert lines[2].rstrip().endswith("1")
    assert lines[3].rstrip().endswith("100")


def test_format_percent():
    assert format_percent(0.0145) == "1.45%"
    assert format_percent(0.5, decimals=0) == "50%"


def test_left_alignment_mode():
    rendered = format_table(
        headers=["A", "B"], rows=[("x", "y")], align_right=False
    )
    lines = rendered.splitlines()
    assert lines[2].startswith("x")


def test_empty_rows_render_header_only():
    rendered = format_table(headers=["A"], rows=[])
    assert len(rendered.splitlines()) == 2  # header + rule
