"""Tests for the ASCII figure renderers."""

from __future__ import annotations

import numpy as np

from repro.stats.descriptive import Cdf, Histogram
from repro.stats.figures import (
    format_bar_chart,
    format_cdf,
    format_histogram,
    format_stacked_shares,
)


def test_bar_chart_renders_every_label():
    chart = format_bar_chart({"EA": 0.4, "NA": 0.1}, title="T")
    assert chart.splitlines()[0] == "T"
    assert "EA" in chart and "NA" in chart


def test_bar_chart_percent_mode():
    chart = format_bar_chart({"EA": 0.4}, as_percent=True)
    assert "40.00%" in chart


def test_bar_chart_longest_bar_belongs_to_max():
    chart = format_bar_chart({"big": 10.0, "small": 1.0})
    lines = {line.split()[0]: line.count("█") for line in chart.splitlines()}
    assert lines["big"] > lines["small"]


def test_bar_chart_empty_data():
    assert "(no data)" in format_bar_chart({})


def test_stacked_shares_rows():
    rendered = format_stacked_shares({"PoolA": {"EA": 0.9, "WE": 0.1}})
    assert "PoolA" in rendered
    assert "EA= 90.0%" in rendered


def test_stacked_shares_empty():
    assert "(no data)" in format_stacked_shares({})


def test_cdf_quantile_table():
    cdf = Cdf.of(np.arange(1, 101, dtype=float))
    rendered = format_cdf(cdf, quantiles=(0.5,), unit="s")
    assert "p50" in rendered
    assert "50.5" in rendered


def test_histogram_skips_empty_bins():
    histogram = Histogram.of([0.05, 0.06], bin_width=0.05, upper=0.5)
    rendered = format_histogram(histogram.bin_centers, histogram.densities)
    assert rendered.count("|") >= 2
    assert "0.0ms" not in rendered or rendered  # no crash; empty bins skipped


def test_histogram_scale_converts_units():
    histogram = Histogram.of([0.05], bin_width=0.05, upper=0.5)
    rendered = format_histogram(
        histogram.bin_centers, histogram.densities, unit="ms", scale=1000.0
    )
    assert "ms" in rendered
    assert "75.0ms" in rendered or "25.0ms" in rendered


def test_cdf_custom_quantiles():
    cdf = Cdf.of(np.arange(100, dtype=float))
    rendered = format_cdf(cdf, quantiles=(0.25, 0.75))
    assert "p25" in rendered and "p75" in rendered
    assert "p50" not in rendered
