"""Tests for the global mining lottery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.node.miner import MiningCoordinator
from repro.node.node import ProtocolNode
from repro.node.pool import MiningPool, PoolSpec
from repro.p2p.network import Network
from repro.sim.engine import Simulator


def _coordinator(shares: dict[str, float], interval: float = 13.3, seed: int = 0):
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    pools = []
    for name, share in shares.items():
        spec = PoolSpec(name=name, hashpower=share, home_region=Region.EASTERN_ASIA)
        gateway = ProtocolNode(network, Region.EASTERN_ASIA, name=f"gw-{name}")
        pools.append(
            MiningPool(spec, [gateway], rng=simulator.rng.stream(f"pool.{name}"))
        )
    return simulator, MiningCoordinator(simulator, pools, target_interval=interval)


def test_requires_pools():
    with pytest.raises(ConfigurationError):
        MiningCoordinator(Simulator(), [], target_interval=10.0)


def test_requires_positive_interval():
    simulator, coordinator = _coordinator({"A": 0.5})
    with pytest.raises(ConfigurationError):
        MiningCoordinator(simulator, coordinator.pools, target_interval=0.0)


def test_hashpower_over_one_rejected():
    simulator, coordinator = _coordinator({"A": 0.6})
    pools = coordinator.pools
    with pytest.raises(ConfigurationError):
        MiningCoordinator(simulator, pools * 2, target_interval=10.0)


def test_block_rate_matches_target_interval():
    simulator, coordinator = _coordinator({"A": 1.0}, interval=10.0, seed=3)
    coordinator.start()
    simulator.run(until=20_000.0)
    expected = 20_000 / 10.0
    assert abs(len(coordinator.wins) - expected) < 4 * np.sqrt(expected)


def test_wins_split_by_hashpower():
    simulator, coordinator = _coordinator({"Big": 0.75, "Small": 0.25}, interval=5.0, seed=4)
    coordinator.start()
    simulator.run(until=20_000.0)
    counts = coordinator.wins_by_pool()
    total = sum(counts.values())
    big_share = counts["Big"] / total
    assert abs(big_share - 0.75) < 0.05


def test_win_records_carry_blocks():
    simulator, coordinator = _coordinator({"A": 1.0}, interval=5.0)
    coordinator.start()
    simulator.run(until=100.0)
    assert coordinator.wins
    for record in coordinator.wins:
        assert record.pool_name == "A"
        assert record.blocks
    assert coordinator.blocks_sealed >= len(coordinator.wins)


def test_stop_halts_lottery():
    simulator, coordinator = _coordinator({"A": 1.0}, interval=1.0)
    coordinator.start()
    simulator.run(until=50.0)
    count = len(coordinator.wins)
    coordinator.stop()
    simulator.run(until=100.0)
    assert len(coordinator.wins) == count
