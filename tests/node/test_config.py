"""Tests for node configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.node.config import (
    DEFAULT_MAX_PEERS,
    UNLIMITED_PEERS,
    NodeConfig,
    measurement_node_config,
)


def test_default_matches_geth():
    config = NodeConfig()
    assert config.max_peers == DEFAULT_MAX_PEERS == 25


def test_validation():
    with pytest.raises(ConfigurationError):
        NodeConfig(max_peers=0)
    with pytest.raises(ConfigurationError):
        NodeConfig(target_outbound=0)
    with pytest.raises(ConfigurationError):
        NodeConfig(tx_flush_interval=0)
    with pytest.raises(ConfigurationError):
        NodeConfig(fetch_timeout=0)


def test_measurement_config_unlimited():
    """§II: the main vantages ran with unlimited peers."""
    config = measurement_node_config(unlimited=True)
    assert config.max_peers == UNLIMITED_PEERS
    assert config.target_outbound > DEFAULT_MAX_PEERS


def test_measurement_config_default_peer_variant():
    """The Table II subsidiary client used Geth's default of 25 peers."""
    config = measurement_node_config(unlimited=False)
    assert config.max_peers == DEFAULT_MAX_PEERS


def test_config_is_frozen():
    config = NodeConfig()
    with pytest.raises(AttributeError):
        config.max_peers = 5  # type: ignore[misc]
