"""Tests for the protocol node's dissemination behaviour."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.node.config import NodeConfig
from repro.node.node import ProtocolNode
from repro.p2p.network import Network
from repro.sim.engine import Simulator


def _fabric(seed: int = 0) -> Network:
    simulator = Simulator(seed=seed)
    latency = LatencyModel(
        simulator.rng.stream("latency"), LatencyModelConfig(jitter_sigma=0.0)
    )
    return Network(simulator, latency)


def _node(network: Network, region: Region = Region.NORTH_AMERICA, **cfg) -> ProtocolNode:
    config = NodeConfig(**cfg) if cfg else NodeConfig()
    return ProtocolNode(network, region, config=config)


def _mesh(network: Network, count: int) -> list[ProtocolNode]:
    nodes = [_node(network) for _ in range(count)]
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            network.connect(a.node_id, b.node_id)
    return nodes


def _block_on(node: ProtocolNode, miner: str = "M", salt: int = 0, txs=()) -> Block:
    head = node.tree.head
    return Block(
        height=head.height + 1,
        parent_hash=head.block_hash,
        miner=miner,
        difficulty=100.0,
        timestamp=node.simulator.now,
        transactions=tuple(txs),
        salt=salt,
    )


def test_injected_block_reaches_all_peers():
    network = _fabric()
    nodes = _mesh(network, 5)
    block = _block_on(nodes[0])
    nodes[0].inject_block(block)
    network.simulator.run(until=30.0)
    for node in nodes:
        assert block.block_hash in node.tree
        assert node.tree.head.block_hash == block.block_hash


def test_block_propagates_over_multiple_hops():
    network = _fabric()
    chain_nodes = [_node(network) for _ in range(6)]
    for a, b in zip(chain_nodes, chain_nodes[1:]):
        network.connect(a.node_id, b.node_id)  # a line topology
    block = _block_on(chain_nodes[0])
    chain_nodes[0].inject_block(block)
    network.simulator.run(until=60.0)
    assert block.block_hash in chain_nodes[-1].tree


def test_duplicate_block_not_reimported():
    network = _fabric()
    nodes = _mesh(network, 3)
    block = _block_on(nodes[0])
    nodes[0].inject_block(block)
    nodes[0].inject_block(block)  # duplicate injection
    network.simulator.run(until=30.0)
    assert len(nodes[0].tree) == 2  # genesis + block


def test_orphan_waits_for_parent_then_imports():
    network = _fabric()
    node = _node(network)
    parent = _block_on(node)
    child = Block(
        height=2,
        parent_hash=parent.block_hash,
        miner="M",
        difficulty=100.0,
        timestamp=1.0,
    )
    node.inject_block(child)  # arrives before its parent
    network.simulator.run(until=5.0)
    assert child.block_hash not in node.tree
    node.inject_block(parent)
    network.simulator.run(until=10.0)
    assert parent.block_hash in node.tree
    assert child.block_hash in node.tree
    assert node.tree.head.block_hash == child.block_hash


def test_fork_blocks_coexist_and_heaviest_wins():
    network = _fabric()
    nodes = _mesh(network, 3)
    a = _block_on(nodes[0], miner="A", salt=0)
    b = _block_on(nodes[1], miner="B", salt=1)
    nodes[0].inject_block(a)
    nodes[1].inject_block(b)
    network.simulator.run(until=30.0)
    for node in nodes:
        assert a.block_hash in node.tree
        assert b.block_hash in node.tree
        assert len(node.tree.blocks_at_height(1)) == 2


def test_transaction_gossip_reaches_all_nodes():
    network = _fabric()
    nodes = _mesh(network, 4)
    tx = Transaction("alice", 0)
    nodes[0].submit_transaction(tx)
    network.simulator.run(until=30.0)
    for node in nodes:
        assert tx.tx_hash in node.mempool


def test_transaction_not_echoed_back_forever():
    network = _fabric()
    nodes = _mesh(network, 3)
    nodes[0].submit_transaction(Transaction("alice", 0))
    network.simulator.run(until=60.0)
    # Gossip must terminate: queue drains and no events remain.
    assert network.simulator.pending_events == 0


def test_submit_duplicate_transaction_ignored():
    network = _fabric()
    node = _node(network)
    tx = Transaction("alice", 0)
    node.submit_transaction(tx)
    node.submit_transaction(tx)
    assert len(node.mempool) == 1


def test_reorg_reinjects_replaced_transactions():
    network = _fabric()
    node = _node(network)
    tx = Transaction("alice", 0)
    node.submit_transaction(tx)
    light = _block_on(node, miner="A", salt=0, txs=[tx])
    node.inject_block(light)
    network.simulator.run(until=5.0)
    assert tx.tx_hash not in node.mempool.pending
    # A heavier competing block without the tx reorgs it out.
    heavy = Block(
        height=1,
        parent_hash=node.tree.genesis.block_hash,
        miner="B",
        difficulty=500.0,
        timestamp=1.0,
        salt=1,
    )
    node.inject_block(heavy)
    network.simulator.run(until=10.0)
    assert node.tree.head.block_hash == heavy.block_hash
    assert tx.tx_hash in node.mempool.pending


def test_head_listeners_fire_on_head_change():
    network = _fabric()
    node = _node(network)
    heads: list[str] = []
    node.head_listeners.append(lambda block: heads.append(block.block_hash))
    block = _block_on(node)
    node.inject_block(block)
    network.simulator.run(until=5.0)
    assert heads == [block.block_hash]


def test_dial_peers_respects_target_outbound():
    network = _fabric()
    nodes = [_node(network, target_outbound=3, max_peers=10) for _ in range(12)]
    for node in nodes:
        node.start()
    assert all(len(node.peers) >= 3 for node in nodes)


def test_dial_peers_respects_remote_capacity():
    network = _fabric()
    hub = _node(network, max_peers=2, target_outbound=1)
    others = [_node(network, max_peers=10, target_outbound=5) for _ in range(8)]
    for node in [hub, *others]:
        node.start()
    assert len(hub.peers) <= 2


def test_status_handshake_triggers_sync():
    """A freshly joined node pulls the head block it learns via Status."""
    network = _fabric()
    veteran = _node(network)
    block = _block_on(veteran)
    veteran.inject_block(block)
    network.simulator.run(until=5.0)
    newcomer = _node(network)
    network.connect(newcomer.node_id, veteran.node_id)
    network.simulator.run(until=30.0)
    assert block.block_hash in newcomer.tree


def test_validation_delay_defers_import():
    network = _fabric()
    node = _node(network)
    txs = [Transaction(f"s{i}", 0, gas_used=200_000) for i in range(8)]
    block = _block_on(node, txs=txs)
    node.inject_block(block)
    network.simulator.run(until=0.01)  # header check not even done
    assert block.block_hash not in node.tree
    network.simulator.run(until=5.0)
    assert block.block_hash in node.tree
