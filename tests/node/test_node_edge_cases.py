"""Edge-case behaviour of the protocol node's fetch and relay paths."""

from __future__ import annotations

from repro.chain.block import Block
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.node.config import NodeConfig
from repro.node.node import MAX_REPROPAGATIONS, ProtocolNode
from repro.p2p.messages import (
    BlockBodiesMessage,
    BlockHeadersMessage,
    GetBlockHeadersMessage,
    NewBlockHashesMessage,
    NewBlockMessage,
)
from repro.p2p.network import Network
from repro.sim.engine import Simulator


def _fabric(seed: int = 0) -> Network:
    simulator = Simulator(seed=seed)
    return Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )


def _pair(network: Network) -> tuple[ProtocolNode, ProtocolNode]:
    a = ProtocolNode(network, Region.NORTH_AMERICA, name="a")
    b = ProtocolNode(network, Region.NORTH_AMERICA, name="b")
    network.connect(a.node_id, b.node_id)
    return a, b


def _block_on(node: ProtocolNode, salt: int = 0) -> Block:
    head = node.tree.head
    return Block(
        height=head.height + 1,
        parent_hash=head.block_hash,
        miner="M",
        difficulty=100.0,
        timestamp=node.simulator.now,
        salt=salt,
    )


class Recorder(ProtocolNode):
    """Counts messages sent through the network for assertions."""


def test_announcement_for_known_block_triggers_no_fetch():
    network = _fabric()
    a, b = _pair(network)
    block = _block_on(a)
    a.inject_block(block)
    network.simulator.run(until=10.0)
    sent_before = network.messages_sent
    # b announces a block a already has: no GetBlockHeaders should follow.
    a.deliver(
        b.node_id, NewBlockHashesMessage(entries=((block.block_hash, 1),))
    )
    network.simulator.run(until=20.0)
    new_messages = network.messages_sent - sent_before
    assert new_messages == 0


def test_fetch_timeout_allows_retry():
    """If the announcer never answers, a later announce re-triggers."""
    network = _fabric()
    a, b = _pair(network)
    phantom_hash = "0xphantom"
    a.deliver(b.node_id, NewBlockHashesMessage(entries=((phantom_hash, 1),)))
    assert phantom_hash in a._fetching
    network.simulator.run(until=a.config.fetch_timeout + 1.0)
    assert phantom_hash not in a._fetching  # timed out
    a.deliver(b.node_id, NewBlockHashesMessage(entries=((phantom_hash, 1),)))
    assert phantom_hash in a._fetching  # retried


def test_headers_for_known_block_do_not_refetch_body():
    network = _fabric()
    a, b = _pair(network)
    block = _block_on(a)
    a.inject_block(block)
    network.simulator.run(until=10.0)
    sent_before = network.messages_sent
    a.deliver(b.node_id, BlockHeadersMessage(block))
    network.simulator.run(until=20.0)
    assert network.messages_sent == sent_before


def test_bodies_for_unknown_parent_buffered_as_orphan():
    network = _fabric()
    a, b = _pair(network)
    parent = _block_on(a)
    child = Block(
        height=2,
        parent_hash=parent.block_hash,
        miner="M",
        difficulty=100.0,
        timestamp=1.0,
    )
    a.deliver(b.node_id, BlockBodiesMessage(child))
    network.simulator.run(until=5.0)
    assert child.block_hash not in a.tree
    a.inject_block(parent)
    network.simulator.run(until=15.0)
    assert child.block_hash in a.tree


def test_get_headers_for_unknown_hash_is_silent():
    network = _fabric()
    a, b = _pair(network)
    sent_before = network.messages_sent
    a.deliver(b.node_id, GetBlockHeadersMessage("0xunknown"))
    network.simulator.run(until=5.0)
    assert network.messages_sent == sent_before


def test_repropagation_capped():
    """Duplicate NewBlock receptions re-propagate at most
    MAX_REPROPAGATIONS times while the import is still pending."""
    network = _fabric()
    hub = ProtocolNode(network, Region.NORTH_AMERICA, name="hub")
    spokes = [
        ProtocolNode(network, Region.NORTH_AMERICA, name=f"s{i}") for i in range(8)
    ]
    for spoke in spokes:
        network.connect(hub.node_id, spoke.node_id)
    block = _block_on(hub)
    td = 200.0
    sent_counts = []
    for index, spoke in enumerate(spokes[:5]):
        before = network.messages_sent
        hub.deliver(spoke.node_id, NewBlockMessage(block, td))
        network.simulator.run(until=network.simulator.now + 0.004)
        sent_counts.append(network.messages_sent - before)
    # First reception schedules import + propagation; the next
    # MAX_REPROPAGATIONS duplicates push again; further ones are silent.
    assert sum(1 for c in sent_counts[1:] if c > 0) <= MAX_REPROPAGATIONS


def test_message_from_unknown_peer_ignored():
    network = _fabric()
    a = ProtocolNode(network, Region.NORTH_AMERICA, name="a")
    block = Block(
        height=1,
        parent_hash=a.tree.genesis.block_hash,
        miner="M",
        difficulty=100.0,
        timestamp=0.0,
    )
    a.deliver(999, NewBlockMessage(block, 100.0))  # not a peer
    network.simulator.run(until=5.0)
    assert block.block_hash not in a.tree
