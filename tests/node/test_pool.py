"""Tests for mining pools and their selfish policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.transaction import Transaction
from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.node.node import ProtocolNode
from repro.node.pool import MiningPool, PoolPolicy, PoolSpec
from repro.p2p.network import Network
from repro.sim.engine import Simulator


def _world(extra_regions=(), policy: PoolPolicy | None = None, seed: int = 0):
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    spec = PoolSpec(
        name="TestPool",
        hashpower=0.5,
        home_region=Region.EASTERN_ASIA,
        extra_gateway_regions=tuple(extra_regions),
        policy=policy or PoolPolicy(),
    )
    gateways = [
        ProtocolNode(network, region, name=f"gw{i}")
        for i, region in enumerate(spec.gateway_regions)
    ]
    for i, a in enumerate(gateways):
        for b in gateways[i + 1 :]:
            network.connect(a.node_id, b.node_id)
    pool = MiningPool(spec, gateways, rng=np.random.default_rng(seed), gas_limit=1_000_000)
    return simulator, network, pool


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        PoolPolicy(empty_block_probability=1.5)
    with pytest.raises(ConfigurationError):
        PoolPolicy(head_lag=-1.0)
    with pytest.raises(ConfigurationError):
        PoolPolicy(partition_tuple_weights={})
    with pytest.raises(ConfigurationError):
        PoolPolicy(partition_tuple_weights={1: 1.0})


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        PoolSpec(name="X", hashpower=0.0, home_region=Region.EASTERN_ASIA)
    with pytest.raises(ConfigurationError):
        PoolSpec(name="X", hashpower=1.2, home_region=Region.EASTERN_ASIA)


def test_pool_requires_gateways():
    simulator = Simulator()
    spec = PoolSpec(name="X", hashpower=0.1, home_region=Region.EASTERN_ASIA)
    with pytest.raises(ConfigurationError):
        MiningPool(spec, [], rng=np.random.default_rng(0))


def test_win_seals_one_block_by_default():
    simulator, _, pool = _world()
    blocks = pool.on_win()
    assert len(blocks) == 1
    assert blocks[0].miner == "TestPool"
    assert blocks[0].height == 1


def test_sealed_block_reaches_all_gateways():
    simulator, _, pool = _world(extra_regions=(Region.NORTH_AMERICA,))
    block = pool.on_win()[0]
    simulator.run(until=10.0)
    for gateway in pool.gateways:
        assert block.block_hash in gateway.tree


def test_empty_block_policy():
    simulator, _, pool = _world(policy=PoolPolicy(empty_block_probability=1.0))
    pool.primary.submit_transaction(Transaction("alice", 0))
    simulator.run(until=2.0)
    block = pool.on_win()[0]
    assert block.is_empty


def test_full_block_includes_mempool_txs():
    simulator, _, pool = _world(policy=PoolPolicy(empty_block_probability=0.0))
    tx = Transaction("alice", 0)
    pool.primary.submit_transaction(tx)
    simulator.run(until=2.0)
    block = pool.on_win()[0]
    assert tx.tx_hash in block.tx_hashes


def test_one_miner_fork_seals_multiple_variants():
    policy = PoolPolicy(
        one_miner_fork_probability=1.0,
        partition_tuple_weights={2: 1.0},
        same_txset_probability=1.0,
    )
    simulator, _, pool = _world(policy=policy)
    blocks = pool.on_win()
    assert len(blocks) == 2
    assert blocks[0].height == blocks[1].height
    assert blocks[0].block_hash != blocks[1].block_hash
    assert blocks[0].tx_hashes == blocks[1].tx_hashes


def test_one_miner_fork_distinct_txsets():
    policy = PoolPolicy(
        one_miner_fork_probability=1.0,
        partition_tuple_weights={2: 1.0},
        same_txset_probability=0.0,
    )
    simulator, _, pool = _world(policy=policy)
    for index in range(6):
        pool.primary.submit_transaction(Transaction("alice", index))
    simulator.run(until=2.0)
    blocks = pool.on_win()
    assert blocks[0].tx_hashes != blocks[1].tx_hashes


def test_partition_tuple_sizes_follow_weights():
    policy = PoolPolicy(
        one_miner_fork_probability=1.0, partition_tuple_weights={7: 1.0}
    )
    simulator, _, pool = _world(policy=policy)
    assert len(pool.on_win()) == 7


def test_head_lag_keeps_mining_on_stale_head():
    """The stale-head window is what produces natural forks (§III-C4)."""
    policy = PoolPolicy(head_lag=5.0)
    simulator, _, pool = _world(policy=policy)
    first = pool.on_win()[0]
    simulator.run(until=1.0)  # gateway imported, but lag not elapsed
    assert pool.mining_head.height == 0
    second = pool.on_win()[0]
    assert second.height == first.height  # same height: a one-pool fork
    simulator.run(until=10.0)
    assert pool.mining_head.height >= 1


def test_zero_head_lag_updates_immediately():
    policy = PoolPolicy(head_lag=0.0)
    simulator, _, pool = _world(policy=policy)
    pool.on_win()
    simulator.run(until=2.0)
    assert pool.mining_head.height == 1


def test_sealed_blocks_ground_truth_log():
    simulator, _, pool = _world()
    pool.on_win()
    simulator.run(until=5.0)
    pool.on_win()
    assert len(pool.sealed_blocks) == 2


def test_uncles_harvested_when_available():
    simulator, _, pool = _world(policy=PoolPolicy(head_lag=0.0))
    from repro.chain.block import Block

    # Create a fork block the pool should reference as uncle.
    genesis = pool.primary.tree.genesis
    main = pool.on_win()[0]
    simulator.run(until=5.0)
    fork = Block(
        height=1,
        parent_hash=genesis.block_hash,
        miner="Rival",
        difficulty=100.0,
        timestamp=0.5,
        salt=9,
    )
    pool.primary.inject_block(fork)
    simulator.run(until=10.0)
    citing = pool.on_win()[0]
    assert fork.block_hash in citing.uncle_hashes
    assert main.block_hash not in citing.uncle_hashes
