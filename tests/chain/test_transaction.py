"""Tests for the transaction model."""

from __future__ import annotations

import pytest

from repro.chain.transaction import DEFAULT_TX_SIZE, Transaction


def test_hash_is_deterministic():
    assert Transaction("alice", 3).tx_hash == Transaction("alice", 3).tx_hash


def test_hash_distinguishes_senders_and_nonces():
    hashes = {
        Transaction("alice", 0).tx_hash,
        Transaction("alice", 1).tx_hash,
        Transaction("bob", 0).tx_hash,
    }
    assert len(hashes) == 3


def test_hash_has_hex_prefix():
    assert Transaction("alice", 0).tx_hash.startswith("0x")


def test_defaults():
    tx = Transaction("alice", 0)
    assert tx.size_bytes == DEFAULT_TX_SIZE
    assert tx.gas_used == 21_000
    assert tx.created_at == 0.0


def test_negative_nonce_rejected():
    with pytest.raises(ValueError):
        Transaction("alice", -1)


def test_explicit_hash_preserved():
    tx = Transaction("alice", 0, tx_hash="0xcustom")
    assert tx.tx_hash == "0xcustom"


def test_repr_is_compact():
    assert repr(Transaction("alice", 7)) == "Tx(alice#7)"


def test_transactions_are_frozen():
    tx = Transaction("alice", 0)
    with pytest.raises(AttributeError):
        tx.nonce = 5  # type: ignore[misc]


def test_equality_by_value():
    assert Transaction("alice", 0) == Transaction("alice", 0)
    assert Transaction("alice", 0) != Transaction("alice", 1)
