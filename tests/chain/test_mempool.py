"""Tests for the nonce-aware mempool."""

from __future__ import annotations

from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction


def tx(sender: str, nonce: int, price: float = 1.0, gas: int = 21_000) -> Transaction:
    return Transaction(sender, nonce, gas_price=price, gas_used=gas)


def test_in_order_txs_become_pending():
    pool = Mempool()
    assert pool.add(tx("a", 0))
    assert pool.add(tx("a", 1))
    assert len(pool) == 2
    assert pool.queued_count == 0


def test_gapped_tx_is_parked():
    pool = Mempool()
    pool.add(tx("a", 2))
    assert len(pool) == 0
    assert pool.queued_count == 1


def test_gap_fill_promotes_parked_txs():
    """The mechanism behind §III-C2: out-of-order receptions wait for
    their predecessors before becoming executable."""
    pool = Mempool()
    pool.add(tx("a", 2))
    pool.add(tx("a", 1))
    assert len(pool) == 0  # still gapped at nonce 0
    pool.add(tx("a", 0))
    assert len(pool) == 3
    assert pool.queued_count == 0


def test_duplicate_tx_ignored():
    pool = Mempool()
    assert pool.add(tx("a", 0))
    assert not pool.add(tx("a", 0))
    assert len(pool) == 1


def test_stale_nonce_dropped():
    pool = Mempool()
    pool.add(tx("a", 0))
    pool.remove_included([tx("a", 0)])
    assert not pool.add(tx("a", 0))


def test_contains_covers_pending_and_queued():
    pool = Mempool()
    pending = tx("a", 0)
    queued = tx("a", 5)
    pool.add(pending)
    pool.add(queued)
    assert pending.tx_hash in pool
    assert queued.tx_hash in pool


def test_next_nonce_tracks_executable_frontier():
    pool = Mempool()
    assert pool.next_nonce("a") == 0
    pool.add(tx("a", 0))
    pool.add(tx("a", 1))
    assert pool.next_nonce("a") == 2


def test_select_prefers_higher_gas_price():
    pool = Mempool()
    pool.add(tx("a", 0, price=1.0))
    pool.add(tx("b", 0, price=9.0))
    pool.add(tx("c", 0, price=5.0))
    chosen = pool.select(gas_limit=42_000)
    assert [t.sender for t in chosen] == ["b", "c"]


def test_select_keeps_per_sender_nonce_order():
    pool = Mempool()
    pool.add(tx("a", 0, price=1.0))
    pool.add(tx("a", 1, price=99.0))  # high price but must follow nonce 0
    chosen = pool.select(gas_limit=100_000)
    assert [(t.sender, t.nonce) for t in chosen] == [("a", 0), ("a", 1)]


def test_select_respects_gas_limit():
    pool = Mempool()
    for index in range(10):
        pool.add(tx(f"s{index}", 0, gas=21_000))
    chosen = pool.select(gas_limit=50_000)
    assert len(chosen) == 2


def test_select_respects_max_count():
    pool = Mempool()
    for index in range(10):
        pool.add(tx(f"s{index}", 0))
    assert len(pool.select(gas_limit=10**9, max_count=3)) == 3


def test_select_skips_sender_whose_next_tx_does_not_fit():
    pool = Mempool()
    pool.add(tx("big", 0, price=9.0, gas=100_000))
    pool.add(tx("small", 0, price=1.0, gas=21_000))
    chosen = pool.select(gas_limit=30_000)
    assert [t.sender for t in chosen] == ["small"]


def test_select_does_not_mutate_pool():
    pool = Mempool()
    pool.add(tx("a", 0))
    pool.select(gas_limit=10**9)
    assert len(pool) == 1


def test_remove_included_clears_pending_and_advances_nonce():
    pool = Mempool()
    pool.add(tx("a", 0))
    pool.add(tx("a", 1))
    pool.remove_included([tx("a", 0)])
    assert len(pool) == 1
    assert pool.next_nonce("a") == 2


def test_remove_included_unseen_txs_still_advances_frontier():
    """A block mined elsewhere may include txs this node never saw."""
    pool = Mempool()
    pool.add(tx("a", 0))
    pool.remove_included([tx("a", 0), tx("a", 1)])
    assert pool.next_nonce("a") == 2
    # A late local copy of nonce 1 must now be dropped as stale.
    assert not pool.add(tx("a", 1))


def test_remove_included_promotes_queued_successors():
    pool = Mempool()
    pool.add(tx("a", 1))  # parked: nonce 0 missing locally
    pool.remove_included([tx("a", 0)])  # block provided nonce 0
    assert len(pool) == 1
    assert pool.queued_count == 0


def test_remove_included_evicts_stale_pending():
    pool = Mempool()
    pool.add(tx("a", 0))
    pool.add(tx("a", 1))
    # A block includes both (e.g. mined from another node's view).
    pool.remove_included([tx("a", 0), tx("a", 1)])
    assert len(pool) == 0


def test_reinject_restores_reorged_out_txs():
    pool = Mempool()
    pool.add(tx("a", 0))
    included = pool.select(gas_limit=10**9)
    pool.remove_included(included)
    assert len(pool) == 0
    pool.reinject(included)
    assert len(pool) == 1
    assert pool.next_nonce("a") == 1


# ---------------------------------------------------------------------- #
# Capacity / eviction
# ---------------------------------------------------------------------- #


def test_capacity_must_be_positive():
    import pytest
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        Mempool(capacity=0)


def test_eviction_drops_cheapest_when_over_capacity():
    pool = Mempool(capacity=10)
    for index in range(10):
        pool.add(tx(f"rich{index}", 0, price=10.0))
    pool.add(tx("poor", 0, price=0.01))
    pool.add(tx("trigger", 0, price=10.0))
    assert len(pool) <= 10
    assert tx("poor", 0).tx_hash not in pool.pending


def test_eviction_preserves_gapless_prefixes():
    pool = Mempool(capacity=10)
    # One sender with a long cheap chain, others expensive.
    for nonce in range(6):
        pool.add(tx("cheap", nonce, price=0.1))
    for index in range(6):
        pool.add(tx(f"rich{index}", 0, price=9.0))
    nonces = sorted(t.nonce for t in pool.pending.values() if t.sender == "cheap")
    assert nonces == list(range(len(nonces)))  # still a prefix from 0


def test_evicted_tx_can_be_resubmitted():
    pool = Mempool(capacity=4)
    victim = tx("victim", 0, price=0.01)
    pool.add(victim)
    for index in range(5):
        pool.add(tx(f"rich{index}", 0, price=9.0))
    assert victim.tx_hash not in pool.pending
    assert pool.add(victim)  # forgotten, so acceptable again


def test_pool_stays_near_capacity_under_flood():
    pool = Mempool(capacity=50)
    for index in range(300):
        pool.add(tx(f"s{index}", 0, price=float(index % 17) + 0.1))
    assert len(pool) <= 50
