"""Tests for the reward schedule."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.forkchoice import BlockTree
from repro.chain.rewards import (
    BLOCK_REWARD_ETH,
    block_rewards,
    ledger_for_chain,
    uncle_reward,
)
from repro.errors import ChainError


def _child(parent: Block, miner: str = "A", salt: int = 0, uncles=()) -> Block:
    return Block(
        height=parent.height + 1,
        parent_hash=parent.block_hash,
        miner=miner,
        difficulty=100.0,
        timestamp=parent.timestamp + 13.3,
        salt=salt,
        uncle_hashes=tuple(uncles),
    )


def test_uncle_reward_decays_linearly():
    assert uncle_reward(9, 10) == pytest.approx(7 / 8 * BLOCK_REWARD_ETH)
    assert uncle_reward(6, 10) == pytest.approx(4 / 8 * BLOCK_REWARD_ETH)


def test_uncle_reward_outside_window_is_zero():
    assert uncle_reward(1, 10) == 0.0
    assert uncle_reward(10, 10) == 0.0
    assert uncle_reward(12, 10) == 0.0


def test_block_reward_event():
    tree = BlockTree()
    block = _child(tree.genesis)
    tree.add(block)
    events = block_rewards(block, tree)
    assert len(events) == 1
    assert events[0].miner == "A"
    assert events[0].amount_eth == BLOCK_REWARD_ETH
    assert events[0].kind == "block"


def test_uncle_and_nephew_rewards():
    tree = BlockTree()
    a = _child(tree.genesis)
    tree.add(a)
    uncle = _child(tree.genesis, miner="U", salt=1)
    tree.add(uncle)
    citing = _child(a, miner="A", uncles=[uncle.block_hash])
    tree.add(citing)
    events = block_rewards(citing, tree)
    kinds = {event.kind: event for event in events}
    assert kinds["uncle"].miner == "U"
    assert kinds["uncle"].amount_eth == pytest.approx(7 / 8 * BLOCK_REWARD_ETH)
    assert kinds["nephew"].miner == "A"
    assert kinds["nephew"].amount_eth == pytest.approx(BLOCK_REWARD_ETH / 32)


def test_fee_component():
    tree = BlockTree()
    from repro.chain.transaction import Transaction

    block = _child(tree.genesis)
    block = Block(
        height=1,
        parent_hash=tree.genesis.block_hash,
        miner="A",
        difficulty=100.0,
        timestamp=13.3,
        transactions=(Transaction("s", 0, gas_used=100_000),),
    )
    tree.add(block)
    events = block_rewards(block, tree, fee_per_gas_eth=1e-6)
    fees = [event for event in events if event.kind == "fees"]
    assert fees and fees[0].amount_eth == pytest.approx(0.1)


def test_unknown_uncle_raises():
    tree = BlockTree()
    a = _child(tree.genesis)
    tree.add(a)
    phantom = Block(
        height=2,
        parent_hash=a.block_hash,
        miner="A",
        difficulty=100.0,
        timestamp=26.6,
        uncle_hashes=("0xghost",),
    )
    with pytest.raises(ChainError):
        block_rewards(phantom, tree)


def test_ledger_accumulates_over_chain():
    tree = BlockTree()
    head = tree.genesis
    for index in range(3):
        block = _child(head, miner="A" if index % 2 == 0 else "B", salt=index)
        tree.add(block)
        head = block
    ledger = ledger_for_chain(tree)
    assert ledger["A"] == pytest.approx(2 * BLOCK_REWARD_ETH)
    assert ledger["B"] == pytest.approx(BLOCK_REWARD_ETH)


def test_one_miner_fork_pays_double():
    """§III-C5: a pool mining two same-height variants collects the main
    reward AND the uncle reward when the loser is later referenced."""
    tree = BlockTree()
    winner = _child(tree.genesis, miner="Pool", salt=0)
    loser = _child(tree.genesis, miner="Pool", salt=1)
    tree.add(winner)
    tree.add(loser)
    citing = _child(winner, miner="Pool", uncles=[loser.block_hash])
    tree.add(citing)
    ledger = ledger_for_chain(tree)
    expected = (
        2 * BLOCK_REWARD_ETH  # two main blocks
        + 7 / 8 * BLOCK_REWARD_ETH  # uncle reward for the losing variant
        + BLOCK_REWARD_ETH / 32  # nephew bonus for citing it
    )
    assert ledger["Pool"] == pytest.approx(expected)
