"""Tests for the block model."""

from __future__ import annotations

import pytest

from repro.chain.block import (
    EMPTY_BLOCK_SIZE,
    GENESIS_PARENT_HASH,
    Block,
    header_only_size,
    make_genesis,
)
from repro.chain.transaction import Transaction


def _block(**overrides) -> Block:
    defaults = dict(
        height=1,
        parent_hash="0xparent",
        miner="PoolA",
        difficulty=100.0,
        timestamp=13.3,
    )
    defaults.update(overrides)
    return Block(**defaults)


def test_hash_is_deterministic():
    assert _block().block_hash == _block().block_hash


def test_salt_distinguishes_same_miner_same_height():
    """The one-miner fork mechanism relies on salted variants."""
    assert _block(salt=0).block_hash != _block(salt=1).block_hash


def test_different_parent_different_hash():
    assert _block(parent_hash="0xa").block_hash != _block(parent_hash="0xb").block_hash


def test_empty_block_properties():
    block = _block()
    assert block.is_empty
    assert block.gas_used == 0
    assert block.size_bytes == EMPTY_BLOCK_SIZE


def test_full_block_size_and_gas():
    txs = (Transaction("a", 0, gas_used=21_000), Transaction("b", 0, gas_used=50_000))
    block = _block(transactions=txs)
    assert not block.is_empty
    assert block.gas_used == 71_000
    assert block.size_bytes == EMPTY_BLOCK_SIZE + sum(t.size_bytes for t in txs)


def test_tx_hashes_in_order():
    txs = (Transaction("a", 0), Transaction("a", 1))
    assert _block(transactions=txs).tx_hashes == (txs[0].tx_hash, txs[1].tx_hash)


def test_negative_height_rejected():
    with pytest.raises(ValueError):
        _block(height=-1)


def test_more_than_two_uncles_rejected():
    with pytest.raises(ValueError):
        _block(uncle_hashes=("0xu1", "0xu2", "0xu3"))


def test_genesis_shape():
    genesis = make_genesis()
    assert genesis.height == 0
    assert genesis.parent_hash == GENESIS_PARENT_HASH
    assert genesis.is_empty


def test_genesis_is_identical_across_calls():
    assert make_genesis().block_hash == make_genesis().block_hash


def test_header_only_size_is_constant():
    txs = (Transaction("a", 0),)
    assert header_only_size(_block(transactions=txs)) == EMPTY_BLOCK_SIZE


def test_repr_flags_empty_blocks():
    assert "empty" in repr(_block())
    assert "empty" not in repr(_block(transactions=(Transaction("a", 0),)))
