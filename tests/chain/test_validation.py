"""Tests for block/transaction validation."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.forkchoice import BlockTree
from repro.chain.transaction import Transaction
from repro.chain.validation import (
    ValidationConfig,
    validate_block,
    validate_transaction,
    validation_delay,
)
from repro.errors import ValidationError


@pytest.fixture()
def tree() -> BlockTree:
    return BlockTree()


def _child(parent: Block, **overrides) -> Block:
    fields = dict(
        height=parent.height + 1,
        parent_hash=parent.block_hash,
        miner="A",
        difficulty=100.0,
        timestamp=parent.timestamp + 13.3,
    )
    fields.update(overrides)
    return Block(**fields)


def test_valid_block_passes(tree):
    validate_block(_child(tree.genesis), tree)


def test_unknown_parent_rejected(tree):
    block = Block(
        height=1, parent_hash="0xmissing", miner="A", difficulty=1.0, timestamp=1.0
    )
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_wrong_height_rejected(tree):
    block = _child(tree.genesis, height=9)
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_backwards_timestamp_rejected(tree):
    block = _child(tree.genesis, timestamp=-5.0)
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_gas_over_limit_rejected(tree):
    txs = tuple(Transaction(f"s{i}", 0, gas_used=1_000_000) for i in range(9))
    block = _child(tree.genesis, transactions=txs, gas_limit=8_000_000)
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_non_positive_difficulty_rejected(tree):
    block = _child(tree.genesis, difficulty=0.0)
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_unknown_uncle_rejected(tree):
    block = _child(tree.genesis, uncle_hashes=("0xghost",))
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_ancestor_as_uncle_rejected(tree):
    a = _child(tree.genesis)
    tree.add(a)
    block = _child(a, uncle_hashes=(a.block_hash,))
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_same_height_uncle_rejected(tree):
    """Regression for the one-miner fork bug: a block competing at the
    new block's own height is never a valid uncle."""
    a = _child(tree.genesis)
    tree.add(a)
    parent = _child(a, miner="B", salt=1)
    tree.add(parent)
    competitor_at_same_height = _child(parent, miner="C", salt=2)
    tree.add(competitor_at_same_height)
    block = _child(parent, uncle_hashes=(competitor_at_same_height.block_hash,), salt=3)
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_valid_uncle_accepted(tree):
    a = _child(tree.genesis)
    tree.add(a)
    fork = _child(tree.genesis, miner="F", salt=1)
    tree.add(fork)
    block = _child(a, uncle_hashes=(fork.block_hash,))
    validate_block(block, tree)


def test_too_old_uncle_rejected(tree):
    old_fork = _child(tree.genesis, miner="F", salt=1)
    tree.add(old_fork)
    head = tree.genesis
    for index in range(8):
        head_block = _child(head, salt=10 + index)
        tree.add(head_block)
        head = head_block
    block = _child(head, uncle_hashes=(old_fork.block_hash,))
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_duplicate_uncles_rejected(tree):
    a = _child(tree.genesis)
    tree.add(a)
    fork = _child(tree.genesis, miner="F", salt=1)
    tree.add(fork)
    block = _child(a, uncle_hashes=(fork.block_hash, fork.block_hash))
    with pytest.raises(ValidationError):
        validate_block(block, tree)


def test_transaction_field_validation():
    validate_transaction(Transaction("a", 0))
    with pytest.raises(ValidationError):
        validate_transaction(Transaction("a", 0, gas_price=-1.0))
    with pytest.raises(ValidationError):
        validate_transaction(Transaction("a", 0, size_bytes=0))


def test_validation_delay_scales_with_gas(tree):
    config = ValidationConfig(seconds_per_gas=1e-6, verify_overhead=0.01)
    empty = _child(tree.genesis)
    full = _child(
        tree.genesis,
        transactions=(Transaction("a", 0, gas_used=100_000),),
        salt=1,
    )
    assert validation_delay(empty, config) == pytest.approx(0.01)
    assert validation_delay(full, config) == pytest.approx(0.11)


def test_empty_blocks_validate_faster_than_full():
    """The propagation head-start that §III-C3 says motivates empty-block
    mining."""
    empty = Block(height=1, parent_hash="0xp", miner="A", difficulty=1.0, timestamp=1.0)
    full = Block(
        height=1,
        parent_hash="0xp",
        miner="A",
        difficulty=1.0,
        timestamp=1.0,
        transactions=(Transaction("a", 0, gas_used=2_000_000),),
        salt=1,
    )
    assert validation_delay(empty) < validation_delay(full)
