"""Tests for the block tree and fork choice."""

from __future__ import annotations

import pytest

from repro.chain.block import Block, make_genesis
from repro.chain.forkchoice import BlockTree
from repro.errors import ChainError


def _child(parent: Block, miner: str = "A", difficulty: float = 100.0, salt: int = 0, uncles=()) -> Block:
    return Block(
        height=parent.height + 1,
        parent_hash=parent.block_hash,
        miner=miner,
        difficulty=difficulty,
        timestamp=parent.timestamp + 13.3,
        salt=salt,
        uncle_hashes=tuple(uncles),
    )


def _chain(tree: BlockTree, length: int, miner: str = "A") -> list[Block]:
    blocks = []
    head = tree.head
    for _ in range(length):
        block = _child(head, miner=miner)
        tree.add(block)
        blocks.append(block)
        head = block
    return blocks


def test_starts_at_genesis():
    tree = BlockTree()
    assert tree.head == tree.genesis
    assert len(tree) == 1


def test_add_extends_head():
    tree = BlockTree()
    block = _child(tree.genesis)
    assert tree.add(block) is True
    assert tree.head == block


def test_add_duplicate_rejected():
    tree = BlockTree()
    block = _child(tree.genesis)
    tree.add(block)
    with pytest.raises(ChainError):
        tree.add(block)


def test_add_orphan_rejected():
    tree = BlockTree()
    stranger = Block(
        height=5, parent_hash="0xnope", miner="A", difficulty=1.0, timestamp=1.0
    )
    with pytest.raises(ChainError):
        tree.add(stranger)


def test_add_wrong_height_rejected():
    tree = BlockTree()
    bad = Block(
        height=7,
        parent_hash=tree.genesis.block_hash,
        miner="A",
        difficulty=1.0,
        timestamp=1.0,
    )
    with pytest.raises(ChainError):
        tree.add(bad)


def test_total_difficulty_accumulates():
    tree = BlockTree(make_genesis(difficulty=10.0))
    a = _child(tree.genesis, difficulty=5.0)
    tree.add(a)
    b = _child(a, difficulty=7.0)
    tree.add(b)
    assert tree.total_difficulty(b.block_hash) == pytest.approx(22.0)


def test_total_difficulty_unknown_block_raises():
    with pytest.raises(ChainError):
        BlockTree().total_difficulty("0xmissing")


def test_heavier_branch_wins_reorg():
    tree = BlockTree()
    light = _child(tree.genesis, miner="A", difficulty=100.0)
    tree.add(light)
    heavy = _child(tree.genesis, miner="B", difficulty=150.0, salt=1)
    changed = tree.add(heavy)
    assert changed is True
    assert tree.head == heavy


def test_equal_difficulty_first_arrival_wins():
    """Geth keeps the first-seen block on ties — the geographic race."""
    tree = BlockTree()
    first = _child(tree.genesis, miner="A")
    second = _child(tree.genesis, miner="B", salt=1)
    tree.add(first)
    changed = tree.add(second)
    assert changed is False
    assert tree.head == first


def test_canonical_chain_in_height_order():
    tree = BlockTree()
    blocks = _chain(tree, 5)
    chain = tree.canonical_chain()
    assert [b.height for b in chain] == [0, 1, 2, 3, 4, 5]
    assert chain[-1] == blocks[-1]


def test_is_canonical_distinguishes_fork():
    tree = BlockTree()
    main = _chain(tree, 3)
    fork = _child(main[0], miner="F", salt=9)
    tree.add(fork)
    assert tree.is_canonical(main[2].block_hash)
    assert not tree.is_canonical(fork.block_hash)


def test_is_canonical_unknown_raises():
    with pytest.raises(ChainError):
        BlockTree().is_canonical("0xmissing")


def test_confirmations_count_follow_blocks():
    tree = BlockTree()
    blocks = _chain(tree, 6)
    assert tree.confirmations(blocks[0].block_hash) == 5
    assert tree.confirmations(blocks[-1].block_hash) == 0


def test_confirmations_on_fork_raises():
    tree = BlockTree()
    main = _chain(tree, 2)
    fork = _child(main[0], miner="F", salt=3)
    tree.add(fork)
    with pytest.raises(ChainError):
        tree.confirmations(fork.block_hash)


def test_ancestors_stop_at_genesis():
    tree = BlockTree()
    blocks = _chain(tree, 3)
    ancestors = list(tree.ancestors(blocks[-1].block_hash, 10))
    assert [a.height for a in ancestors] == [2, 1, 0]


def test_children_tracking():
    tree = BlockTree()
    a = _child(tree.genesis, miner="A")
    b = _child(tree.genesis, miner="B", salt=1)
    tree.add(a)
    tree.add(b)
    assert set(tree.children_of(tree.genesis.block_hash)) == {
        a.block_hash,
        b.block_hash,
    }


def test_uncle_candidates_are_ancestor_siblings_only():
    """Regression: children of the head itself are competing blocks, not
    uncles — a block citing one is invalid network-wide."""
    tree = BlockTree()
    main = _chain(tree, 3)
    same_height_as_next = _child(main[-1], miner="F", salt=5)
    tree.add(same_height_as_next)  # child of head: NOT an uncle candidate
    fork_lower = _child(main[0], miner="F", salt=6)
    tree.add(fork_lower)  # sibling of main[1]: valid uncle
    candidates = tree.uncle_candidates(tree.head.block_hash)
    hashes = {c.block_hash for c in candidates}
    assert fork_lower.block_hash in hashes
    assert same_height_as_next.block_hash not in hashes


def test_uncle_candidates_exclude_already_referenced():
    tree = BlockTree()
    main = _chain(tree, 2)
    uncle = _child(main[0], miner="F", salt=7)
    tree.add(uncle)
    citing = _child(main[-1], miner="A", uncles=[uncle.block_hash])
    tree.add(citing)
    assert uncle.block_hash not in {
        c.block_hash for c in tree.uncle_candidates(citing.block_hash)
    }


def test_uncle_candidates_respect_depth_window():
    tree = BlockTree()
    main = _chain(tree, 1)
    old_fork = _child(tree.genesis, miner="F", salt=8)
    tree.add(old_fork)
    _chain(tree, 9)  # extend far past the uncle window
    candidates = tree.uncle_candidates(tree.head.block_hash)
    assert old_fork.block_hash not in {c.block_hash for c in candidates}
    assert main  # silence unused warning


def test_referenced_uncle_hashes_from_main_chain():
    tree = BlockTree()
    main = _chain(tree, 2)
    uncle = _child(main[0], miner="F", salt=4)
    tree.add(uncle)
    citing = _child(main[-1], miner="A", uncles=[uncle.block_hash])
    tree.add(citing)
    assert tree.referenced_uncle_hashes() == (uncle.block_hash,)


def test_blocks_at_height():
    tree = BlockTree()
    main = _chain(tree, 2)
    fork = _child(main[0], miner="F", salt=2)
    tree.add(fork)
    at_two = tree.blocks_at_height(2)
    assert {b.block_hash for b in at_two} == {main[1].block_hash, fork.block_hash}


def test_contains_and_get():
    tree = BlockTree()
    block = _child(tree.genesis)
    tree.add(block)
    assert block.block_hash in tree
    assert tree.get(block.block_hash) == block
    assert tree.get("0xmissing") is None
    with pytest.raises(ChainError):
        tree.require("0xmissing")


def test_deep_reorg_switches_whole_branch():
    tree = BlockTree()
    main = _chain(tree, 3, miner="A")
    # Build a heavier parallel branch from genesis.
    head = tree.genesis
    for index in range(3):
        block = _child(head, miner="B", difficulty=200.0, salt=10 + index)
        tree.add(block)
        head = block
    assert tree.head == head
    assert not tree.is_canonical(main[-1].block_hash)
