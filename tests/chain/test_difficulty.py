"""Tests for the difficulty rule."""

from __future__ import annotations

import pytest

from repro.chain.difficulty import (
    BYZANTIUM_BOMB_DELAY,
    CONSTANTINOPLE_BOMB_DELAY,
    DifficultyConfig,
    bomb_component,
    next_difficulty,
)
from repro.errors import ConfigurationError

PARENT_DIFFICULTY = 2_000_000.0


def test_fast_block_raises_difficulty():
    result = next_difficulty(PARENT_DIFFICULTY, 100.0, 103.0, height=100)
    assert result > PARENT_DIFFICULTY


def test_slow_block_lowers_difficulty():
    result = next_difficulty(PARENT_DIFFICULTY, 100.0, 140.0, height=100)
    assert result < PARENT_DIFFICULTY


def test_adjustment_step_is_parent_over_2048():
    fast = next_difficulty(PARENT_DIFFICULTY, 100.0, 101.0, height=100)
    assert fast == pytest.approx(PARENT_DIFFICULTY * (1 + 1 / 2048))


def test_adjustment_is_floored_at_minus_99():
    result = next_difficulty(PARENT_DIFFICULTY, 100.0, 100_000.0, height=100)
    assert result == pytest.approx(PARENT_DIFFICULTY * (1 - 99 / 2048))


def test_uncle_parent_gets_extra_window():
    plain = next_difficulty(PARENT_DIFFICULTY, 100.0, 112.0, height=100)
    with_uncles = next_difficulty(
        PARENT_DIFFICULTY, 100.0, 112.0, height=100, parent_has_uncles=True
    )
    assert with_uncles > plain


def test_non_monotone_timestamp_is_tolerated():
    result = next_difficulty(PARENT_DIFFICULTY, 100.0, 100.0, height=100)
    assert result > 0


def test_minimum_difficulty_floor():
    config = DifficultyConfig(minimum_difficulty=131_072.0)
    result = next_difficulty(131_072.0, 100.0, 10_000.0, height=1, config=config)
    assert result == 131_072.0


def test_bomb_is_zero_before_delay_window():
    config = DifficultyConfig()
    assert bomb_component(CONSTANTINOPLE_BOMB_DELAY - 1, config) == 0.0


def test_bomb_grows_exponentially_past_delay():
    config = DifficultyConfig()
    early = bomb_component(CONSTANTINOPLE_BOMB_DELAY + 300_000, config)
    late = bomb_component(CONSTANTINOPLE_BOMB_DELAY + 500_000, config)
    assert late == early * 4  # two doubling periods apart


def test_byzantium_bomb_fires_earlier_than_constantinople():
    """The Constantinople delay (EIP-1234) is what pushed inter-block
    times back down in Feb 2019 — the effect §III-C1 discusses."""
    height = BYZANTIUM_BOMB_DELAY + 1_000_000
    byzantium = bomb_component(height, DifficultyConfig(bomb_delay=BYZANTIUM_BOMB_DELAY))
    constantinople = bomb_component(
        height, DifficultyConfig(bomb_delay=CONSTANTINOPLE_BOMB_DELAY)
    )
    assert byzantium > constantinople


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        DifficultyConfig(minimum_difficulty=0)
    with pytest.raises(ConfigurationError):
        DifficultyConfig(uncle_target_window=0)
