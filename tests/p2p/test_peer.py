"""Tests for per-connection peer state."""

from __future__ import annotations

import pytest

from repro.p2p.peer import MAX_KNOWN_BLOCKS, MAX_KNOWN_TXS, KnownCache, Peer


def test_known_cache_membership():
    cache = KnownCache(4)
    cache.add("a")
    assert "a" in cache
    assert "b" not in cache


def test_known_cache_add_is_idempotent():
    cache = KnownCache(4)
    cache.add("a")
    cache.add("a")
    assert len(cache) == 1


def test_known_cache_evicts_fifo():
    cache = KnownCache(3)
    for item in ("a", "b", "c", "d"):
        cache.add(item)
    assert "a" not in cache
    assert {"b", "c", "d"} <= {x for x in ("b", "c", "d") if x in cache}


def test_known_cache_requires_positive_capacity():
    with pytest.raises(ValueError):
        KnownCache(0)


def test_peer_marks_and_queries_blocks():
    peer = Peer(remote_id=1, connected_at=0.0)
    assert not peer.knows_block("0xb")
    peer.mark_block("0xb")
    assert peer.knows_block("0xb")


def test_peer_marks_and_queries_txs():
    peer = Peer(remote_id=1, connected_at=0.0)
    peer.mark_tx("0xt")
    assert peer.knows_tx("0xt")
    assert not peer.knows_tx("0xother")


def test_peer_default_capacities_match_geth():
    peer = Peer(remote_id=1, connected_at=0.0)
    assert peer.known_blocks.capacity == MAX_KNOWN_BLOCKS
    assert peer.known_txs.capacity == MAX_KNOWN_TXS


def test_block_cache_eviction_forgets_old_hashes():
    peer = Peer(remote_id=1, connected_at=0.0)
    for index in range(MAX_KNOWN_BLOCKS + 10):
        peer.mark_block(f"0x{index}")
    assert not peer.knows_block("0x0")
    assert peer.knows_block(f"0x{MAX_KNOWN_BLOCKS + 9}")
