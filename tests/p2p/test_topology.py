"""Tests for overlay topology analysis."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.node.config import NodeConfig
from repro.node.node import ProtocolNode
from repro.p2p.network import Network
from repro.p2p.topology import analyze_topology, overlay_graph
from repro.geo.regions import DEFAULT_NODE_DISTRIBUTION, Region, normalized_shares
from repro.sim.engine import Simulator

import numpy as np


def _network_with_nodes(count: int = 40, seed: int = 0) -> Network:
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    shares = normalized_shares(DEFAULT_NODE_DISTRIBUTION)
    regions = list(shares)
    weights = np.array([shares[r] for r in regions])
    rng = np.random.default_rng(seed)
    nodes = [
        ProtocolNode(
            network,
            regions[int(rng.choice(len(regions), p=weights))],
            config=NodeConfig(max_peers=12, target_outbound=6),
        )
        for _ in range(count)
    ]
    for node in nodes:
        node.start()
    return network


def test_overlay_graph_shape():
    network = _network_with_nodes()
    graph = overlay_graph(network)
    assert graph.number_of_nodes() == 40
    assert graph.number_of_edges() > 40  # avg degree > 2


def test_overlay_nodes_carry_regions():
    network = _network_with_nodes()
    graph = overlay_graph(network)
    for _, data in graph.nodes(data=True):
        assert Region(data["region"])


def test_overlay_is_connected_with_random_dialing():
    report = analyze_topology(_network_with_nodes())
    assert report.connected
    assert report.diameter <= 6  # small-world mesh


def test_degree_statistics():
    report = analyze_topology(_network_with_nodes())
    assert 5.0 <= report.mean_degree <= 13.0
    assert report.max_degree <= 12  # NodeConfig cap


def test_overlay_is_geography_blind():
    """§III-B1: identifier-based peer selection must not cluster regions."""
    report = analyze_topology(_network_with_nodes(count=60, seed=3))
    assert report.geography_blind
    # The intra-region share should sit near the random expectation.
    assert report.intra_region_edge_share < 0.5


def test_empty_network_raises():
    simulator = Simulator()
    network = Network(simulator)
    with pytest.raises(AnalysisError):
        analyze_topology(network)


def test_render():
    rendered = analyze_topology(_network_with_nodes()).render()
    assert "Overlay topology" in rendered
    assert "same-region edges" in rendered
