"""Tests for the gossip split policy."""

from __future__ import annotations

import numpy as np

from repro.p2p.gossip import GossipConfig, direct_push_count, split_targets


def test_direct_push_count_is_ceil_sqrt():
    assert direct_push_count(25) == 5
    assert direct_push_count(26) == 6
    assert direct_push_count(1) == 1
    assert direct_push_count(0) == 0


def test_direct_push_count_never_exceeds_peers():
    assert direct_push_count(2) <= 2


def test_custom_exponent():
    config = GossipConfig(direct_push_fraction_exponent=1.0)
    assert direct_push_count(10, config) == 10


def test_split_partitions_candidates():
    rng = np.random.default_rng(0)
    candidates = list(range(25))
    direct, announce = split_targets(candidates, rng)
    assert len(direct) == 5
    assert len(announce) == 20
    assert set(direct) | set(announce) == set(candidates)
    assert not set(direct) & set(announce)


def test_split_empty_candidates():
    rng = np.random.default_rng(0)
    assert split_targets([], rng) == ([], [])


def test_split_without_announce_remainder():
    rng = np.random.default_rng(0)
    config = GossipConfig(announce_remainder=False)
    direct, announce = split_targets(list(range(25)), rng, config)
    assert len(direct) == 5
    assert announce == []


def test_split_direct_subset_is_random():
    candidates = list(range(25))
    rng = np.random.default_rng(1)
    picks = {tuple(sorted(split_targets(candidates, rng)[0])) for _ in range(20)}
    assert len(picks) > 1
