"""Tests for wire message sizes and shapes."""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.p2p.messages import (
    ANNOUNCEMENT_ENTRY_SIZE,
    MESSAGE_OVERHEAD,
    BlockBodiesMessage,
    BlockHeadersMessage,
    GetBlockBodiesMessage,
    GetBlockHeadersMessage,
    NewBlockHashesMessage,
    NewBlockMessage,
    StatusMessage,
    TransactionsMessage,
)


def _block(txs: int = 0) -> Block:
    return Block(
        height=1,
        parent_hash="0xp",
        miner="A",
        difficulty=1.0,
        timestamp=1.0,
        transactions=tuple(Transaction(f"s{i}", 0) for i in range(txs)),
    )


def test_new_block_carries_full_payload():
    message = NewBlockMessage(_block(txs=3), total_difficulty=10.0)
    assert message.size_bytes == MESSAGE_OVERHEAD + _block(txs=3).size_bytes


def test_full_block_is_bigger_than_empty():
    empty = NewBlockMessage(_block(0), 1.0)
    full = NewBlockMessage(_block(10), 1.0)
    assert full.size_bytes > empty.size_bytes


def test_announcement_is_much_smaller_than_full_block():
    """The asymmetry that makes announce+fetch worthwhile."""
    announce = NewBlockHashesMessage(entries=(("0xb", 1),))
    full = NewBlockMessage(_block(txs=20), 1.0)
    assert announce.size_bytes * 10 < full.size_bytes


def test_announcement_size_scales_with_entries():
    one = NewBlockHashesMessage(entries=(("0xa", 1),))
    two = NewBlockHashesMessage(entries=(("0xa", 1), ("0xb", 2)))
    assert two.size_bytes - one.size_bytes == ANNOUNCEMENT_ENTRY_SIZE


def test_transactions_message_size_sums_payloads():
    txs = (Transaction("a", 0), Transaction("b", 0))
    message = TransactionsMessage(txs)
    assert message.size_bytes == MESSAGE_OVERHEAD + sum(t.size_bytes for t in txs)


def test_request_messages_are_small():
    for message in (
        GetBlockHeadersMessage("0xb"),
        GetBlockBodiesMessage("0xb"),
        StatusMessage("0xh", 1.0, 5),
    ):
        assert message.size_bytes < 200


def test_bodies_response_carries_block():
    block = _block(txs=2)
    message = BlockBodiesMessage(block)
    assert message.block_hash == block.block_hash
    assert message.size_bytes > BlockHeadersMessage(block).size_bytes


def test_message_kinds_are_distinct():
    kinds = {
        NewBlockMessage.kind,
        NewBlockHashesMessage.kind,
        TransactionsMessage.kind,
        GetBlockHeadersMessage.kind,
        BlockHeadersMessage.kind,
        GetBlockBodiesMessage.kind,
        BlockBodiesMessage.kind,
        StatusMessage.kind,
    }
    assert len(kinds) == 8
