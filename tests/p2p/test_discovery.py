"""Tests for the discovery overlay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.p2p.discovery import DiscoveryService
from repro.p2p.node_id import xor_distance


def _service(count: int) -> tuple[DiscoveryService, list[int]]:
    service = DiscoveryService()
    ids = list(range(1, count + 1))
    for node_id in ids:
        service.register(node_id, object())
    return service, ids


def test_register_and_len():
    service, _ = _service(5)
    assert len(service) == 5


def test_duplicate_registration_rejected():
    service, _ = _service(1)
    with pytest.raises(ConfigurationError):
        service.register(1, object())


def test_unregister_is_idempotent():
    service, _ = _service(2)
    service.unregister(1)
    service.unregister(1)
    assert len(service) == 1


def test_lookup_returns_closest_by_xor():
    service, ids = _service(16)
    target = 7
    result = service.lookup(target, k=4)
    expected = sorted(ids, key=lambda node_id: xor_distance(node_id, target))[:4]
    assert result == expected


def test_lookup_excludes_requested_id():
    service, _ = _service(8)
    result = service.lookup(3, k=8, exclude=3)
    assert 3 not in result


def test_sample_peers_never_returns_self():
    service, _ = _service(30)
    rng = np.random.default_rng(0)
    peers = service.sample_peers(own_id=5, count=10, rng=rng)
    assert 5 not in peers


def test_sample_peers_are_distinct():
    service, _ = _service(30)
    peers = service.sample_peers(1, 15, np.random.default_rng(1))
    assert len(peers) == len(set(peers))


def test_sample_peers_caps_at_population():
    service, _ = _service(5)
    peers = service.sample_peers(1, 50, np.random.default_rng(2))
    assert len(peers) <= 4  # everyone but self


def test_sample_peers_geography_blind():
    """Peer selection depends only on IDs — uniform over the population."""
    service = DiscoveryService()
    population = 60
    for node_id in range(1, population + 1):
        service.register(node_id, object())
    counts = {node_id: 0 for node_id in range(1, population + 1)}
    rng = np.random.default_rng(3)
    for _ in range(300):
        for peer in service.sample_peers(0, 8, rng):
            counts[peer] += 1
    values = np.array(list(counts.values()), dtype=float)
    # No node should be wildly over/under-selected.
    assert values.min() > values.mean() * 0.3
    assert values.max() < values.mean() * 3.0


def test_node_for_unknown_raises():
    service, _ = _service(1)
    with pytest.raises(ConfigurationError):
        service.node_for(99)


def test_all_ids_lists_registered():
    service, ids = _service(4)
    assert sorted(service.all_ids()) == ids
