"""Tests for the discovery overlay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.p2p.discovery import DiscoveryService
from repro.p2p.node_id import xor_distance


def _service(count: int) -> tuple[DiscoveryService, list[int]]:
    service = DiscoveryService()
    ids = list(range(1, count + 1))
    for node_id in ids:
        service.register(node_id, object())
    return service, ids


def test_register_and_len():
    service, _ = _service(5)
    assert len(service) == 5


def test_duplicate_registration_rejected():
    service, _ = _service(1)
    with pytest.raises(ConfigurationError):
        service.register(1, object())


def test_unregister_is_idempotent():
    service, _ = _service(2)
    service.unregister(1)
    service.unregister(1)
    assert len(service) == 1


def test_lookup_returns_closest_by_xor():
    service, ids = _service(16)
    target = 7
    result = service.lookup(target, k=4)
    expected = sorted(ids, key=lambda node_id: xor_distance(node_id, target))[:4]
    assert result == expected


def test_lookup_excludes_requested_id():
    service, _ = _service(8)
    result = service.lookup(3, k=8, exclude=3)
    assert 3 not in result


def test_sample_peers_never_returns_self():
    service, _ = _service(30)
    rng = np.random.default_rng(0)
    peers = service.sample_peers(own_id=5, count=10, rng=rng)
    assert 5 not in peers


def test_sample_peers_are_distinct():
    service, _ = _service(30)
    peers = service.sample_peers(1, 15, np.random.default_rng(1))
    assert len(peers) == len(set(peers))


def test_sample_peers_caps_at_population():
    service, _ = _service(5)
    peers = service.sample_peers(1, 50, np.random.default_rng(2))
    assert len(peers) <= 4  # everyone but self


def test_sample_peers_geography_blind():
    """Peer selection depends only on IDs — uniform over the population."""
    service = DiscoveryService()
    population = 60
    for node_id in range(1, population + 1):
        service.register(node_id, object())
    counts = {node_id: 0 for node_id in range(1, population + 1)}
    rng = np.random.default_rng(3)
    for _ in range(300):
        for peer in service.sample_peers(0, 8, rng):
            counts[peer] += 1
    values = np.array(list(counts.values()), dtype=float)
    # No node should be wildly over/under-selected.
    assert values.min() > values.mean() * 0.3
    assert values.max() < values.mean() * 3.0


def test_node_for_unknown_raises():
    service, _ = _service(1)
    with pytest.raises(ConfigurationError):
        service.node_for(99)


def test_all_ids_lists_registered():
    service, ids = _service(4)
    assert sorted(service.all_ids()) == ids


def test_lookup_matches_brute_force_on_random_ids():
    """The trie walk is exactly the sorted-by-distance order.

    Identifiers are unique, so XOR distances to any target are unique and
    the nearest-k set/order is unambiguous — the fast path must reproduce
    it bit for bit (peer sampling draws depend on it).
    """
    rng = np.random.default_rng(11)
    from repro.p2p.node_id import random_node_id

    service = DiscoveryService()
    ids = [random_node_id(rng) for _ in range(257)]
    for node_id in ids:
        service.register(node_id, object())
    for trial in range(50):
        target = random_node_id(rng) if trial % 2 else ids[trial]
        for k in (1, 3, 16, 257, 300):
            for exclude in (None, ids[trial]):
                expected = sorted(
                    (i for i in ids if i != exclude),
                    key=lambda i: xor_distance(i, target),
                )[:k]
                assert service.lookup(target, k=k, exclude=exclude) == expected


def test_lookup_tracks_churn():
    """Register/unregister after a lookup invalidates the sorted index."""
    service, ids = _service(32)
    target = 21
    before = service.lookup(target, k=32)
    service.unregister(ids[3])
    service.register(1000, object())
    after = service.lookup(target, k=40)
    assert ids[3] not in after
    assert 1000 in after
    assert len(after) == 32
    remaining = [i for i in ids if i != ids[3]] + [1000]
    assert after == sorted(remaining, key=lambda i: xor_distance(i, target))
    assert before != after


def test_lookup_zero_k_is_empty():
    service, _ = _service(4)
    assert service.lookup(2, k=0) == []
