"""Tests for node identifiers and the XOR metric."""

from __future__ import annotations

import numpy as np

from repro.p2p.node_id import (
    NODE_ID_BITS,
    bucket_index,
    format_node_id,
    random_node_id,
    xor_distance,
)


def test_random_ids_fit_256_bits():
    rng = np.random.default_rng(0)
    for _ in range(100):
        node_id = random_node_id(rng)
        assert 0 <= node_id < 2**NODE_ID_BITS


def test_random_ids_are_distinct():
    rng = np.random.default_rng(1)
    ids = {random_node_id(rng) for _ in range(1000)}
    assert len(ids) == 1000


def test_random_ids_deterministic_per_seed():
    a = random_node_id(np.random.default_rng(7))
    b = random_node_id(np.random.default_rng(7))
    assert a == b


def test_xor_distance_identity():
    assert xor_distance(42, 42) == 0


def test_xor_distance_symmetry():
    assert xor_distance(10, 99) == xor_distance(99, 10)


def test_xor_distance_triangle_relaxed():
    """XOR satisfies d(a,c) <= d(a,b) ^ ... actually d(a,c) = d(a,b)^d(b,c)."""
    a, b, c = 0b1010, 0b0110, 0b0001
    assert xor_distance(a, c) == xor_distance(a, b) ^ xor_distance(b, c)


def test_bucket_index_is_msb_of_distance():
    assert bucket_index(0, 1) == 0
    assert bucket_index(0, 2) == 1
    assert bucket_index(0, 0b1000_0000) == 7


def test_bucket_index_equal_ids():
    assert bucket_index(5, 5) == 0


def test_format_node_id_is_short():
    rng = np.random.default_rng(2)
    rendered = format_node_id(random_node_id(rng))
    assert rendered.startswith("0x")
    assert len(rendered) < 20
