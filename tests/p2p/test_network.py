"""Tests for the network fabric."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.p2p.messages import Message, StatusMessage
from repro.p2p.network import Network
from repro.sim.engine import Simulator


class StubNode:
    """Minimal NetworkMember implementation for fabric tests."""

    def __init__(self, node_id: int, region: Region = Region.NORTH_AMERICA) -> None:
        self.node_id = node_id
        self.region = region
        self.inbox: list[tuple[int, Message]] = []
        self.connections: list[tuple[int, bool]] = []
        self.disconnections: list[int] = []

    def deliver(self, sender_id: int, message: Message) -> None:
        self.inbox.append((sender_id, message))

    def on_peer_connected(self, peer_id: int, inbound: bool) -> None:
        self.connections.append((peer_id, inbound))

    def on_peer_disconnected(self, peer_id: int) -> None:
        self.disconnections.append(peer_id)


@pytest.fixture()
def fabric():
    simulator = Simulator(seed=0)
    latency = LatencyModel(
        simulator.rng.stream("latency"), LatencyModelConfig(jitter_sigma=0.0)
    )
    network = Network(simulator, latency)
    a, b = StubNode(1), StubNode(2, Region.EASTERN_ASIA)
    network.register(a)
    network.register(b)
    return simulator, network, a, b


def test_register_duplicate_rejected(fabric):
    _, network, a, _ = fabric
    with pytest.raises(ConfigurationError):
        network.register(a)


def test_register_adds_to_discovery(fabric):
    _, network, a, b = fabric
    assert set(network.discovery.all_ids()) == {a.node_id, b.node_id}


def test_connect_notifies_both_sides(fabric):
    _, network, a, b = fabric
    assert network.connect(a.node_id, b.node_id)
    assert a.connections == [(2, False)]  # dialer side: outbound
    assert b.connections == [(1, True)]  # listener side: inbound


def test_connect_is_idempotent(fabric):
    _, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    assert network.connect(a.node_id, b.node_id) is False
    assert network.link_count() == 1


def test_self_connection_rejected(fabric):
    _, network, a, _ = fabric
    with pytest.raises(ConfigurationError):
        network.connect(a.node_id, a.node_id)


def test_send_requires_connection(fabric):
    _, network, a, b = fabric
    with pytest.raises(ConfigurationError):
        network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))


def test_send_delivers_after_latency(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    delay = network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))
    assert delay > 0
    assert b.inbox == []  # not yet delivered
    simulator.run()
    assert len(b.inbox) == 1
    sender_id, message = b.inbox[0]
    assert sender_id == a.node_id
    assert isinstance(message, StatusMessage)


def test_larger_messages_take_longer(fabric):
    simulator, network, a, b = fabric

    class Sized(Message):
        def __init__(self, size: int) -> None:
            self._size = size

        @property
        def size_bytes(self) -> int:
            return self._size

    network.connect(a.node_id, b.node_id)
    small = network.send(a.node_id, b.node_id, Sized(10))
    big = network.send(a.node_id, b.node_id, Sized(10_000_000))
    assert big > small


def test_disconnect_drops_in_flight_messages(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))
    network.disconnect(a.node_id, b.node_id)
    simulator.run()
    assert b.inbox == []
    assert b.disconnections == [a.node_id]


def test_disconnect_unknown_link_is_noop(fabric):
    _, network, a, b = fabric
    network.disconnect(a.node_id, b.node_id)  # no error
    assert b.disconnections == []


def test_traffic_counters(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    message = StatusMessage("0xh", 1.0, 0)
    network.send(a.node_id, b.node_id, message)
    assert network.messages_sent == 1  # stub nodes send no handshake
    assert network.bytes_sent == message.size_bytes


def test_member_lookup(fabric):
    _, network, a, _ = fabric
    assert network.member(a.node_id) is a
    with pytest.raises(ConfigurationError):
        network.member(999)
