"""Tests for the network fabric."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.p2p.messages import Message, NewBlockHashesMessage, StatusMessage
from repro.p2p.network import Network
from repro.sim.engine import Simulator


class StubNode:
    """Minimal NetworkMember implementation for fabric tests."""

    def __init__(self, node_id: int, region: Region = Region.NORTH_AMERICA) -> None:
        self.node_id = node_id
        self.region = region
        self.inbox: list[tuple[int, Message]] = []
        self.connections: list[tuple[int, bool]] = []
        self.disconnections: list[int] = []

    def deliver(self, sender_id: int, message: Message) -> None:
        self.inbox.append((sender_id, message))

    def on_peer_connected(self, peer_id: int, inbound: bool) -> None:
        self.connections.append((peer_id, inbound))

    def on_peer_disconnected(self, peer_id: int) -> None:
        self.disconnections.append(peer_id)


@pytest.fixture()
def fabric():
    simulator = Simulator(seed=0)
    latency = LatencyModel(
        simulator.rng.stream("latency"), LatencyModelConfig(jitter_sigma=0.0)
    )
    network = Network(simulator, latency)
    a, b = StubNode(1), StubNode(2, Region.EASTERN_ASIA)
    network.register(a)
    network.register(b)
    return simulator, network, a, b


def test_register_duplicate_rejected(fabric):
    _, network, a, _ = fabric
    with pytest.raises(ConfigurationError):
        network.register(a)


def test_register_adds_to_discovery(fabric):
    _, network, a, b = fabric
    assert set(network.discovery.all_ids()) == {a.node_id, b.node_id}


def test_connect_notifies_both_sides(fabric):
    _, network, a, b = fabric
    assert network.connect(a.node_id, b.node_id)
    assert a.connections == [(2, False)]  # dialer side: outbound
    assert b.connections == [(1, True)]  # listener side: inbound


def test_connect_is_idempotent(fabric):
    _, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    assert network.connect(a.node_id, b.node_id) is False
    assert network.link_count() == 1


def test_self_connection_rejected(fabric):
    _, network, a, _ = fabric
    with pytest.raises(ConfigurationError):
        network.connect(a.node_id, a.node_id)


def test_send_requires_connection(fabric):
    _, network, a, b = fabric
    with pytest.raises(ConfigurationError):
        network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))


def test_send_delivers_after_latency(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    delay = network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))
    assert delay > 0
    assert b.inbox == []  # not yet delivered
    simulator.run()
    assert len(b.inbox) == 1
    sender_id, message = b.inbox[0]
    assert sender_id == a.node_id
    assert isinstance(message, StatusMessage)


def test_larger_messages_take_longer(fabric):
    simulator, network, a, b = fabric

    class Sized(Message):
        def __init__(self, size: int) -> None:
            self._size = size

        @property
        def size_bytes(self) -> int:
            return self._size

    network.connect(a.node_id, b.node_id)
    small = network.send(a.node_id, b.node_id, Sized(10))
    big = network.send(a.node_id, b.node_id, Sized(10_000_000))
    assert big > small


def test_disconnect_drops_in_flight_messages(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    network.send(a.node_id, b.node_id, StatusMessage("0xh", 1.0, 0))
    network.disconnect(a.node_id, b.node_id)
    simulator.run()
    assert b.inbox == []
    assert b.disconnections == [a.node_id]


def test_disconnect_unknown_link_is_noop(fabric):
    _, network, a, b = fabric
    network.disconnect(a.node_id, b.node_id)  # no error
    assert b.disconnections == []


def test_traffic_counters(fabric):
    simulator, network, a, b = fabric
    network.connect(a.node_id, b.node_id)
    message = StatusMessage("0xh", 1.0, 0)
    network.send(a.node_id, b.node_id, message)
    assert network.messages_sent == 1  # stub nodes send no handshake
    assert network.bytes_sent == message.size_bytes


def test_member_lookup(fabric):
    _, network, a, _ = fabric
    assert network.member(a.node_id) is a
    with pytest.raises(ConfigurationError):
        network.member(999)


# --------------------------------------------------------------------- #
# Batched waves (send_many / send_each)
# --------------------------------------------------------------------- #

_WAVE_REGIONS = (
    Region.NORTH_AMERICA,
    Region.EASTERN_ASIA,
    Region.WESTERN_EUROPE,
    Region.SOUTH_AMERICA,
    Region.OCEANIA,
    Region.CENTRAL_EUROPE,
    Region.EASTERN_EUROPE,
    Region.SOUTH_ASIA,
    Region.NORTH_AMERICA,
    Region.EASTERN_ASIA,
)


def _wave_world(n: int = 10, jitter: float = 0.35):
    """A hub node connected to ``n`` spokes, jitter enabled."""
    simulator = Simulator(seed=123)
    latency = LatencyModel(
        simulator.rng.stream("latency"), LatencyModelConfig(jitter_sigma=jitter)
    )
    network = Network(simulator, latency)
    hub = StubNode(100)
    network.register(hub)
    spokes = [StubNode(i, _WAVE_REGIONS[i % len(_WAVE_REGIONS)]) for i in range(n)]
    for spoke in spokes:
        network.register(spoke)
        network.connect(hub.node_id, spoke.node_id)
    return simulator, network, hub, spokes


def test_send_many_matches_scalar_sends_exactly():
    """One wave draws the same delays as a scalar send loop.

    Both worlds share a seed, so the jitter stream starts identically;
    batched sampling must consume it in scalar order and produce
    bit-identical delays — that is what keeps pinned runs stable.
    """
    message = StatusMessage("0xh", 1.0, 0)
    _, net_a, hub_a, spokes_a = _wave_world()
    scalar = [net_a.send(hub_a.node_id, s.node_id, message) for s in spokes_a]
    _, net_b, hub_b, spokes_b = _wave_world()
    batched = net_b.send_many(
        hub_b.node_id, [s.node_id for s in spokes_b], message
    )
    assert batched == scalar
    assert net_b.messages_sent == net_a.messages_sent
    assert net_b.bytes_sent == net_a.bytes_sent


def test_send_many_delivers_like_scalar_sends():
    message = StatusMessage("0xh", 1.0, 0)
    sim_a, net_a, hub_a, spokes_a = _wave_world()
    for s in spokes_a:
        net_a.send(hub_a.node_id, s.node_id, message)
    sim_a.run()
    sim_b, net_b, hub_b, spokes_b = _wave_world()
    net_b.send_many(hub_b.node_id, [s.node_id for s in spokes_b], message)
    sim_b.run()
    assert sim_b.now == sim_a.now
    assert sim_b.events_processed == sim_a.events_processed
    for sa, sb in zip(spokes_a, spokes_b):
        assert sb.inbox == [(hub_a.node_id, message)]
        assert sb.inbox == sa.inbox


def test_send_each_honours_per_message_sizes():
    """Each recipient's delay reflects its own payload size."""
    sim, net, hub, spokes = _wave_world(n=2, jitter=0.0)
    small = StatusMessage("0xh", 1.0, 0)
    # NewBlockHashes with many entries is much larger than Status.
    big = NewBlockHashesMessage(tuple((f"0x{i}", i) for i in range(200)))
    ids = [s.node_id for s in spokes]
    delays = net.send_each(hub.node_id, ids, [small, big])
    assert delays[1] > delays[0]
    sim.run()
    assert spokes[0].inbox == [(hub.node_id, small)]
    assert spokes[1].inbox == [(hub.node_id, big)]
    assert net.bytes_sent == small.size_bytes + big.size_bytes


def test_send_each_matches_scalar_sends_exactly():
    messages = [
        NewBlockHashesMessage(tuple((f"0x{i}", i) for i in range(count)))
        for count in (1, 40, 3, 17, 9, 2, 55, 4, 21, 8)
    ]
    _, net_a, hub_a, spokes_a = _wave_world()
    scalar = [
        net_a.send(hub_a.node_id, s.node_id, m)
        for s, m in zip(spokes_a, messages)
    ]
    _, net_b, hub_b, spokes_b = _wave_world()
    batched = net_b.send_each(
        hub_b.node_id, [s.node_id for s in spokes_b], messages
    )
    assert batched == scalar
    assert net_b.bytes_sent == net_a.bytes_sent


def test_send_many_single_recipient_falls_back_to_send():
    sim, net, hub, spokes = _wave_world(n=3)
    message = StatusMessage("0xh", 1.0, 0)
    delays = net.send_many(hub.node_id, [spokes[0].node_id], message)
    assert len(delays) == 1
    sim.run()
    assert spokes[0].inbox == [(hub.node_id, message)]
    assert spokes[1].inbox == []


def test_send_many_empty_wave_is_noop():
    sim, net, hub, _ = _wave_world(n=2)
    assert net.send_many(hub.node_id, [], StatusMessage("0xh", 1.0, 0)) == []
    assert net.messages_sent == 0
    assert sim.pending_events == 0


def test_send_many_requires_connections():
    _, net, hub, _ = _wave_world(n=2)
    with pytest.raises(ConfigurationError):
        net.send_many(hub.node_id, [999, 1000], StatusMessage("0xh", 1.0, 0))


def test_send_many_drops_on_torn_down_link():
    """A wave entry whose link died in flight is dropped, like send()."""
    sim, net, hub, spokes = _wave_world(n=4)
    message = StatusMessage("0xh", 1.0, 0)
    net.send_many(hub.node_id, [s.node_id for s in spokes], message)
    net.disconnect(hub.node_id, spokes[1].node_id)
    sim.run()
    assert spokes[0].inbox == [(hub.node_id, message)]
    assert spokes[1].inbox == []
    assert spokes[2].inbox == [(hub.node_id, message)]
