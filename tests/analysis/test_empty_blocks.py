"""Tests for the empty-block analysis (Figure 6)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.empty_blocks import REMAINING_LABEL, empty_block_analysis
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset


def test_counts_empty_blocks_per_pool():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "Zhizhu")  # empty
    builder.add_block("0xb2", 2, "Zhizhu", tx_hashes=("0xt1",))
    builder.add_block("0xb3", 3, "Nanopool", tx_hashes=("0xt2",))
    builder.add_block("0xb4", 4, "Nanopool", tx_hashes=("0xt3",))
    result = empty_block_analysis(builder.build())
    assert result.pool("Zhizhu").empty_blocks == 1
    assert result.pool("Zhizhu").total_blocks == 2
    assert result.pool("Nanopool").empty_blocks == 0


def test_overall_fraction():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A")
    builder.add_block("0xb2", 2, "A", tx_hashes=("0xt",))
    result = empty_block_analysis(builder.build())
    # Genesis (empty by construction) is in the window at t=0; with
    # measurement_start=0 it counts as a block. Use fractions of per_pool.
    assert result.pool("A").empty_fraction == pytest.approx(0.5)


def test_forks_excluded_from_figure6():
    builder = DatasetBuilder()
    builder.add_block("0xmain", 1, "A", tx_hashes=("0xt",))
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    result = empty_block_analysis(builder.build())
    assert all(stats.pool != "B" for stats in result.per_pool)


def test_small_pools_grouped():
    builder = DatasetBuilder()
    miners = [f"P{i}" for i in range(16)]
    builder.add_main_chain(miners)
    result = empty_block_analysis(builder.build(), top_n=3)
    labels = [stats.pool for stats in result.per_pool]
    assert REMAINING_LABEL in labels
    assert len(labels) <= 4


def test_empty_window_raises():
    dataset = MeasurementDataset(vantage_regions={"WE": "WE"})
    with pytest.raises(AnalysisError):
        empty_block_analysis(dataset)


def test_unknown_pool_lookup_raises():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt",))
    result = empty_block_analysis(builder.build())
    with pytest.raises(KeyError):
        result.pool("Nope")


def test_render_shows_counts_and_percentage():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A")
    builder.add_block("0xb2", 2, "A", tx_hashes=("0xt",))
    rendered = empty_block_analysis(builder.build()).render()
    assert "Figure 6" in rendered
    assert "%" in rendered
