"""Tests for the fork analysis (Table III and §III-C5)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.forks import fork_analysis, one_miner_forks


def test_single_fork_of_length_one():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A", tx_hashes=("0xt",))
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xmain2", 2, "A", uncle_hashes=("0xfork",))
    result = fork_analysis(builder.build())
    assert result.by_length() == {1: (1, 1, 0)}
    assert result.recognized_uncle_blocks == 1
    assert result.unrecognized_blocks == 0


def test_unrecognized_fork():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xmain2", 2, "A")  # never references the fork
    result = fork_analysis(builder.build())
    assert result.by_length() == {1: (1, 0, 1)}
    assert result.unrecognized_blocks == 1


def test_length_two_fork_counts_once():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xmain2", 2, "A")
    builder.add_block("0xf1", 1, "B", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xf2", 2, "B", parent_hash="0xf1", canonical=False)
    result = fork_analysis(builder.build())
    assert result.by_length() == {2: (1, 0, 1)}


def test_length_two_fork_never_recognized_even_if_root_is_uncle():
    """Only the fork root can validly become an uncle; the paper observed
    zero recognized forks of length > 1 and the rule makes it structural."""
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xf1", 1, "B", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xf2", 2, "B", parent_hash="0xf1", canonical=False)
    builder.add_block("0xmain2", 2, "A", uncle_hashes=("0xf1",))
    result = fork_analysis(builder.build())
    (length_two,) = result.by_length().values()
    assert length_two == (1, 0, 1)


def test_share_accounting():
    builder = DatasetBuilder(measurement_start=1.0)  # exclude genesis
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xmain2", 2, "A")
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    result = fork_analysis(builder.build())
    assert result.total_blocks == 3
    assert result.main_share == pytest.approx(2 / 3)
    assert result.unrecognized_share == pytest.approx(1 / 3)


def test_no_forks_is_fine():
    builder = DatasetBuilder()
    builder.add_main_chain(["A", "B"])
    result = fork_analysis(builder.build())
    assert result.forks == ()
    assert result.by_length() == {}


def test_render_table_iii_layout():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    rendered = fork_analysis(builder.build()).render()
    assert "Table III" in rendered
    assert "Fork Length" in rendered


# ---------------------------------------------------------------------- #
# One-miner forks
# ---------------------------------------------------------------------- #


def _one_miner_pair(same_txs: bool = True) -> DatasetBuilder:
    builder = DatasetBuilder()
    winner_txs = ("0xt1",)
    loser_txs = ("0xt1",) if same_txs else ("0xt2",)
    builder.add_block("0xwin", 1, "Pool", tx_hashes=winner_txs)
    builder.add_block(
        "0xlose", 1, "Pool", parent_hash="0xgenesis", tx_hashes=loser_txs,
        canonical=False,
    )
    builder.add_block("0xnext", 2, "Pool", uncle_hashes=("0xlose",))
    return builder


def test_one_miner_pair_detected():
    result = one_miner_forks(_one_miner_pair().build())
    assert result.tuple_counts == {2: 1}
    assert result.total_groups == 1


def test_one_miner_rewarded_share():
    result = one_miner_forks(_one_miner_pair().build())
    assert result.rewarded_share == pytest.approx(1.0)


def test_one_miner_same_txset_share():
    assert one_miner_forks(_one_miner_pair(True).build()).same_txset_share == 1.0
    assert one_miner_forks(_one_miner_pair(False).build()).same_txset_share == 0.0


def test_different_miners_same_height_not_one_miner_fork():
    builder = DatasetBuilder()
    builder.add_block("0xa", 1, "PoolA")
    builder.add_block("0xb", 1, "PoolB", parent_hash="0xgenesis", canonical=False)
    result = one_miner_forks(builder.build())
    assert result.tuple_counts == {}


def test_triple_counted_as_tuple_size_three():
    builder = DatasetBuilder()
    builder.add_block("0xa", 1, "Pool")
    for salt in range(2):
        builder.add_block(
            f"0xv{salt}", 1, "Pool", parent_hash="0xgenesis", canonical=False
        )
    result = one_miner_forks(builder.build())
    assert result.tuple_counts == {3: 1}


def test_share_of_forks():
    builder = _one_miner_pair()
    # Add an unrelated fork by another miner.
    builder.add_block("0xother", 2, "Rival", parent_hash="0xwin", canonical=False)
    result = one_miner_forks(builder.build())
    assert result.share_of_forks == pytest.approx(0.5)


def test_one_miner_render():
    rendered = one_miner_forks(_one_miner_pair().build()).render()
    assert "One-miner forks" in rendered
    assert "rewarded as uncles" in rendered


# ---------------------------------------------------------------------- #
# §V uncle-rule proposal
# ---------------------------------------------------------------------- #

from repro.analysis.forks import uncle_rule_savings  # noqa: E402


def test_uncle_rule_denies_one_miner_uncles():
    builder = _one_miner_pair()
    result = uncle_rule_savings(builder.build())
    assert result.denied_uncles == 1
    assert result.wasted_blocks_avoided == 1
    assert result.denied_reward_eth > 0


def test_uncle_rule_spares_honest_uncles():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "PoolA")
    builder.add_block(
        "0xrival", 1, "PoolB", parent_hash="0xgenesis", canonical=False
    )
    builder.add_block("0xmain2", 2, "PoolA", uncle_hashes=("0xrival",))
    result = uncle_rule_savings(builder.build())
    assert result.denied_uncles == 0
    assert result.wasted_blocks_avoided == 0
    assert result.total_referenced_uncles == 1


def test_uncle_rule_reward_uses_decay_schedule():
    """A one-miner loser referenced 2 heights later earns 6/8 × 2 ETH."""
    builder = DatasetBuilder()
    builder.add_block("0xwin", 1, "Pool", tx_hashes=("0xt",))
    builder.add_block(
        "0xlose", 1, "Pool", parent_hash="0xgenesis", canonical=False
    )
    builder.add_block("0xnext", 2, "Pool")
    builder.add_block("0xcite", 3, "Pool", uncle_hashes=("0xlose",))
    result = uncle_rule_savings(builder.build())
    assert result.denied_reward_eth == pytest.approx(6 / 8 * 2.0)


def test_uncle_rule_render():
    rendered = uncle_rule_savings(_one_miner_pair().build()).render()
    assert "uncle-rule proposal" in rendered
    assert "ETH" in rendered
