"""Tests for the reward fairness audit."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.fairness import fairness_audit, reward_ledger
from repro.chain.rewards import BLOCK_REWARD_ETH
from repro.errors import AnalysisError


def _honest_chain(miners: list[str]) -> DatasetBuilder:
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(miners)
    return builder


def test_ledger_counts_block_rewards():
    ledger = reward_ledger(_honest_chain(["A", "B", "A"]).build())
    assert ledger["A"] == pytest.approx(2 * BLOCK_REWARD_ETH)
    assert ledger["B"] == pytest.approx(BLOCK_REWARD_ETH)


def test_ledger_includes_uncle_and_nephew_rewards():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xlost", 1, "U", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xmain2", 2, "A", uncle_hashes=("0xlost",))
    ledger = reward_ledger(builder.build())
    assert ledger["U"] == pytest.approx(7 / 8 * BLOCK_REWARD_ETH)
    assert ledger["A"] == pytest.approx(
        2 * BLOCK_REWARD_ETH + BLOCK_REWARD_ETH / 32
    )


def test_one_miner_fork_inflates_income_per_block():
    """The §III-C5 exploit shows up as ETH/block above the 2-ETH baseline."""
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_block("0xwin", 1, "Selfish")
    builder.add_block("0xlose", 1, "Selfish", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xcite", 2, "Selfish", uncle_hashes=("0xlose",))
    builder.add_block("0xhonest", 3, "Honest")
    result = fairness_audit(builder.build())
    assert result.excess_income_ratio("Selfish") > 1.2
    assert result.excess_income_ratio("Honest") == pytest.approx(1.0)


def test_income_and_block_shares_sum_to_one():
    result = fairness_audit(_honest_chain(["A", "B", "C", "A"]).build())
    assert sum(result.income_share.values()) == pytest.approx(1.0)
    assert sum(result.block_share.values()) == pytest.approx(1.0)


def test_lottery_p_value_high_for_fair_draws():
    miners = (["A"] * 50) + (["B"] * 50)
    result = fairness_audit(
        _honest_chain(miners).build(), hashpower={"A": 0.5, "B": 0.5}
    )
    assert result.lottery_p_value is not None
    assert result.lottery_p_value > 0.05


def test_lottery_p_value_low_for_skewed_draws():
    miners = (["A"] * 90) + (["B"] * 10)
    result = fairness_audit(
        _honest_chain(miners).build(), hashpower={"A": 0.5, "B": 0.5}
    )
    assert result.lottery_p_value is not None
    assert result.lottery_p_value < 0.01


def test_no_hashpower_means_no_p_value():
    result = fairness_audit(_honest_chain(["A", "B"]).build())
    assert result.lottery_p_value is None


def test_unknown_miner_ratio_raises():
    result = fairness_audit(_honest_chain(["A"]).build())
    with pytest.raises(AnalysisError):
        result.excess_income_ratio("Nope")


def test_empty_window_raises():
    builder = DatasetBuilder(measurement_start=1e9)
    with pytest.raises(AnalysisError):
        fairness_audit(builder.build())


def test_render():
    rendered = fairness_audit(_honest_chain(["A", "B"]).build()).render()
    assert "fairness audit" in rendered
    assert "ETH/block" in rendered
