"""Tests for the sequence/finality analysis (Figure 7, §III-D)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.sequences import (
    expected_streaks,
    months_to_observe,
    paper_expected_streaks,
    run_lengths,
    sequence_analysis,
    simulate_history,
)
from repro.errors import AnalysisError


def test_run_lengths_basic():
    runs = run_lengths(["A", "A", "B", "A", "A", "A"])
    assert runs == {"A": [2, 3], "B": [1]}


def test_run_lengths_single_miner():
    assert run_lengths(["A"] * 5) == {"A": [5]}


def test_run_lengths_empty():
    assert run_lengths([]) == {}


def test_sequence_analysis_over_chain():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A", "A", "B", "A"])
    result = sequence_analysis(builder.build())
    assert result.max_run["A"] == 2
    assert result.max_run["B"] == 1
    assert result.chain_length == 4


def test_cdf_points_monotone_to_one():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A", "A", "B", "A", "B", "A", "A", "A"])
    result = sequence_analysis(builder.build())
    points = result.cdf_points("A")
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_cdf_points_unknown_pool_raises():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A"])
    with pytest.raises(AnalysisError):
        sequence_analysis(builder.build()).cdf_points("Nope")


def test_empty_window_raises():
    builder = DatasetBuilder(measurement_start=1e9)
    with pytest.raises(AnalysisError):
        sequence_analysis(builder.build())


def test_paper_expected_streaks_reproduces_ethermine_arithmetic():
    """§III-D: 0.259^8 × 201,086 ≈ 4 eight-block streaks per month."""
    expected = paper_expected_streaks(0.2598, 8, 201_086)
    assert expected == pytest.approx(4.0, rel=0.3)


def test_paper_expected_streaks_sparkpool():
    """§III-D: Sparkpool's 9-streak should take ≈3 months."""
    assert months_to_observe(0.2269, 9) == pytest.approx(3.2, rel=0.3)


def test_expected_streaks_run_start_correction():
    assert expected_streaks(0.25, 3, 1000) == pytest.approx(
        1000 * 0.75 * 0.25**3
    )


def test_streak_theory_input_validation():
    with pytest.raises(AnalysisError):
        expected_streaks(0.0, 3, 100)
    with pytest.raises(AnalysisError):
        expected_streaks(0.5, 0, 100)
    with pytest.raises(AnalysisError):
        paper_expected_streaks(1.0, 3, 100)


def test_simulate_history_counts_long_streaks():
    """With 2019-like shares over millions of blocks, streaks of 10+
    appear — the paper's whole-history observation."""
    shares = {"Ethermine": 0.259, "Sparkpool": 0.227, "F2pool": 0.127}
    result = simulate_history(2_000_000, shares, seed=1)
    assert result.counts_at_least[10] > 0
    assert result.counts_at_least[10] >= result.counts_at_least[11]
    assert result.counts_at_least[11] >= result.counts_at_least[12]
    assert result.longest >= 10
    assert result.longest_pool in shares


def test_simulate_history_matches_theory_order_of_magnitude():
    shares = {"Ethermine": 0.259}
    total = 3_000_000
    result = simulate_history(total, shares, seed=2, lengths=(8,))
    expected = expected_streaks(0.259, 8, total)
    assert result.counts_at_least[8] == pytest.approx(expected, rel=0.25)


def test_simulate_history_validation():
    with pytest.raises(AnalysisError):
        simulate_history(0, {"A": 0.5})
    with pytest.raises(AnalysisError):
        simulate_history(100, {"A": 0.7, "B": 0.7})
    with pytest.raises(AnalysisError):
        simulate_history(100, {"A": -0.1})


def test_simulate_history_render():
    rendered = simulate_history(10_000, {"A": 0.3}, seed=0).render()
    assert "Whole-history streaks" in rendered


def test_sequence_render_lists_pools():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A", "A", "B", "A"])
    rendered = sequence_analysis(builder.build()).render(["A", "B"])
    assert "Figure 7" in rendered
    assert "A" in rendered
