"""Tests for the campaign summary analysis."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.summary import study_summary
from repro.errors import AnalysisError


def _dataset() -> DatasetBuilder:
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt1",), timestamp=13.3)
    builder.add_block("0xb2", 2, "A", timestamp=26.6)
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False,
                      timestamp=13.5)
    builder.observe_tx("WE", "0xt1", 5.0)
    builder.observe_tx("WE", "0xt-pending", 6.0)
    builder.observe_block("WE", "0xb1", 13.4)
    builder.observe_block("WE", "0xb2", 26.7)
    return builder


def test_block_counts_include_forks():
    result = study_summary(_dataset().build())
    assert result.blocks_observed == 3
    assert result.main_blocks == 2


def test_transaction_accounting():
    result = study_summary(_dataset().build())
    assert result.unique_txs == 2
    assert result.committed_txs == 1
    assert result.committed_share == pytest.approx(0.5)


def test_inter_block_times():
    result = study_summary(_dataset().build())
    assert result.mean_inter_block == pytest.approx(13.3)
    assert result.median_inter_block == pytest.approx(13.3)


def test_requires_two_main_blocks():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_block("0xb1", 1, "A")
    with pytest.raises(AnalysisError):
        study_summary(builder.build())


def test_render_headline_lines():
    rendered = study_summary(_dataset().build()).render()
    assert "blocks observed" in rendered
    assert "unique transactions" in rendered
