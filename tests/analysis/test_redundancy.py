"""Tests for the redundancy analysis (Table II)."""

from __future__ import annotations

import math

import pytest

from helpers import DatasetBuilder

from repro.analysis.redundancy import reception_redundancy
from repro.errors import AnalysisError


def _with_default_vantage() -> DatasetBuilder:
    return DatasetBuilder(
        vantages={"WE": "WE", "WE-default": "WE"},
        default_peer_vantage="WE-default",
    )


def test_counts_split_by_message_type():
    builder = _with_default_vantage()
    # Block 0xb: 2 direct pushes + 3 announcements at the default vantage.
    for time, direct in [(1.0, True), (1.1, True), (1.2, False), (1.3, False), (1.4, False)]:
        builder.observe_block("WE-default", "0xb", time, direct=direct)
    result = reception_redundancy(builder.build(), network_size=100)
    assert result.row("Whole Blocks").average == 2.0
    assert result.row("Announcements").average == 3.0
    assert result.row("Both combined").average == 5.0
    assert result.blocks_counted == 1


def test_only_default_vantage_records_count():
    builder = _with_default_vantage()
    builder.observe_block("WE-default", "0xb", 1.0, direct=True)
    builder.observe_block("WE", "0xb", 1.0, direct=True)  # primary: ignored
    result = reception_redundancy(builder.build(), network_size=100)
    assert result.row("Both combined").average == 1.0


def test_medians_and_top_percentiles():
    builder = _with_default_vantage()
    # Three blocks with combined counts 1, 2, 9.
    builder.observe_block("WE-default", "0xa", 1.0, direct=True)
    for t in (1.0, 1.1):
        builder.observe_block("WE-default", "0xb", t, direct=True)
    for i in range(9):
        builder.observe_block("WE-default", "0xc", 1.0 + i / 10, direct=True)
    result = reception_redundancy(builder.build(), network_size=100)
    assert result.row("Both combined").median == 2.0
    assert result.row("Both combined").top10 >= 7


def test_gossip_optimum_is_log_of_network_size():
    builder = _with_default_vantage()
    builder.observe_block("WE-default", "0xb", 1.0, direct=True)
    result = reception_redundancy(builder.build(), network_size=15_000)
    assert result.optimal_mean == pytest.approx(math.log(15_000))


def test_network_size_defaults_to_observed_peers():
    builder = _with_default_vantage()
    builder.observe_block("WE-default", "0xb", 1.0, direct=True)
    result = reception_redundancy(builder.build())
    assert result.network_size >= 2


def test_missing_default_vantage_raises():
    builder = DatasetBuilder(default_peer_vantage=None)
    builder.observe_block("WE", "0xb", 1.0)
    with pytest.raises(AnalysisError):
        reception_redundancy(builder.build())


def test_no_observations_raises():
    builder = _with_default_vantage()
    with pytest.raises(AnalysisError):
        reception_redundancy(builder.build())


def test_warmup_records_ignored():
    builder = DatasetBuilder(
        vantages={"WE": "WE", "WE-default": "WE"},
        default_peer_vantage="WE-default",
        measurement_start=100.0,
    )
    builder.observe_block("WE-default", "0xold", 50.0, direct=True)
    builder.observe_block("WE-default", "0xnew", 150.0, direct=True)
    result = reception_redundancy(builder.build(), network_size=10)
    assert result.blocks_counted == 1


def test_render_matches_table_layout():
    builder = _with_default_vantage()
    builder.observe_block("WE-default", "0xb", 1.0, direct=True)
    rendered = reception_redundancy(builder.build(), network_size=100).render()
    assert "Table II" in rendered
    assert "Announcements" in rendered
    assert "Whole Blocks" in rendered


def test_unknown_row_lookup_raises():
    builder = _with_default_vantage()
    builder.observe_block("WE-default", "0xb", 1.0, direct=True)
    result = reception_redundancy(builder.build(), network_size=100)
    with pytest.raises(KeyError):
        result.row("Nope")
