"""Tests for the commit-time analysis (Figure 4)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.commit import (
    block_observation_times,
    commit_times,
    first_tx_observations,
    inclusion_index,
)
from repro.errors import AnalysisError


def _commit_dataset() -> DatasetBuilder:
    """A 15-block chain; tx included in block 1, observed at t=5."""
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "P0", tx_hashes=("0xtx",))
    for index in range(2, 16):
        builder.add_block(f"0xb{index}", index, f"P{index % 3}")
    builder.observe_tx("WE", "0xtx", 5.0)
    for index in range(1, 16):
        builder.observe_block("WE", f"0xb{index}", 13.3 * index + 0.1)
    return builder


def test_first_tx_observations_takes_earliest_across_vantages():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xt", 5.0)
    builder.observe_tx("EA", "0xt", 4.0)
    assert first_tx_observations(builder.build()) == {"0xt": 4.0}


def test_inclusion_index_maps_tx_to_first_including_block():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt",))
    builder.add_block("0xb2", 2, "A", tx_hashes=("0xt",))  # duplicate inclusion
    index = inclusion_index(builder.build())
    assert index["0xt"] == "0xb1"


def test_block_observation_times_prefer_messages():
    builder = DatasetBuilder()
    builder.observe_block("WE", "0xb", 3.0)
    builder.observe_block("EA", "0xb", 2.0)
    assert block_observation_times(builder.build())["0xb"] == 2.0


def test_inclusion_delay():
    result = commit_times(_commit_dataset().build())
    # Tx observed at 5.0; block 1 observed at 13.4 → inclusion 8.4s.
    assert result.inclusion.quantile(0.5) == pytest.approx(8.4)
    assert result.txs_used == 1


def test_confirmation_delays():
    result = commit_times(_commit_dataset().build())
    # 12th confirmation: block 13 observed at 13.3*13 + 0.1.
    expected = 13.3 * 13 + 0.1 - 5.0
    assert result.confirmations[12].quantile(0.5) == pytest.approx(expected)
    assert result.median(12) == pytest.approx(expected)


def test_deep_confirmations_skipped_when_chain_too_short():
    result = commit_times(_commit_dataset().build())
    assert 36 not in result.confirmations  # chain has only 15 blocks
    assert 3 in result.confirmations


def test_unincluded_txs_ignored():
    builder = _commit_dataset()
    builder.observe_tx("WE", "0xorphan-tx", 6.0)
    result = commit_times(builder.build())
    assert result.txs_used == 1


def test_tx_never_observed_is_excluded():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xhidden",))
    builder.observe_block("WE", "0xb1", 13.4)
    with pytest.raises(AnalysisError):
        commit_times(builder.build())


def test_negative_delays_clipped_to_zero():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt",))
    builder.observe_tx("WE", "0xt", 20.0)  # observed after the block (clock skew)
    builder.observe_block("WE", "0xb1", 13.4)
    result = commit_times(builder.build())
    assert result.inclusion.quantile(0.5) == 0.0


def test_render_lists_depths():
    rendered = commit_times(_commit_dataset().build()).render()
    assert "Figure 4" in rendered
    assert "12 confirmations" in rendered
