"""Tests for the gas-utilization analysis."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.gas import gas_utilization
from repro.errors import AnalysisError
from repro.measurement.records import BlockImportRecord


def _with_imports(gas_values: list[int], gas_limit: int = 100_000):
    builder = DatasetBuilder()
    for index, gas in enumerate(gas_values, start=1):
        builder.add_block(f"0xb{index}", index, "A", tx_hashes=("0xt",) if gas else ())
        builder.dataset.block_imports.append(
            BlockImportRecord(
                vantage="WE",
                time=13.3 * index,
                block_hash=f"0xb{index}",
                height=index,
                parent_hash=f"0xb{index - 1}" if index > 1 else "0xgenesis",
                miner="A",
                difficulty=100.0,
                gas_used=gas,
                tx_hashes=("0xt",) if gas else (),
                uncle_hashes=(),
            )
        )
    return builder.build()


def test_utilization_statistics():
    dataset = _with_imports([80_000, 80_000, 40_000, 0])
    result = gas_utilization(dataset, gas_limit=100_000)
    assert result.mean_utilization == pytest.approx(0.5)
    assert result.median_utilization == pytest.approx(0.6)
    assert result.empty_block_share == pytest.approx(0.25)
    assert result.blocks == 4


def test_full_block_share():
    dataset = _with_imports([99_000, 50_000])
    result = gas_utilization(dataset, gas_limit=100_000)
    assert result.full_block_share == pytest.approx(0.5)


def test_requires_positive_gas_limit():
    dataset = _with_imports([10_000])
    with pytest.raises(AnalysisError):
        gas_utilization(dataset, gas_limit=0)


def test_requires_import_records():
    builder = DatasetBuilder()
    builder.add_main_chain(["A"])
    with pytest.raises(AnalysisError):
        gas_utilization(builder.build(), gas_limit=100_000)


def test_only_reference_vantage_counts():
    dataset = _with_imports([80_000])
    dataset.block_imports.append(
        BlockImportRecord(
            vantage="EA",
            time=13.3,
            block_hash="0xb1",
            height=1,
            parent_hash="0xgenesis",
            miner="A",
            difficulty=100.0,
            gas_used=0,  # conflicting record at another vantage
            tx_hashes=(),
            uncle_hashes=(),
        )
    )
    result = gas_utilization(dataset, gas_limit=100_000)
    assert result.mean_utilization == pytest.approx(0.8)


def test_render():
    rendered = gas_utilization(_with_imports([50_000]), 100_000).render()
    assert "gas utilization" in rendered
