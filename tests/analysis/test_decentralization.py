"""Tests for the decentralization metrics (§IV context)."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import DatasetBuilder

from repro.analysis.decentralization import (
    decentralization_metrics,
    gini,
    herfindahl,
    nakamoto_coefficient,
)
from repro.errors import AnalysisError


def test_gini_equal_distribution_is_zero():
    assert gini(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)


def test_gini_single_producer_near_one():
    assert gini(np.array([0.0, 0.0, 0.0, 10.0])) == pytest.approx(0.75)


def test_gini_rejects_bad_input():
    with pytest.raises(AnalysisError):
        gini(np.array([]))
    with pytest.raises(AnalysisError):
        gini(np.array([-1.0, 2.0]))


def test_herfindahl_bounds():
    assert herfindahl(np.array([1.0])) == pytest.approx(1.0)
    assert herfindahl(np.array([0.5, 0.5])) == pytest.approx(0.5)
    with pytest.raises(AnalysisError):
        herfindahl(np.array([]))


def test_nakamoto_coefficient():
    assert nakamoto_coefficient(np.array([0.6, 0.4])) == 1
    assert nakamoto_coefficient(np.array([0.4, 0.4, 0.2])) == 2
    assert nakamoto_coefficient(np.array([0.25, 0.25, 0.25, 0.25])) == 3


def test_metrics_over_synthetic_chain():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A"] * 6 + ["B"] * 3 + ["C"])
    result = decentralization_metrics(builder.build())
    assert result.producer_shares["A"] == pytest.approx(0.6)
    assert result.nakamoto == 1
    assert result.top4_share == pytest.approx(1.0)
    assert result.blocks == 10


def test_shares_are_descending():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["B", "A", "A", "C", "A", "B"])
    result = decentralization_metrics(builder.build())
    shares = list(result.producer_shares.values())
    assert shares == sorted(shares, reverse=True)


def test_luu_et_al_claim_on_mainnet_calibration():
    """§IV: ≈80% of Ethereum mining power in fewer than ten pools — true
    of the calibrated pool specs by construction."""
    from repro.workload.mainnet import MAINNET_POOL_SPECS

    shares = np.array(sorted((s.hashpower for s in MAINNET_POOL_SPECS), reverse=True))
    assert shares[:10].sum() > 0.8
    assert nakamoto_coefficient(shares) <= 3


def test_empty_window_raises():
    builder = DatasetBuilder(measurement_start=1e9)
    with pytest.raises(AnalysisError):
        decentralization_metrics(builder.build())


def test_render():
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(["A", "A", "B"])
    rendered = decentralization_metrics(builder.build()).render()
    assert "Nakamoto" in rendered
    assert "Gini" in rendered
