"""Fallback paths of the commit-time plumbing."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.commit import block_observation_times, commit_times
from repro.measurement.records import BlockImportRecord


def test_block_observation_falls_back_to_import_records():
    """Blocks fetched during initial sync produce no NewBlock/announce
    messages; their import time is the only observation."""
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A")
    builder.dataset.block_imports.append(
        BlockImportRecord(
            vantage="WE",
            time=42.0,
            block_hash="0xb1",
            height=1,
            parent_hash="0xgenesis",
            miner="A",
            difficulty=100.0,
            gas_used=0,
            tx_hashes=(),
            uncle_hashes=(),
        )
    )
    times = block_observation_times(builder.build())
    assert times["0xb1"] == 42.0


def test_message_observation_wins_over_import():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A")
    builder.observe_block("WE", "0xb1", 13.4)
    builder.dataset.block_imports.append(
        BlockImportRecord(
            vantage="WE",
            time=13.6,
            block_hash="0xb1",
            height=1,
            parent_hash="0xgenesis",
            miner="A",
            difficulty=100.0,
            gas_used=0,
            tx_hashes=(),
            uncle_hashes=(),
        )
    )
    times = block_observation_times(builder.build())
    assert times["0xb1"] == 13.4


def test_commit_skips_blocks_with_no_observation_at_all():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt",))
    builder.observe_tx("WE", "0xt", 5.0)
    # The including block was never observed nor imported at any vantage.
    with pytest.raises(Exception):
        commit_times(builder.build())


def test_custom_confirmation_depths():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "A", tx_hashes=("0xt",))
    for index in range(2, 8):
        builder.add_block(f"0xb{index}", index, "A")
    builder.observe_tx("WE", "0xt", 5.0)
    for index in range(1, 8):
        builder.observe_block("WE", f"0xb{index}", 13.3 * index + 0.1)
    result = commit_times(builder.build(), depths=(1, 5))
    assert set(result.confirmations) == {1, 5}
    assert result.median(1) < result.median(5)
