"""Tests for the geographic analyses (Figures 2 and 3)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.geography import (
    REMAINING_LABEL,
    first_reception_shares,
    pool_first_receptions,
)
from repro.errors import AnalysisError


def _geo_dataset() -> DatasetBuilder:
    builder = DatasetBuilder()
    builder.add_main_chain(["PoolEA", "PoolEA", "PoolEU"])
    # Blocks 1, 2 mined by PoolEA surface in EA; block 3 surfaces in CE.
    for block, first, second in [
        ("0xb1", ("EA", 1.00), ("WE", 1.08)),
        ("0xb2", ("EA", 14.30), ("NA", 14.40)),
        ("0xb3", ("CE", 27.60), ("EA", 27.72)),
    ]:
        builder.observe_block(first[0], block, first[1])
        builder.observe_block(second[0], block, second[1])
    return builder


def test_first_reception_shares_sum_to_one():
    result = first_reception_shares(_geo_dataset().build())
    assert sum(result.shares.values()) == pytest.approx(1.0)


def test_first_reception_winner_counts():
    result = first_reception_shares(_geo_dataset().build())
    assert result.shares["EA"] == pytest.approx(2 / 3)
    assert result.shares["CE"] == pytest.approx(1 / 3)
    assert result.shares["WE"] == 0.0
    assert result.blocks_used == 3


def test_ambiguous_margins_flagged():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xclose", 1.000)
    builder.observe_block("WE", "0xclose", 1.005)  # within 10ms NTP bound
    builder.observe_block("EA", "0xclear", 2.000)
    builder.observe_block("WE", "0xclear", 2.500)
    result = first_reception_shares(builder.build())
    assert result.ambiguous_shares["EA"] == pytest.approx(0.5)


def test_no_multi_vantage_blocks_raises():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xb", 1.0)
    with pytest.raises(AnalysisError):
        first_reception_shares(builder.build())


def test_pool_shares_split_per_pool():
    result = pool_first_receptions(_geo_dataset().build())
    assert result.pool_shares["PoolEA"]["EA"] == pytest.approx(1.0)
    assert result.pool_shares["PoolEU"]["CE"] == pytest.approx(1.0)


def test_pool_block_fractions():
    result = pool_first_receptions(_geo_dataset().build())
    assert result.pool_block_fraction["PoolEA"] == pytest.approx(2 / 3)
    assert result.pool_block_fraction["PoolEU"] == pytest.approx(1 / 3)


def test_small_pools_grouped_as_remaining():
    builder = DatasetBuilder()
    miners = [f"Pool{i}" for i in range(16)] + ["Tiny"]
    builder.add_main_chain(miners)
    for index in range(1, len(miners) + 1):
        builder.observe_block("EA", f"0xb{index}", index * 13.3)
        builder.observe_block("WE", f"0xb{index}", index * 13.3 + 0.05)
    result = pool_first_receptions(builder.build(), top_n=15)
    assert REMAINING_LABEL in result.pool_shares
    assert len(result.pool_shares) == 16  # 15 named + remaining


def test_pool_shares_each_sum_to_one():
    result = pool_first_receptions(_geo_dataset().build())
    for shares in result.pool_shares.values():
        assert sum(shares.values()) == pytest.approx(1.0)


def test_render_includes_percentages():
    result = pool_first_receptions(_geo_dataset().build())
    rendered = result.render()
    assert "Figure 3" in rendered
    assert "%" in rendered
    rendered2 = first_reception_shares(_geo_dataset().build()).render()
    assert "Figure 2" in rendered2
