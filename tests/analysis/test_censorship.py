"""Tests for the censorship-window analysis (§III-D)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.censorship import (
    censorship_windows,
    expected_window_duration,
    summarise_durations,
)
from repro.errors import AnalysisError


def _chain(miners: list[str]) -> DatasetBuilder:
    builder = DatasetBuilder(measurement_start=1.0)
    builder.add_main_chain(miners)
    return builder


def test_single_run_detected():
    result = censorship_windows(_chain(["A", "B", "B", "B", "A"]).build())
    assert len(result.windows) == 1
    window = result.windows[0]
    assert window.pool == "B"
    assert window.length == 3
    assert window.start_height == 2


def test_window_duration_spans_from_previous_block():
    # Blocks at 13.3 * height; run B at heights 2-4: opens at block 1's
    # timestamp (13.3), closes at block 4's (53.2) → 39.9 seconds.
    result = censorship_windows(_chain(["A", "B", "B", "B", "A"]).build())
    assert result.windows[0].duration == pytest.approx(13.3 * 3)


def test_min_length_filters_short_runs():
    result = censorship_windows(_chain(["A", "B", "A", "B"]).build(), min_length=2)
    assert result.windows == ()


def test_run_at_chain_tail_is_counted():
    result = censorship_windows(_chain(["A", "B", "B"]).build())
    assert len(result.windows) == 1
    assert result.windows[0].pool == "B"


def test_longest_and_over_helpers():
    miners = ["A"] * 3 + ["B"] * 10 + ["A"] * 2
    result = censorship_windows(_chain(miners).build())
    longest = result.longest()
    assert longest.pool == "B"
    assert longest.length == 10
    assert result.over(120.0) == [longest]  # 10 blocks × 13.3s = 133s


def test_per_pool_maxima():
    miners = ["A", "A", "B", "B", "B", "A", "A", "A", "A"]
    result = censorship_windows(_chain(miners).build())
    maxima = result.per_pool_maxima()
    assert maxima["A"] > maxima["B"]


def test_no_windows_longest_raises():
    result = censorship_windows(_chain(["A", "B", "A"]).build())
    with pytest.raises(AnalysisError):
        result.longest()


def test_expected_window_duration_matches_paper_headline():
    """A 9-block run censors for ≈ 2 minutes at 13.3 s blocks (§III-D)."""
    assert expected_window_duration(9) == pytest.approx(119.7)
    with pytest.raises(AnalysisError):
        expected_window_duration(0)


def test_summarise_durations():
    miners = ["A", "A", "B", "B", "B", "C"]
    stats = summarise_durations(censorship_windows(_chain(miners).build()))
    assert stats["count"] == 2
    assert stats["max"] >= stats["median"]


def test_render_mentions_two_minutes():
    miners = ["A"] * 12 + ["B"]
    rendered = censorship_windows(_chain(miners).build()).render()
    assert "two minutes" in rendered
