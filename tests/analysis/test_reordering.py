"""Tests for the reordering analysis (Figure 5)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.reordering import out_of_order_txs, reordering_analysis
from repro.errors import AnalysisError


def test_out_of_order_detection_per_sender():
    builder = DatasetBuilder()
    # nonce 1 arrives before nonce 0 → the early higher-nonce tx is the
    # out-of-order one (it must wait for its predecessor to commit).
    builder.observe_tx("WE", "0xt1", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xt0", 2.0, sender="alice", nonce=0)
    flagged = out_of_order_txs(builder.build(), "WE")
    assert flagged == {"0xt1"}


def test_in_order_txs_not_flagged():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xt0", 1.0, sender="alice", nonce=0)
    builder.observe_tx("WE", "0xt1", 2.0, sender="alice", nonce=1)
    assert out_of_order_txs(builder.build(), "WE") == set()


def test_senders_are_independent():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xa1", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xb0", 2.0, sender="bob", nonce=0)
    assert out_of_order_txs(builder.build(), "WE") == set()


def test_mid_stream_senders_not_spuriously_flagged():
    """A sender whose history predates the window starts at nonce > 0;
    its in-order receptions must not be flagged."""
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xa7", 1.0, sender="old", nonce=7)
    builder.observe_tx("WE", "0xa8", 2.0, sender="old", nonce=8)
    assert out_of_order_txs(builder.build(), "WE") == set()


def test_flagging_is_per_vantage():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xt1", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xt0", 2.0, sender="alice", nonce=0)
    builder.observe_tx("EA", "0xt0", 1.0, sender="alice", nonce=0)
    builder.observe_tx("EA", "0xt1", 2.0, sender="alice", nonce=1)
    assert out_of_order_txs(builder.build(), "WE") == {"0xt1"}
    assert out_of_order_txs(builder.build(), "EA") == set()


def _commit_chain(builder: DatasetBuilder, tx_block: dict[str, str]) -> None:
    """Build a 15-block chain; map tx hashes into block 1 or 2."""
    block_txs: dict[str, list[str]] = {}
    for tx_hash, block in tx_block.items():
        block_txs.setdefault(block, []).append(tx_hash)
    for index in range(1, 16):
        builder.add_block(
            f"0xb{index}",
            index,
            "P",
            tx_hashes=tuple(block_txs.get(f"0xb{index}", ())),
        )
        builder.observe_block("WE", f"0xb{index}", 13.3 * index + 0.1)


def test_reordering_analysis_splits_commit_delays():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xooo", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xfirst", 2.0, sender="alice", nonce=0)
    builder.observe_tx("WE", "0xok", 3.0, sender="bob", nonce=0)
    _commit_chain(
        builder, {"0xfirst": "0xb1", "0xooo": "0xb2", "0xok": "0xb1"}
    )
    result = reordering_analysis(builder.build())
    # 0xooo (nonce 1, observed before nonce 0) is the flagged one; its
    # inclusion waited for the predecessor and landed one block later.
    assert result.out_of_order_share == pytest.approx(1 / 3)
    expected_ooo = (13.3 * 14 + 0.1) - 1.0  # block2 + 12 confirmations
    assert result.out_of_order.quantile(0.5) == pytest.approx(expected_ooo)


def test_requires_both_classes():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xok", 3.0, sender="bob", nonce=0)
    _commit_chain(builder, {"0xok": "0xb1"})
    with pytest.raises(AnalysisError):
        reordering_analysis(builder.build())


def test_per_vantage_shares_reported():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xooo", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xfirst", 2.0, sender="alice", nonce=0)
    builder.observe_tx("WE", "0xok", 3.0, sender="bob", nonce=0)
    _commit_chain(builder, {"0xfirst": "0xb1", "0xooo": "0xb2", "0xok": "0xb1"})
    result = reordering_analysis(builder.build())
    assert set(result.per_vantage_share) == {"NA", "EA", "WE", "CE"}
    assert result.per_vantage_share["WE"] > 0


def test_render_mentions_share():
    builder = DatasetBuilder()
    builder.observe_tx("WE", "0xooo", 1.0, sender="alice", nonce=1)
    builder.observe_tx("WE", "0xfirst", 2.0, sender="alice", nonce=0)
    builder.observe_tx("WE", "0xok", 3.0, sender="bob", nonce=0)
    _commit_chain(builder, {"0xfirst": "0xb1", "0xooo": "0xb2", "0xok": "0xb1"})
    rendered = reordering_analysis(builder.build()).render()
    assert "Figure 5" in rendered
    assert "out-of-order" in rendered
