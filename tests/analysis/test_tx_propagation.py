"""Tests for the §III-A1/§III-B1/§III-C3 propagation claims."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.propagation import (
    empty_vs_full_propagation,
    transaction_propagation_delays,
)
from repro.errors import AnalysisError


def test_tx_delays_from_first_observation():
    builder = DatasetBuilder()
    builder.observe_tx("EA", "0xt", 1.000)
    builder.observe_tx("WE", "0xt", 1.030)
    builder.observe_tx("NA", "0xt", 1.050)
    result = transaction_propagation_delays(builder.build())
    assert result.summary.count == 2
    assert result.summary.maximum == pytest.approx(0.050)
    assert result.txs_used == 1


def test_tx_first_shares_sum_to_one():
    builder = DatasetBuilder()
    for index, winner in enumerate(["EA", "WE", "NA", "CE"]):
        builder.observe_tx(winner, f"0xt{index}", 1.0 + index)
        other = "EA" if winner != "EA" else "WE"
        builder.observe_tx(other, f"0xt{index}", 1.5 + index)
    result = transaction_propagation_delays(builder.build())
    assert sum(result.first_shares.values()) == pytest.approx(1.0)
    assert result.max_min_share_ratio == pytest.approx(1.0)


def test_tx_single_vantage_observations_skipped():
    builder = DatasetBuilder()
    builder.observe_tx("EA", "0xsolo", 1.0)
    builder.observe_tx("EA", "0xboth", 2.0)
    builder.observe_tx("WE", "0xboth", 2.1)
    result = transaction_propagation_delays(builder.build())
    assert result.txs_used == 1


def test_tx_no_shared_observations_raises():
    builder = DatasetBuilder()
    builder.observe_tx("EA", "0xt", 1.0)
    with pytest.raises(AnalysisError):
        transaction_propagation_delays(builder.build())


def test_tx_render():
    builder = DatasetBuilder()
    builder.observe_tx("EA", "0xt", 1.0)
    builder.observe_tx("WE", "0xt", 1.05)
    rendered = transaction_propagation_delays(builder.build()).render()
    assert "Transaction propagation" in rendered


def _empty_full_dataset() -> DatasetBuilder:
    builder = DatasetBuilder()
    builder.add_block("0xempty", 1, "A")  # no txs
    builder.add_block("0xfull", 2, "A", tx_hashes=("0xt",))
    builder.observe_block("EA", "0xempty", 13.3)
    builder.observe_block("WE", "0xempty", 13.34)
    builder.observe_block("EA", "0xfull", 26.6)
    builder.observe_block("WE", "0xfull", 26.75)
    return builder


def test_empty_blocks_propagate_faster():
    empty, full = empty_vs_full_propagation(_empty_full_dataset().build())
    assert empty.median == pytest.approx(0.04)
    assert full.median == pytest.approx(0.15)
    assert empty.median < full.median  # the §III-C3 incentive


def test_empty_vs_full_requires_both_classes():
    builder = DatasetBuilder()
    builder.add_block("0xfull", 1, "A", tx_hashes=("0xt",))
    builder.observe_block("EA", "0xfull", 13.3)
    builder.observe_block("WE", "0xfull", 13.4)
    with pytest.raises(AnalysisError):
        empty_vs_full_propagation(builder.build())


def test_genesis_not_counted_as_empty_block():
    builder = _empty_full_dataset()
    builder.observe_block("EA", "0xgenesis", 0.1)
    builder.observe_block("WE", "0xgenesis", 0.2)
    empty, _ = empty_vs_full_propagation(builder.build())
    assert empty.count == 1  # only 0xempty, not genesis
