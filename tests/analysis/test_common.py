"""Tests for the shared analysis plumbing."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.common import (
    block_arrivals,
    block_miners,
    pool_order,
    window_blocks,
    window_canonical_blocks,
)
from repro.errors import AnalysisError


def test_block_arrivals_keeps_first_observation_per_vantage():
    builder = DatasetBuilder()
    builder.observe_block("WE", "0xb", 2.0)
    builder.observe_block("WE", "0xb", 1.5)  # earlier duplicate
    builder.observe_block("EA", "0xb", 1.0)
    arrivals = block_arrivals(builder.build())
    assert arrivals.times["0xb"] == {"WE": 1.5, "EA": 1.0}


def test_block_arrivals_respects_measurement_window():
    builder = DatasetBuilder(measurement_start=10.0)
    builder.observe_block("WE", "0xb", 5.0)  # warm-up
    builder.observe_block("WE", "0xb", 12.0)
    arrivals = block_arrivals(builder.build())
    assert arrivals.times["0xb"] == {"WE": 12.0}


def test_block_arrivals_excludes_default_peer_vantage():
    builder = DatasetBuilder(
        vantages={"WE": "WE", "WE-default": "WE"},
        default_peer_vantage="WE-default",
    )
    builder.observe_block("WE-default", "0xb", 1.0)
    arrivals = block_arrivals(builder.build())
    assert "0xb" not in arrivals.times


def test_first_observation_breaks_ties_deterministically():
    builder = DatasetBuilder()
    builder.observe_block("WE", "0xb", 1.0)
    builder.observe_block("EA", "0xb", 1.0)
    arrivals = block_arrivals(builder.build())
    vantage, time = arrivals.first_observation("0xb")
    assert vantage == "EA"  # lexicographic tie-break
    assert time == 1.0


def test_first_observation_unknown_block():
    builder = DatasetBuilder()
    assert block_arrivals(builder.build()).first_observation("0xz") is None


def test_block_miners_prefers_chain_snapshot():
    builder = DatasetBuilder()
    builder.add_block("0xb1", 1, "PoolA")
    builder.observe_block("WE", "0xb1", 1.0, miner="WrongName")
    builder.observe_block("WE", "0xunseen", 1.0, miner="PoolB")
    miners = block_miners(builder.build())
    assert miners["0xb1"] == "PoolA"
    assert miners["0xunseen"] == "PoolB"


def test_window_blocks_filters_by_timestamp():
    builder = DatasetBuilder(measurement_start=20.0)
    builder.add_block("0xearly", 1, "A", timestamp=5.0)
    builder.add_block("0xlate", 2, "A", timestamp=30.0)
    blocks = window_blocks(builder.build())
    assert [b.block_hash for b in blocks] == ["0xlate"]


def test_window_canonical_excludes_forks():
    builder = DatasetBuilder()
    builder.add_block("0xmain", 1, "A")
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    blocks = window_canonical_blocks(builder.build())
    assert [b.block_hash for b in blocks] == ["0xgenesis", "0xmain"]


def test_pool_order_ranks_by_production():
    builder = DatasetBuilder()
    builder.add_main_chain(["A", "B", "A", "A", "C", "B"])
    top, rest = pool_order(builder.build(), top_n=2)
    assert top == ["A", "B"]
    assert rest == {"C", "genesis"}


def test_pool_order_requires_chain():
    from repro.measurement.dataset import MeasurementDataset

    with pytest.raises(AnalysisError):
        pool_order(MeasurementDataset(vantage_regions={"WE": "WE"}))
