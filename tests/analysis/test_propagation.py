"""Tests for the propagation-delay analysis (Figure 1)."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.analysis.propagation import block_propagation_delays
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset


def test_delays_measured_from_first_observation():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xb", 1.000)
    builder.observe_block("WE", "0xb", 1.074)
    builder.observe_block("NA", "0xb", 1.120)
    result = block_propagation_delays(builder.build())
    assert sorted(result.delays.tolist()) == pytest.approx([0.074, 0.120])
    assert result.blocks_used == 1


def test_single_vantage_blocks_are_skipped():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xonly", 1.0)
    builder.observe_block("EA", "0xboth", 2.0)
    builder.observe_block("WE", "0xboth", 2.05)
    result = block_propagation_delays(builder.build())
    assert result.blocks_used == 1


def test_duplicate_receptions_use_earliest():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xb", 1.0)
    builder.observe_block("WE", "0xb", 1.5)
    builder.observe_block("WE", "0xb", 1.2)  # earlier re-reception
    result = block_propagation_delays(builder.build())
    assert result.delays.tolist() == pytest.approx([0.2])


def test_summary_statistics():
    builder = DatasetBuilder()
    for index, delay in enumerate([0.050, 0.100, 0.150, 0.200]):
        builder.observe_block("EA", f"0xb{index}", float(index))
        builder.observe_block("WE", f"0xb{index}", float(index) + delay)
    result = block_propagation_delays(builder.build())
    assert result.summary.median == pytest.approx(0.125)
    assert result.summary.mean == pytest.approx(0.125)


def test_histogram_covers_figure1_range():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xb", 1.0)
    builder.observe_block("WE", "0xb", 1.074)
    result = block_propagation_delays(builder.build())
    assert result.histogram.densities.sum() == pytest.approx(1.0)
    assert result.histogram.bin_edges[-1] <= 0.55


def test_requires_two_vantages():
    dataset = MeasurementDataset(vantage_regions={"WE": "WE"})
    with pytest.raises(Exception):
        block_propagation_delays(dataset)


def test_no_shared_blocks_raises():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xa", 1.0)
    builder.observe_block("WE", "0xb", 1.0)
    with pytest.raises(AnalysisError):
        block_propagation_delays(builder.build())


def test_render_mentions_median_and_mean():
    builder = DatasetBuilder()
    builder.observe_block("EA", "0xb", 1.0)
    builder.observe_block("WE", "0xb", 1.074)
    rendered = block_propagation_delays(builder.build()).render()
    assert "median=74ms" in rendered
    assert "Figure 1" in rendered
