"""Shared fixtures.

The expensive fixture is ``small_dataset``: one seconds-scale campaign,
session-scoped, shared by the integration and analysis smoke tests.
Unit tests build their own tiny worlds instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make tests/helpers.py importable from any test package.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.presets import small_campaign
from repro.measurement.campaign import Campaign


@pytest.fixture(scope="session")
def small_dataset():
    """A complete small campaign dataset (≈30 blocks, 5 vantages)."""
    return Campaign(small_campaign(seed=11)).run()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
