"""Builders for synthetic measurement datasets.

Analysis unit tests need datasets whose expected outputs are exact, so
they construct records by hand instead of running a simulation.  The
:class:`DatasetBuilder` keeps that construction readable: declare a chain,
declare observations, get a dataset.
"""

from __future__ import annotations

from repro.measurement.dataset import ChainSnapshot, MeasurementDataset
from repro.measurement.records import (
    BlockMessageRecord,
    ChainBlockRecord,
    TxReceptionRecord,
)

GENESIS_HASH = "0xgenesis"


class DatasetBuilder:
    """Fluent builder for hand-crafted measurement datasets."""

    def __init__(
        self,
        vantages: dict[str, str] | None = None,
        default_peer_vantage: str | None = None,
        measurement_start: float = 0.0,
    ) -> None:
        self.dataset = MeasurementDataset(
            vantage_regions=vantages
            or {"NA": "NA", "EA": "EA", "WE": "WE", "CE": "CE"},
            default_peer_vantage=default_peer_vantage,
            reference_vantage="WE",
            measurement_start=measurement_start,
        )
        self._chain_hashes: list[str] = [GENESIS_HASH]
        self.dataset.chain = ChainSnapshot(
            blocks={
                GENESIS_HASH: ChainBlockRecord(
                    block_hash=GENESIS_HASH,
                    height=0,
                    parent_hash="0x" + "00" * 16,
                    miner="genesis",
                    difficulty=1.0,
                    timestamp=0.0,
                    tx_hashes=(),
                    uncle_hashes=(),
                )
            },
            canonical_hashes=(GENESIS_HASH,),
            head_hash=GENESIS_HASH,
        )

    # ------------------------------------------------------------------ #
    # Chain construction
    # ------------------------------------------------------------------ #

    def add_block(
        self,
        block_hash: str,
        height: int,
        miner: str,
        parent_hash: str | None = None,
        timestamp: float | None = None,
        tx_hashes: tuple[str, ...] = (),
        uncle_hashes: tuple[str, ...] = (),
        canonical: bool = True,
    ) -> "DatasetBuilder":
        """Append a block to the snapshot (and main chain if canonical)."""
        if parent_hash is None:
            parent_hash = self._chain_hashes[-1]
        if timestamp is None:
            timestamp = 13.3 * height
        record = ChainBlockRecord(
            block_hash=block_hash,
            height=height,
            parent_hash=parent_hash,
            miner=miner,
            difficulty=100.0,
            timestamp=timestamp,
            tx_hashes=tx_hashes,
            uncle_hashes=uncle_hashes,
        )
        self.dataset.chain.blocks[block_hash] = record
        if canonical:
            self._chain_hashes.append(block_hash)
            self.dataset.chain.canonical_hashes = tuple(self._chain_hashes)
            self.dataset.chain.head_hash = block_hash
        return self

    def add_main_chain(
        self, miners: list[str], txs_per_block: int = 0
    ) -> "DatasetBuilder":
        """Add a whole main chain with optional synthetic transactions."""
        for index, miner in enumerate(miners, start=1):
            txs = tuple(
                f"0xtx-{index}-{i}" for i in range(txs_per_block)
            )
            self.add_block(f"0xb{index}", index, miner, tx_hashes=txs)
        return self

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def observe_block(
        self,
        vantage: str,
        block_hash: str,
        time: float,
        height: int = 1,
        direct: bool = True,
        miner: str = "",
        peer_id: int = 7,
    ) -> "DatasetBuilder":
        self.dataset.block_messages.append(
            BlockMessageRecord(
                vantage=vantage,
                time=time,
                block_hash=block_hash,
                height=height,
                direct=direct,
                miner=miner,
                peer_id=peer_id,
            )
        )
        return self

    def observe_tx(
        self,
        vantage: str,
        tx_hash: str,
        time: float,
        sender: str = "s0",
        nonce: int = 0,
        peer_id: int = 7,
    ) -> "DatasetBuilder":
        self.dataset.tx_receptions.append(
            TxReceptionRecord(
                vantage=vantage,
                time=time,
                tx_hash=tx_hash,
                sender=sender,
                nonce=nonce,
                peer_id=peer_id,
            )
        )
        return self

    def build(self) -> MeasurementDataset:
        return self.dataset
