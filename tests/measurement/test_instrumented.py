"""Tests for the instrumented measurement node."""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.geo.latency import LatencyModel, LatencyModelConfig
from repro.geo.regions import Region
from repro.measurement.instrumented import InstrumentedNode
from repro.node.node import ProtocolNode
from repro.p2p.network import Network
from repro.sim.engine import Simulator


def _world(seed: int = 0):
    simulator = Simulator(seed=seed)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    peer = ProtocolNode(network, Region.EASTERN_ASIA, name="peer")
    vantage = InstrumentedNode(
        network, Region.WESTERN_EUROPE, name="WE", perfect_clock=True
    )
    network.connect(peer.node_id, vantage.node_id)
    return simulator, network, peer, vantage


def _block(node: ProtocolNode, txs=()) -> Block:
    head = node.tree.head
    return Block(
        height=head.height + 1,
        parent_hash=head.block_hash,
        miner="PoolX",
        difficulty=100.0,
        timestamp=node.simulator.now,
        transactions=tuple(txs),
    )


def test_logs_connections():
    _, _, peer, vantage = _world()
    assert len(vantage.log.connections) == 1
    assert vantage.log.connections[0].peer_id == peer.node_id


def test_logs_incoming_block_messages():
    simulator, _, peer, vantage = _world()
    block = _block(peer)
    peer.inject_block(block)
    simulator.run(until=10.0)
    messages = [
        record
        for record in vantage.log.block_messages
        if record.block_hash == block.block_hash
    ]
    assert messages
    assert messages[0].height == block.height


def test_direct_messages_carry_miner_announcements_do_not():
    simulator, _, peer, vantage = _world()
    block = _block(peer)
    peer.inject_block(block)
    simulator.run(until=10.0)
    for record in vantage.log.block_messages:
        if record.direct:
            assert record.miner == "PoolX"
        else:
            assert record.miner == ""


def test_logs_block_imports_with_tx_hashes():
    simulator, _, peer, vantage = _world()
    tx = Transaction("alice", 0)
    block = _block(peer, txs=[tx])
    peer.inject_block(block)
    simulator.run(until=10.0)
    imports = [
        record
        for record in vantage.log.block_imports
        if record.block_hash == block.block_hash
    ]
    assert imports and imports[0].tx_hashes == (tx.tx_hash,)


def test_logs_first_tx_reception():
    simulator, _, peer, vantage = _world()
    tx = Transaction("alice", 0)
    peer.submit_transaction(tx)
    simulator.run(until=10.0)
    assert [record.tx_hash for record in vantage.log.tx_receptions] == [tx.tx_hash]


def test_vantage_behaviour_is_indistinguishable():
    """The instrumented node must relay exactly like a regular client:
    a third node connected only to the vantage still gets the block."""
    simulator, network, peer, vantage = _world()
    downstream = ProtocolNode(network, Region.NORTH_AMERICA, name="down")
    network.connect(vantage.node_id, downstream.node_id)
    block = _block(peer)
    peer.inject_block(block)
    simulator.run(until=20.0)
    assert block.block_hash in downstream.tree


def test_ntp_clock_offsets_logged_timestamps():
    simulator = Simulator(seed=1)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    peer = ProtocolNode(network, Region.EASTERN_ASIA)
    vantage = InstrumentedNode(network, Region.WESTERN_EUROPE, name="WE")
    network.connect(peer.node_id, vantage.node_id)
    block = _block(peer)
    peer.inject_block(block)
    simulator.run(until=10.0)
    record = vantage.log.block_messages[0]
    # Logged time differs from true time by the clock offset (± noise).
    assert record.time != 0.0
    assert abs(record.time - vantage.clock.offset) < 10.0


def test_ntp_clock_resyncs_periodically():
    """The clock offset must wander over a campaign rather than bias a
    vantage for the whole window (ntpd re-syncs every 64-1024s)."""
    simulator = Simulator(seed=5)
    network = Network(
        simulator,
        LatencyModel(simulator.rng.stream("lat"), LatencyModelConfig(jitter_sigma=0.0)),
    )
    vantage = InstrumentedNode(network, Region.WESTERN_EUROPE, name="WE")
    vantage.start()
    offsets = {vantage.clock.offset}
    for _ in range(5):
        simulator.run(until=simulator.now + 300.0)
        offsets.add(vantage.clock.offset)
    assert len(offsets) > 2
