"""Tests for record serialisation."""

from __future__ import annotations

import pytest

from repro.measurement.records import (
    BlockImportRecord,
    BlockMessageRecord,
    ChainBlockRecord,
    ConnectionRecord,
    TxReceptionRecord,
    record_from_json,
    record_to_json,
)

SAMPLES = [
    BlockMessageRecord("WE", 1.5, "0xb", 7, True, "PoolA", 42),
    BlockImportRecord(
        "WE", 2.0, "0xb", 7, "0xp", "PoolA", 100.0, 42_000, ("0xt1", "0xt2"), ("0xu",)
    ),
    TxReceptionRecord("EA", 0.5, "0xt1", "alice", 3, 42),
    ConnectionRecord("NA", 0.0, 42, True),
    ChainBlockRecord("0xb", 7, "0xp", "PoolA", 100.0, 93.1, ("0xt1",), ()),
]


@pytest.mark.parametrize("record", SAMPLES, ids=lambda r: type(r).__name__)
def test_json_round_trip(record):
    assert record_from_json(record_to_json(record)) == record


def test_json_payload_is_type_tagged():
    payload = record_to_json(SAMPLES[0])
    assert payload["_type"] == "BlockMessageRecord"


def test_unknown_type_rejected():
    with pytest.raises(KeyError):
        record_from_json({"_type": "Bogus"})


def test_missing_type_rejected():
    with pytest.raises(KeyError):
        record_from_json({"vantage": "WE"})


def test_tuples_survive_json_lists():
    payload = record_to_json(SAMPLES[1])
    payload["tx_hashes"] = list(payload["tx_hashes"])
    restored = record_from_json(payload)
    assert restored.tx_hashes == ("0xt1", "0xt2")


def test_import_record_is_empty_property():
    empty = BlockImportRecord("WE", 1.0, "0xb", 1, "0xp", "A", 1.0, 0, (), ())
    full = BlockImportRecord("WE", 1.0, "0xb", 1, "0xp", "A", 1.0, 21_000, ("0xt",), ())
    assert empty.is_empty
    assert not full.is_empty


def test_chain_record_is_empty_property():
    assert ChainBlockRecord("0xb", 1, "0xp", "A", 1.0, 1.0, (), ()).is_empty
