"""Tests for the per-vantage measurement log."""

from __future__ import annotations

from repro.measurement.logger import MeasurementLog


def test_block_message_logging():
    log = MeasurementLog("WE")
    log.log_block_message(1.0, "0xb", 5, direct=True, miner="A", peer_id=3)
    assert len(log.block_messages) == 1
    record = log.block_messages[0]
    assert record.vantage == "WE"
    assert record.direct


def test_duplicate_txs_counted_not_stored():
    log = MeasurementLog("WE")
    assert log.log_transaction(1.0, "0xt", "alice", 0, 3)
    assert not log.log_transaction(2.0, "0xt", "alice", 0, 4)
    assert len(log.tx_receptions) == 1
    assert log.tx_duplicate_count == 1


def test_distinct_txs_all_stored():
    log = MeasurementLog("WE")
    for index in range(5):
        assert log.log_transaction(float(index), f"0xt{index}", "alice", index, 3)
    assert len(log.tx_receptions) == 5
    assert log.tx_duplicate_count == 0


def test_block_import_logging():
    log = MeasurementLog("WE")
    log.log_block_import(
        2.0, "0xb", 5, "0xp", "A", 100.0, 21_000, ("0xt",), ()
    )
    assert log.block_imports[0].tx_hashes == ("0xt",)


def test_connection_logging():
    log = MeasurementLog("WE")
    log.log_connection(0.5, 42, inbound=True)
    assert log.connections[0].inbound


def test_repr_summarises_counts():
    log = MeasurementLog("WE")
    log.log_transaction(1.0, "0xt", "alice", 0, 3)
    assert "1 txs" in repr(log)
