"""Tests for campaign orchestration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geo.regions import Region
from repro.measurement.campaign import (
    DEFAULT_PEER_VANTAGE_NAME,
    Campaign,
    CampaignConfig,
    vantage_name,
)
from repro.node.pool import PoolSpec
from repro.workload.scenarios import ScenarioConfig
from repro.workload.transactions import WorkloadConfig


def _tiny_campaign(**overrides) -> CampaignConfig:
    scenario = ScenarioConfig(
        seed=2,
        n_nodes=8,
        pool_specs=(
            PoolSpec(name="A", hashpower=0.7, home_region=Region.EASTERN_ASIA),
            PoolSpec(name="B", hashpower=0.3, home_region=Region.NORTH_AMERICA),
        ),
        workload=WorkloadConfig(tx_rate=0.5, senders=10),
        warmup=10.0,
    )
    defaults = dict(scenario=scenario, duration=150.0, perfect_clocks=True)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CampaignConfig(duration=0)
    with pytest.raises(ConfigurationError):
        CampaignConfig(vantage_regions=())


def test_vantage_name_uses_region_code():
    assert vantage_name(Region.EASTERN_ASIA) == "EA"


def test_deploy_creates_vantages_and_default_peer_node():
    campaign = Campaign(_tiny_campaign())
    campaign.deploy()
    assert set(campaign.vantages) == {"NA", "EA", "WE", "CE", DEFAULT_PEER_VANTAGE_NAME}


def test_deploy_without_default_peer_vantage():
    campaign = Campaign(_tiny_campaign(deploy_default_peer_vantage=False))
    campaign.deploy()
    assert DEFAULT_PEER_VANTAGE_NAME not in campaign.vantages


def test_deploy_is_idempotent():
    campaign = Campaign(_tiny_campaign())
    campaign.deploy()
    campaign.deploy()
    assert len(campaign.vantages) == 5


def test_duplicate_vantage_region_rejected():
    config = _tiny_campaign(
        vantage_regions=(Region.EASTERN_ASIA, Region.EASTERN_ASIA)
    )
    with pytest.raises(ConfigurationError):
        Campaign(config).deploy()


def test_run_produces_complete_dataset():
    dataset = Campaign(_tiny_campaign()).run()
    assert dataset.measurement_start == pytest.approx(10.0)
    assert dataset.block_messages
    assert dataset.tx_receptions
    assert dataset.block_imports
    assert dataset.connections
    assert dataset.chain.blocks
    assert dataset.chain.canonical_hashes
    assert dataset.reference_vantage == "WE"
    assert dataset.default_peer_vantage == DEFAULT_PEER_VANTAGE_NAME


def test_reference_vantage_override():
    dataset = Campaign(_tiny_campaign(reference_vantage="EA")).run()
    assert dataset.reference_vantage == "EA"


def test_unknown_reference_vantage_rejected():
    campaign = Campaign(_tiny_campaign(reference_vantage="XX"))
    with pytest.raises(ConfigurationError):
        campaign.run()


def test_chain_snapshot_matches_reference_tree():
    campaign = Campaign(_tiny_campaign())
    dataset = campaign.run()
    reference = campaign.vantages[dataset.reference_vantage]
    assert len(dataset.chain.blocks) == len(reference.tree)
    assert dataset.chain.head_hash == reference.tree.head.block_hash


def test_determinism_same_seed_same_chain():
    a = Campaign(_tiny_campaign()).run()
    b = Campaign(_tiny_campaign()).run()
    assert a.chain.canonical_hashes == b.chain.canonical_hashes
    assert len(a.block_messages) == len(b.block_messages)
