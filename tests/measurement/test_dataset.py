"""Tests for the measurement dataset container."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.logger import MeasurementLog

from helpers import DatasetBuilder


def _dataset_with_data() -> MeasurementDataset:
    builder = DatasetBuilder(default_peer_vantage=None)
    builder.add_main_chain(["A", "B", "A"], txs_per_block=2)
    builder.observe_block("WE", "0xb1", 13.3)
    builder.observe_block("EA", "0xb1", 13.25)
    builder.observe_tx("WE", "0xtx-1-0", 5.0)
    return builder.build()


def test_absorb_log_flattens_records():
    dataset = MeasurementDataset(vantage_regions={"WE": "WE"})
    log = MeasurementLog("WE")
    log.log_block_message(1.0, "0xb", 1, True, "A", 1)
    log.log_transaction(1.0, "0xt", "alice", 0, 1)
    log.log_transaction(2.0, "0xt", "alice", 0, 2)  # duplicate
    log.log_connection(0.0, 1, False)
    dataset.absorb_log(log)
    assert len(dataset.block_messages) == 1
    assert len(dataset.tx_receptions) == 1
    assert len(dataset.connections) == 1
    assert dataset.tx_duplicate_counts["WE"] == 1


def test_primary_vantages_exclude_default_peer_node():
    dataset = MeasurementDataset(
        vantage_regions={"WE": "WE", "EA": "EA", "WE-default": "WE"},
        default_peer_vantage="WE-default",
    )
    assert dataset.primary_vantages == ["WE", "EA"]


def test_require_vantages():
    dataset = MeasurementDataset(vantage_regions={"WE": "WE"})
    dataset.require_vantages(1)
    with pytest.raises(DatasetError):
        dataset.require_vantages(2)


def test_chain_snapshot_helpers():
    dataset = _dataset_with_data()
    chain = dataset.chain
    assert [block.height for block in chain.canonical_blocks] == [0, 1, 2, 3]
    assert chain.canonical_set == set(chain.canonical_hashes)
    assert chain.non_canonical_blocks() == []


def test_referenced_uncles():
    builder = DatasetBuilder()
    builder.add_block("0xmain1", 1, "A")
    builder.add_block("0xfork", 1, "B", parent_hash="0xgenesis", canonical=False)
    builder.add_block("0xmain2", 2, "A", uncle_hashes=("0xfork",))
    dataset = builder.build()
    assert dataset.chain.referenced_uncles() == {"0xfork"}
    assert [b.block_hash for b in dataset.chain.non_canonical_blocks()] == ["0xfork"]


def test_save_load_round_trip(tmp_path):
    dataset = _dataset_with_data()
    dataset.tx_duplicate_counts["WE"] = 7
    path = tmp_path / "campaign.jsonl"
    dataset.save(path)
    restored = MeasurementDataset.load(path)
    assert restored.vantage_regions == dataset.vantage_regions
    assert restored.reference_vantage == dataset.reference_vantage
    assert restored.block_messages == dataset.block_messages
    assert restored.tx_receptions == dataset.tx_receptions
    assert restored.chain.canonical_hashes == dataset.chain.canonical_hashes
    assert restored.chain.blocks == dataset.chain.blocks
    assert restored.tx_duplicate_counts == {"WE": 7}


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(DatasetError):
        MeasurementDataset.load(tmp_path / "nope.jsonl")


def test_load_empty_file_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(DatasetError):
        MeasurementDataset.load(path)


def test_load_missing_header_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"_type": "ConnectionRecord"}\n')
    with pytest.raises(DatasetError):
        MeasurementDataset.load(path)
