"""Tests for dataset merging."""

from __future__ import annotations

import pytest

from helpers import DatasetBuilder

from repro.errors import DatasetError
from repro.measurement.merge import merge_datasets
from repro.measurement.records import BlockImportRecord, ConnectionRecord


def _window(vantage: str, block_time: float, chain_miners: list[str]):
    builder = DatasetBuilder(vantages={vantage: vantage})
    builder.add_main_chain(chain_miners)
    builder.observe_block(vantage, "0xb1", block_time)
    builder.observe_tx(vantage, "0xt-" + vantage, block_time + 1.0)
    return builder.build()


def test_merge_requires_input():
    with pytest.raises(DatasetError):
        merge_datasets([])


def test_merge_single_dataset_is_identity():
    dataset = _window("WE", 13.4, ["A"])
    assert merge_datasets([dataset]) is dataset


def test_merge_unions_vantages_and_records():
    a = _window("WE", 13.4, ["A", "B"])
    b = _window("EA", 13.35, ["A", "B"])
    merged = merge_datasets([a, b])
    assert set(merged.vantage_regions) == {"WE", "EA"}
    assert len(merged.block_messages) == 2
    assert len(merged.tx_receptions) == 2


def test_merge_takes_longest_chain():
    a = _window("WE", 13.4, ["A"])
    b = _window("EA", 13.35, ["A", "B", "C"])
    merged = merge_datasets([a, b])
    assert len(merged.chain.canonical_hashes) == 4  # genesis + 3


def test_merge_rejects_different_worlds():
    a = _window("WE", 13.4, ["A", "B"])
    other = DatasetBuilder(vantages={"EA": "EA"})
    other.add_block("0xalien1", 1, "X")
    other.add_block("0xalien2", 2, "Y")
    with pytest.raises(DatasetError):
        merge_datasets([a, other.build()])


def _alien_world() -> "MeasurementDataset":
    builder = DatasetBuilder(vantages={"EA": "EA"})
    builder.add_block("0xalien1", 1, "X")
    builder.add_block("0xalien2", 2, "Y")
    builder.observe_block("EA", "0xalien1", 13.5)
    return builder.build()


def test_merge_disjoint_worlds_is_opt_in_for_sweeps():
    """Multi-seed sweeps merge with allow_disjoint_worlds=True: record
    streams union across every world (hashes are seed-unique, so nothing
    collides) and the snapshot comes from the longest input chain."""
    a = _window("WE", 13.4, ["A"])
    b = _alien_world()
    merged = merge_datasets([a, b], allow_disjoint_worlds=True)
    assert len(merged.block_messages) == 2
    assert set(merged.vantage_regions) == {"WE", "EA"}
    # b's chain is longer (genesis + 2 vs genesis + 1).
    assert merged.chain.canonical_hashes == b.chain.canonical_hashes


def test_merge_disjoint_worlds_still_dedups_within_a_world():
    a = _window("WE", 13.4, ["A"])
    merged = merge_datasets([a, a, _alien_world()], allow_disjoint_worlds=True)
    assert len(merged.block_messages) == 2


def test_merge_deduplicates_identical_records():
    a = _window("WE", 13.4, ["A"])
    merged = merge_datasets([a, a])
    assert len(merged.block_messages) == 1
    assert len(merged.tx_receptions) == 1


def _window_all_streams(vantage: str):
    """A dataset exercising every record stream the merge deduplicates."""
    builder = DatasetBuilder(vantages={vantage: vantage})
    builder.add_main_chain(["A", "B"])
    builder.observe_block(vantage, "0xb1", 13.4)
    builder.observe_tx(vantage, "0xt-" + vantage, 14.4)
    dataset = builder.build()
    dataset.block_imports.append(
        BlockImportRecord(
            vantage=vantage,
            time=13.9,
            block_hash="0xb1",
            height=1,
            parent_hash="0xgenesis",
            miner="A",
            difficulty=100.0,
            gas_used=0,
            tx_hashes=(),
            uncle_hashes=(),
        )
    )
    dataset.connections.append(
        ConnectionRecord(vantage=vantage, time=0.5, peer_id=7, inbound=False)
    )
    dataset.tx_duplicate_counts[vantage] = 3
    return dataset


def test_merge_self_is_idempotent_for_every_stream():
    """merge_datasets([d, d]) keeps exactly d's records in every stream."""
    d = _window_all_streams("WE")
    merged = merge_datasets([d, d])
    assert len(merged.block_messages) == len(d.block_messages) == 1
    assert len(merged.block_imports) == len(d.block_imports) == 1
    assert len(merged.tx_receptions) == len(d.tx_receptions) == 1
    assert len(merged.connections) == len(d.connections) == 1


def test_merge_dedup_key_distinguishes_message_kinds():
    """A NewBlock push and a NewBlockHashes announcement at the same
    instant from the same peer are distinct observations — both survive."""
    builder = DatasetBuilder(vantages={"WE": "WE"})
    builder.add_main_chain(["A"])
    builder.observe_block("WE", "0xb1", 13.4, direct=True, peer_id=7)
    builder.observe_block("WE", "0xb1", 13.4, direct=False, peer_id=7)
    a = builder.build()
    merged = merge_datasets([a, a])
    assert len(merged.block_messages) == 2
    assert sorted(r.direct for r in merged.block_messages) == [False, True]


def test_merge_overlapping_windows_union_without_double_counting():
    """Two windows sharing some records merge to the union, not the sum."""
    shared = _window_all_streams("WE")
    later = DatasetBuilder(vantages={"WE": "WE"})
    later.add_main_chain(["A", "B"])
    later.observe_block("WE", "0xb1", 13.4)  # same observation as `shared`
    later.observe_block("WE", "0xb2", 26.7)  # new observation
    merged = merge_datasets([shared, later.build()])
    assert len(merged.block_messages) == 2
    assert len(merged.block_imports) == 1
    assert len(merged.connections) == 1


def test_merge_sorts_records_by_time():
    a = _window("WE", 99.0, ["A", "B"])
    b = _window("EA", 13.35, ["A", "B"])
    merged = merge_datasets([a, b])
    times = [record.time for record in merged.block_messages]
    assert times == sorted(times)


def test_merge_sums_duplicate_counts():
    a = _window("WE", 13.4, ["A"])
    a.tx_duplicate_counts["WE"] = 5
    b = _window("WE", 14.0, ["A"])
    b.tx_duplicate_counts["WE"] = 7
    merged = merge_datasets([a, b])
    assert merged.tx_duplicate_counts["WE"] == 12


def test_merge_enables_cross_campaign_analysis():
    """A merged two-vantage dataset supports the geographic analysis."""
    from repro.analysis.geography import first_reception_shares

    a = _window("WE", 13.40, ["A", "B"])
    b = _window("EA", 13.35, ["A", "B"])
    merged = merge_datasets([a, b])
    result = first_reception_shares(merged)
    assert result.shares["EA"] == 1.0
