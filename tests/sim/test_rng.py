"""Tests for namespaced RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "mining") == derive_seed(1, "mining")


def test_derive_seed_differs_across_namespaces():
    assert derive_seed(1, "mining") != derive_seed(1, "network")


def test_derive_seed_differs_across_roots():
    assert derive_seed(1, "mining") != derive_seed(2, "mining")


def test_stream_is_memoised():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_independent():
    """Consuming one stream must not perturb another."""
    registry_a = RngRegistry(1)
    registry_b = RngRegistry(1)
    registry_a.stream("x").random(1000)  # consume heavily
    assert (
        registry_a.stream("y").random(5) == registry_b.stream("y").random(5)
    ).all()


def test_same_namespace_same_sequence_across_registries():
    a = RngRegistry(9).stream("lottery").random(8)
    b = RngRegistry(9).stream("lottery").random(8)
    assert (a == b).all()


def test_fork_produces_deterministic_child_registry():
    child_a = RngRegistry(3).fork("node-1")
    child_b = RngRegistry(3).fork("node-1")
    assert (child_a.stream("x").random(4) == child_b.stream("x").random(4)).all()


def test_fork_children_differ_by_namespace():
    root = RngRegistry(3)
    assert (
        root.fork("node-1").stream("x").random(4)
        != root.fork("node-2").stream("x").random(4)
    ).any()
