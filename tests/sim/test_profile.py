"""Tests for opt-in event-loop profiling."""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.profile import event_label
from repro.stats import format_event_profile


class _TypedEvent:
    """A callable event advertising an explicit profile label."""

    profile_label = "Typed.tick"

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self) -> None:
        self.calls += 1


def _named_callback() -> None:
    pass


def test_event_label_prefers_profile_label_attribute():
    assert event_label(_TypedEvent()) == "Typed.tick"


def test_event_label_falls_back_to_qualname():
    assert event_label(_named_callback) == "_named_callback"


def test_event_label_strips_locals_noise():
    def inner() -> None:
        pass

    label = event_label(inner)
    assert "<locals>" not in label
    assert label.endswith("inner")


def test_profiling_disabled_by_default():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.profile is None
    metrics = sim.metrics
    assert not metrics.profiled
    assert metrics.event_counts == {}
    assert metrics.queue_high_water is None
    assert metrics.events_processed == 1


def test_profiled_counts_sum_to_events_processed():
    sim = Simulator(profile=True)
    typed = _TypedEvent()
    for t in range(5):
        sim.schedule(float(t), typed)
    for t in range(3):
        sim.schedule(10.0 + t, _named_callback)
    sim.run()
    metrics = sim.metrics
    assert metrics.profiled
    assert sim.events_processed == 8
    assert sum(metrics.event_counts.values()) == metrics.events_processed
    assert metrics.event_counts["Typed.tick"] == 5
    assert metrics.event_counts["_named_callback"] == 3
    assert set(metrics.event_seconds) == set(metrics.event_counts)
    assert all(s >= 0.0 for s in metrics.event_seconds.values())


def test_queue_high_water_tracks_deepest_queue():
    sim = Simulator(profile=True)
    for t in range(7):
        sim.schedule(float(t), lambda: None)
    sim.run()
    assert sim.profile is not None
    assert sim.profile.queue_high_water == 7


def test_enable_profiling_is_idempotent_and_late_bindable():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.enable_profiling()
    profile = sim.profile
    sim.enable_profiling()
    assert sim.profile is profile  # idempotent: no counter reset
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sum(sim.metrics.event_counts.values()) == 1  # only post-enable


def test_metrics_throughput_fields():
    sim = Simulator(profile=True)
    sim.schedule(1.0, lambda: None)
    sim.run()
    metrics = sim.metrics
    assert metrics.simulated_seconds == 1.0
    assert metrics.run_wall_seconds > 0.0
    assert metrics.events_per_second > 0.0


def test_format_event_profile_renders_counts_and_summary():
    sim = Simulator(profile=True)
    typed = _TypedEvent()
    for t in range(4):
        sim.schedule(float(t), typed)
    sim.run()
    text = format_event_profile(sim.metrics)
    assert "Typed.tick" in text
    assert "events processed : 4" in text
    assert "queue high-water" in text


def test_format_event_profile_without_profiling():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    text = format_event_profile(sim.metrics)
    assert "requires profile=True" in text
    assert "events processed : 1" in text
