"""Tests for periodic and Poisson processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, PoissonProcess


def test_periodic_fires_at_fixed_period():
    sim = Simulator()
    times: list[float] = []
    process = PeriodicProcess(sim, 2.0, lambda: times.append(sim.now))
    process.start()
    sim.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]


def test_periodic_stop_halts_firing():
    sim = Simulator()
    times: list[float] = []
    process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
    process.start()
    sim.schedule(2.5, process.stop)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]


def test_periodic_restart_continues():
    sim = Simulator()
    count = [0]
    process = PeriodicProcess(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1))
    process.start()
    sim.run(until=2.5)
    process.stop()
    process.start()
    sim.run(until=5.0)
    assert count[0] == 4  # 1,2 then 3.5,4.5


def test_periodic_start_is_idempotent():
    sim = Simulator()
    count = [0]
    process = PeriodicProcess(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1))
    process.start()
    process.start()
    sim.run(until=3.5)
    assert count[0] == 3  # not doubled


def test_periodic_requires_positive_period():
    with pytest.raises(SimulationError):
        PeriodicProcess(Simulator(), 0.0, lambda: None)


def test_poisson_mean_rate_statistically():
    sim = Simulator(seed=5)
    count = [0]
    process = PoissonProcess(
        sim,
        rate=2.0,
        callback=lambda: count.__setitem__(0, count[0] + 1),
        rng=np.random.default_rng(7),
    )
    process.start()
    sim.run(until=5000.0)
    expected = 2.0 * 5000.0
    assert abs(count[0] - expected) < 4 * np.sqrt(expected)


def test_poisson_requires_positive_rate():
    with pytest.raises(SimulationError):
        PoissonProcess(Simulator(), 0.0, lambda: None, np.random.default_rng(0))


def test_poisson_stop_cancels_pending():
    sim = Simulator(seed=5)
    count = [0]
    process = PoissonProcess(
        sim,
        rate=100.0,
        callback=lambda: count.__setitem__(0, count[0] + 1),
        rng=np.random.default_rng(7),
    )
    process.start()
    sim.run(until=1.0)
    seen = count[0]
    process.stop()
    sim.run(until=2.0)
    assert count[0] == seen
    assert not process.running


def test_running_property_tracks_state():
    process = PeriodicProcess(Simulator(), 1.0, lambda: None)
    assert not process.running
    process.start()
    assert process.running
    process.stop()
    assert not process.running
