"""Unit tests for the calendar-queue backend.

The delicate property — identical ``(time, priority, sequence)`` drain
order vs the heap backend — is covered exhaustively by the differential
property tests in ``tests/property/test_queue_differential.py``; here we
pin the backend's own mechanics: bucket maintenance, cancellation
accounting, cursor safety and the engine-facing surface.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.calqueue import MIN_BUCKETS, CalendarQueue
from repro.sim.engine import Simulator
from repro.sim.events import (
    DEFAULT_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    EventQueue,
    resolve_queue_backend,
)


class _Batch:
    """Batch record for arity-5 entries (mirrors the network's usage)."""

    cancelled = False

    def __init__(self) -> None:
        self.fired: list[int] = []

    def fire(self, index: int) -> None:
        self.fired.append(index)


class _Raw:
    """Pooled event-like object for ``push_raw`` entries."""

    cancelled = False

    def callback(self) -> None:
        pass


def test_constructor_validates_shape():
    with pytest.raises(SimulationError):
        CalendarQueue(n_buckets=48)  # not a power of two
    with pytest.raises(SimulationError):
        CalendarQueue(width=0.0)
    with pytest.raises(SimulationError):
        CalendarQueue().push(-1.0, lambda: None)


def test_pop_orders_by_time_priority_sequence():
    q = CalendarQueue()
    fired: list[str] = []
    q.push(2.0, lambda: fired.append("late"))
    q.push(1.0, lambda: fired.append("early-low"), priority=200)
    q.push(1.0, lambda: fired.append("early-high"), priority=0)
    q.push(1.0, lambda: fired.append("early-first"), priority=0)
    # Same time+priority: scheduling order (sequence) breaks the tie —
    # "early-high" was pushed before "early-first".
    while (event := q.pop()) is not None:
        event.callback()
    assert fired == ["early-high", "early-first", "early-low", "late"]


def test_pop_entry_horizon_stops_without_consuming():
    q = CalendarQueue()
    q.push(5.0, lambda: None)
    assert q.pop_entry(horizon=4.0) is None
    assert q.live_count == 1
    entry = q.pop_entry(horizon=5.0)
    assert entry is not None and entry[0] == 5.0
    assert q.pop_entry() is None


def test_push_at_current_instant_after_horizon_stop():
    """A horizon stop must not strand a subsequent push at the horizon.

    This is the cursor-overrun regression: the scan can overshoot the
    horizon's bucket-year before noticing, and persisting that cursor
    would make an entry scheduled *at* the horizon invisible for a whole
    wheel rotation.
    """
    q = CalendarQueue()
    q.push(1000.0, lambda: None)
    assert q.pop_entry(horizon=500.0) is None
    q.push(500.0, lambda: None)  # exactly at the horizon just ruled out
    entry = q.pop_entry(horizon=500.0)
    assert entry is not None and entry[0] == 500.0


def test_push_behind_cursor_pulls_it_back():
    """The raw queue tolerates pushes earlier than the last pop."""
    q = CalendarQueue()
    q.push(100.0, lambda: None)
    assert q.pop() is not None
    q.push(1.0, lambda: None)
    q.push(50.0, lambda: None)
    entry = q.pop_entry()
    assert entry is not None and entry[0] == 1.0
    entry = q.pop_entry()
    assert entry is not None and entry[0] == 50.0


def test_cancellation_is_lazy_and_accounted():
    q = CalendarQueue()
    keep = q.push(1.0, lambda: None)
    drop = q.push(2.0, lambda: None)
    drop.cancel()
    drop.cancel()  # idempotent
    assert len(q) == 2
    assert q.live_count == 1
    assert q.pending_events == 1
    assert q.pop() is keep
    assert q.pop() is None
    assert q.pending_events == 0


def test_cancelled_majority_triggers_compaction():
    q = CalendarQueue()
    handles = [q.push(float(i), lambda: None) for i in range(200)]
    for handle in handles[:150]:
        handle.cancel()
    before = q.stats()["compactions_total"]
    q.push(300.0, lambda: None)  # trips the cancelled-majority check
    stats = q.stats()
    assert stats["compactions_total"] == before + 1
    assert stats["cancelled_pending"] == 0
    assert q.live_count == 51
    times = [entry[0] for entry in q.pop_until(math.inf)]
    assert times == sorted(times) and len(times) == 51


def test_push_batch_matches_scalar_sequence_order():
    q = CalendarQueue()
    batch = _Batch()
    q.push_batch([3.0, 1.0, 2.0], batch)
    indices = [entry[4] for entry in q.pop_until(math.inf)]
    assert indices == [1, 2, 0]  # time order; index = scheduling order


def test_simultaneous_batch_fires_in_index_order():
    q = CalendarQueue()
    batch = _Batch()
    q.push_batch([7.0, 7.0, 7.0], batch)
    for entry in q.pop_until(math.inf):
        entry[3].fire(entry[4])
    assert batch.fired == [0, 1, 2]


def test_peek_time_does_not_consume_or_reorder():
    q = CalendarQueue()
    q.push(4.0, lambda: None)
    q.push(2.0, lambda: None, priority=5)
    assert q.peek_time() == 2.0
    assert q.peek_time() == 2.0
    assert q.live_count == 2
    times = [entry[0] for entry in q.pop_until(math.inf)]
    assert times == [2.0, 4.0]
    assert q.peek_time() is None


def test_growth_and_shrink_resizes_preserve_order():
    q = CalendarQueue()
    n = 2000  # > MIN_BUCKETS * 2: forces growth
    for i in range(n):
        q.push_raw((i * 37 % n) * 0.01, _Raw())
    grown = q.stats()
    assert grown["buckets"] > MIN_BUCKETS
    assert grown["resizes_total"] > 0
    times = [entry[0] for entry in q.pop_until(math.inf)]
    assert times == sorted(times) and len(times) == n
    # Shrinking is lazy: the drain itself leaves the table at burst size
    # (re-tuning on every drain is what thrashed recurring workloads).
    # The first pop that walks a long empty stretch re-tunes instead of
    # paying the O(buckets) jump scan — sparse follow-up traffic
    # triggers exactly that.
    assert q.stats()["buckets"] == grown["buckets"]
    q.push_raw(1e6, _Raw())
    q.push_raw(2e6, _Raw())
    assert [entry[0] for entry in q.pop_until(math.inf)] == [1e6, 2e6]
    assert q.stats()["buckets"] == MIN_BUCKETS


def test_sparse_times_take_the_scan_jump_path():
    q = CalendarQueue(width=1e-6)  # tiny years: huge empty stretches
    expected = [float(i * 10_000) for i in range(40)]
    for t in reversed(expected):
        q.push_raw(t, _Raw())
    assert [entry[0] for entry in q.pop_until(math.inf)] == expected


def test_pop_until_settles_corpses_per_entry():
    """Mid-drain compaction must not double-count drained corpses."""
    q = CalendarQueue()
    handles = [q.push(float(i), lambda: None) for i in range(100)]
    for handle in handles[:70]:
        handle.cancel()
    drained = q.pop_until(40.0)  # crosses 40 corpses plus 0 live... all <40 cancelled
    assert drained == []
    assert q.pending_events == 30
    rest = q.pop_until(math.inf)
    assert len(rest) == 30
    assert q.pending_events == 0
    assert q.stats()["cancelled_pending"] == 0


def test_clear_resets_but_keeps_sequence_monotone():
    q = CalendarQueue()
    first = q.push(1.0, lambda: None)
    q.clear()
    assert len(q) == 0 and q.live_count == 0 and q.pop() is None
    second = q.push(1.0, lambda: None)
    assert second.sequence > first.sequence
    assert q.pop() is second


def test_stats_surface_matches_heap_backend_keys():
    assert set(CalendarQueue().stats()) == set(EventQueue().stats())
    assert CalendarQueue.backend == "calendar"
    assert EventQueue.backend == "heap"


# --------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------- #


def test_resolve_queue_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_QUEUE_BACKEND", raising=False)
    assert resolve_queue_backend() == DEFAULT_QUEUE_BACKEND
    monkeypatch.setenv("REPRO_QUEUE_BACKEND", "calendar")
    assert resolve_queue_backend() == "calendar"
    # An explicit choice always beats the environment: cross-backend
    # comparison tests stay meaningful on every CI matrix leg.
    assert resolve_queue_backend("heap") == "heap"
    monkeypatch.setenv("REPRO_QUEUE_BACKEND", "bogus")
    with pytest.raises(ConfigurationError):
        resolve_queue_backend()
    with pytest.raises(ConfigurationError):
        resolve_queue_backend("also-bogus")
    assert set(QUEUE_BACKENDS) == {"heap", "calendar"}


# --------------------------------------------------------------------- #
# Engine integration (the inlined calendar run loop)
# --------------------------------------------------------------------- #


def _drive(backend: str) -> tuple[list, Simulator]:
    sim = Simulator(seed=3, queue_backend=backend)
    log: list = []
    batch = _Batch()

    def tick(name: str):
        def _cb() -> None:
            log.append((name, sim.now))

        return _cb

    sim.schedule(1.0, tick("a"))
    sim.schedule(1.0, tick("b"), priority=0)
    sim.call_later(2.5, tick("c"))
    sim.schedule_batch([0.5, 1.0, 2.0], batch)
    handle = sim.schedule(1.5, tick("dropped"))
    handle.cancel()
    sim.run(until=10.0)
    log.append(tuple(batch.fired))
    return log, sim


def test_engine_calendar_loop_matches_heap_loop():
    heap_log, heap_sim = _drive("heap")
    cal_log, cal_sim = _drive("calendar")
    assert cal_log == heap_log
    assert cal_sim.now == heap_sim.now == 10.0
    assert cal_sim.events_processed == heap_sim.events_processed
    assert cal_sim.queue_backend == "calendar"
    assert heap_sim.queue_backend == "heap"


def test_engine_calendar_respects_budget_and_resume():
    for backend in QUEUE_BACKENDS:
        sim = Simulator(queue_backend=backend)
        fired: list[float] = []
        for i in range(10):
            sim.schedule(float(i), lambda: fired.append(sim.now))
        sim.run(max_events=4)
        assert sim.budget_exhausted
        assert fired == [0.0, 1.0, 2.0, 3.0]
        sim.run()  # resume drains the rest in order
        assert fired == [float(i) for i in range(10)]


def test_engine_calendar_stop_and_reschedule():
    sim = Simulator(queue_backend="calendar")
    fired: list[str] = []

    def stopper() -> None:
        fired.append("stop")
        sim.stop()
        sim.schedule(sim.now, lambda: fired.append("same-instant"))

    sim.schedule(5.0, stopper)
    sim.run(until=100.0)
    assert fired == ["stop"]
    assert sim.now == 5.0  # truncated runs do not advance to the horizon
    sim.run(until=100.0)
    assert fired == ["stop", "same-instant"]


def test_engine_calendar_schedule_raw_and_past_rejection():
    sim = Simulator(queue_backend="calendar")
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_raw(0.5, _Raw())
    with pytest.raises(SimulationError):
        sim.schedule_batch([0.5], _Batch())


def test_simulator_queue_stats_exposes_backend_counters():
    sim = Simulator(queue_backend="calendar")
    for i in range(500):
        sim.schedule_raw(float(i), _Raw())
    sim.run(until=100.0)
    stats = sim.queue_stats()
    assert stats["pushed_total"] == 500.0
    assert stats["live"] == 399.0  # events 101..499 still pending
    assert stats["buckets"] >= MIN_BUCKETS
    heap_stats = Simulator(queue_backend="heap").queue_stats()
    assert set(heap_stats) == set(stats)
