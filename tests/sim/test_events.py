"""Tests for the event queue primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import COMPACT_MIN_HEAP, DEFAULT_PRIORITY, EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired: list[str] = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order():
    queue = EventQueue()
    order: list[int] = []
    for index in range(10):
        queue.push(5.0, lambda i=index: order.append(i))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == list(range(10))


def test_priority_breaks_ties_before_sequence():
    queue = EventQueue()
    order: list[str] = []
    queue.push(1.0, lambda: order.append("late"), priority=DEFAULT_PRIORITY + 1)
    queue.push(1.0, lambda: order.append("early"), priority=DEFAULT_PRIORITY - 1)
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["early", "late"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: pytest.fail("cancelled event fired"))
    event.cancel()
    assert queue.pop() is None


def test_pop_skips_cancelled_to_next_live_event():
    queue = EventQueue()
    first = queue.push(1.0, lambda: pytest.fail("cancelled event fired"))
    second = queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.pop() is second
    assert queue.pop() is None


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert event.cancelled


def test_peek_time_returns_next_live_event():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_queue_is_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(-0.1, lambda: None)


def test_len_counts_pending_including_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 2  # lazily removed


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None
    assert len(queue) == 0


def test_event_repr_mentions_state():
    queue = EventQueue()
    event = queue.push(1.5, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


# --------------------------------------------------------------------- #
# Batched entries and cancelled-event compaction
# --------------------------------------------------------------------- #


class _Batch:
    """Minimal batch record implementing the 5-tuple entry protocol."""

    cancelled = False

    def __init__(self, log: list, tag: str = "batch") -> None:
        self.log = log
        self.tag = tag

    def fire(self, index: int) -> None:
        self.log.append((self.tag, index))


def test_schedule_batch_fires_in_time_order():
    sim = Simulator()
    log: list = []
    sim.schedule_batch([3.0, 1.0, 2.0], _Batch(log))
    sim.run()
    assert log == [("batch", 1), ("batch", 2), ("batch", 0)]
    assert sim.events_processed == 3
    assert sim.now == 3.0


def test_schedule_batch_ties_fire_in_index_order():
    sim = Simulator()
    log: list = []
    sim.schedule_batch([1.0] * 5, _Batch(log))
    sim.run()
    assert log == [("batch", i) for i in range(5)]


def test_schedule_batch_interleaves_with_scalar_events():
    """Sequence numbers are global: a wave scheduled before a scalar event
    at the same time fires first, and vice versa."""
    sim = Simulator()
    log: list = []
    sim.schedule(1.0, lambda: log.append("scalar-first"))
    sim.schedule_batch([1.0, 1.0], _Batch(log))
    sim.schedule(1.0, lambda: log.append("scalar-last"))
    sim.run()
    assert log == ["scalar-first", ("batch", 0), ("batch", 1), "scalar-last"]


def test_schedule_batch_rejects_past_times():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_batch([2.0, 0.5], _Batch([]))


def test_push_batch_empty_is_noop():
    queue = EventQueue()
    queue.push_batch([], _Batch([]))
    assert len(queue) == 0


def test_live_count_excludes_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.live_count == 2
    handle.cancel()
    assert queue.live_count == 1
    assert len(queue) == 2  # raw heap size still includes the corpse


def test_compaction_reclaims_cancelled_majority():
    """Once cancelled entries dominate a large heap, a push compacts it."""
    queue = EventQueue()
    keep = [queue.push(float(i), lambda: None) for i in range(COMPACT_MIN_HEAP)]
    doomed = [
        queue.push(1000.0 + i, lambda: None) for i in range(COMPACT_MIN_HEAP + 2)
    ]
    for handle in doomed:
        handle.cancel()
    assert len(queue) == 2 * COMPACT_MIN_HEAP + 2
    queue.push(5000.0, lambda: None)
    # The cancelled majority is gone; only live entries remain.
    assert len(queue) == COMPACT_MIN_HEAP + 1
    assert queue.live_count == COMPACT_MIN_HEAP + 1
    # And the survivors still drain in time order.
    times = []
    while (event := queue.pop()) is not None:
        times.append(event.time)
    assert times == sorted(times)
    assert len(times) == COMPACT_MIN_HEAP + 1
    assert len(keep) == COMPACT_MIN_HEAP


def test_small_heaps_are_never_compacted():
    """Below the size floor, lazy removal is observable via len()."""
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    queue.push(3.0, lambda: None)
    assert len(queue) == 3


def test_pop_until_compaction_mid_drain_keeps_accounting_exact():
    """Regression: corpses drained past a mid-drain compaction were
    double-counted.

    ``pop_until`` used to tally the corpses it crossed and subtract them
    from ``_cancelled`` after the loop; when the dead fraction crossed
    one half mid-drain, the compaction reset the counter to zero first,
    the deferred subtraction drove it negative, and ``pending_events``
    stayed permanently inflated.  Per-corpse settlement makes the
    compaction trigger and the accounting agree at every step.
    """
    queue = EventQueue()
    handles = [queue.push(float(i), lambda: None) for i in range(200)]
    for handle in handles[:150]:
        handle.cancel()
    assert queue.pending_events == 50
    # Every entry at or before the horizon is a corpse; crossing the
    # first one already makes the dead fraction a majority of a heap
    # well above COMPACT_MIN_HEAP, so compaction fires mid-drain.
    drained = queue.pop_until(149.5)
    assert drained == []
    stats = queue.stats()
    assert stats["compactions_total"] == 1.0
    assert stats["cancelled_pending"] == 0.0
    assert queue.pending_events == 50
    rest = queue.pop_until(float("inf"))
    assert [entry[0] for entry in rest] == [float(i) for i in range(150, 200)]
    assert queue.pending_events == 0
