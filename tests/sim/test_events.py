"""Tests for the event queue primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import DEFAULT_PRIORITY, EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired: list[str] = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order():
    queue = EventQueue()
    order: list[int] = []
    for index in range(10):
        queue.push(5.0, lambda i=index: order.append(i))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == list(range(10))


def test_priority_breaks_ties_before_sequence():
    queue = EventQueue()
    order: list[str] = []
    queue.push(1.0, lambda: order.append("late"), priority=DEFAULT_PRIORITY + 1)
    queue.push(1.0, lambda: order.append("early"), priority=DEFAULT_PRIORITY - 1)
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["early", "late"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: pytest.fail("cancelled event fired"))
    event.cancel()
    assert queue.pop() is None


def test_pop_skips_cancelled_to_next_live_event():
    queue = EventQueue()
    first = queue.push(1.0, lambda: pytest.fail("cancelled event fired"))
    second = queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.pop() is second
    assert queue.pop() is None


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert event.cancelled


def test_peek_time_returns_next_live_event():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_queue_is_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(-0.1, lambda: None)


def test_len_counts_pending_including_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 2  # lazily removed


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None
    assert len(queue) == 0


def test_event_repr_mentions_state():
    queue = EventQueue()
    event = queue.push(1.5, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)
