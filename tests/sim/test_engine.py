"""Tests for the simulator event loop."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_run_advances_clock_to_each_event():
    sim = Simulator()
    seen: list[float] = []
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0, 2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired: list[str] = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.run(until=3.0)
    assert fired == ["a"]
    assert sim.now == 3.0  # clock advanced to the horizon


def test_run_until_then_continue():
    sim = Simulator()
    fired: list[str] = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.run(until=3.0)
    sim.run(until=10.0)
    assert fired == ["a", "b"]


def test_clock_advances_to_horizon_when_queue_drains():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(1.0, lambda: None)


def test_call_later_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda: None)


def test_call_later_schedules_relative_to_now():
    sim = Simulator()
    times: list[float] = []
    sim.schedule(2.0, lambda: sim.call_later(3.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_max_events_limits_firing():
    sim = Simulator()
    fired: list[int] = []
    for index in range(10):
        sim.schedule(float(index), lambda i=index: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sim.events_processed == 4


def test_max_events_truncation_does_not_advance_clock_to_horizon():
    """A run cut short by its event budget must not pretend the whole
    window was simulated: the clock stays at the last fired event."""
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=100.0, max_events=1)
    assert sim.now == 1.0
    assert sim.budget_exhausted
    sim.run(until=100.0)  # drains naturally -> horizon reached
    assert sim.now == 100.0
    assert not sim.budget_exhausted


def test_budget_exhausted_reports_truncation():
    sim = Simulator()
    for t in range(3):
        sim.schedule(float(t), lambda: None)
    sim.run(max_events=2)
    assert sim.budget_exhausted
    sim.run()
    assert not sim.budget_exhausted


def test_budget_exhausted_false_on_natural_drain():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(max_events=10)
    assert not sim.budget_exhausted


def test_stop_does_not_advance_clock_to_horizon():
    sim = Simulator()
    sim.schedule(1.0, sim.stop)
    sim.schedule(50.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 1.0
    assert not sim.budget_exhausted


def test_stop_terminates_run_after_current_event():
    sim = Simulator()
    fired: list[str] = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a"]
    sim.run()  # resumes cleanly
    assert fired == ["a", "b"]


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter() -> None:
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_events_fired_inside_events_run_same_pass():
    sim = Simulator()
    fired: list[str] = []
    sim.schedule(1.0, lambda: sim.call_later(0.0, lambda: fired.append("child")))
    sim.run()
    assert fired == ["child"]


def test_pending_events_counts_queue():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2


def test_rng_streams_are_deterministic_per_seed():
    a = Simulator(seed=42).rng.stream("x").random(5)
    b = Simulator(seed=42).rng.stream("x").random(5)
    assert (a == b).all()
