"""Propagation-tree reconstruction from synthetic traces."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.records import BlockMessageRecord
from repro.obs.blocktrace import (
    build_propagation_tree,
    node_directory,
    render_campaign_summary,
    render_delta_report,
    render_propagation_tree,
    resolve_block_hash,
    vantage_deltas,
)
from repro.obs.export import Trace
from repro.obs.records import (
    BlockImported,
    BlockReceived,
    BlockSealed,
    NodeRegistered,
    ValidationStarted,
)

BLOCK = "0xaabbccddeeff00112233"


def _synthetic_trace() -> Trace:
    """gw injects BLOCK; n1 gets a push from gw; n2 an announce from n1."""
    records = [
        NodeRegistered(time=0.0, node="gw", node_id=10, region="WE"),
        NodeRegistered(time=0.0, node="n1", node_id=11, region="NA"),
        NodeRegistered(time=0.0, node="n2", node_id=12, region="EA"),
        BlockSealed(
            time=5.0,
            block_hash=BLOCK,
            parent_hash="0x00",
            height=1,
            pool="Ethermine",
            variant=0,
            variants=1,
            tx_count=2,
        ),
        # Origin: the gateway validates before ever "receiving".
        ValidationStarted(time=5.0, node="gw", block_hash=BLOCK, height=1),
        BlockImported(
            time=5.05, node="gw", block_hash=BLOCK, height=1, head_changed=True
        ),
        BlockReceived(
            time=5.1, node="n1", block_hash=BLOCK, height=1, peer_id=10,
            direct=True,
        ),
        # A push reception and its validation share one timestamp: n1 is
        # NOT an origin (strict < in the origin test).
        ValidationStarted(time=5.1, node="n1", block_hash=BLOCK, height=1),
        BlockImported(
            time=5.15, node="n1", block_hash=BLOCK, height=1, head_changed=True
        ),
        BlockReceived(
            time=5.2, node="n2", block_hash=BLOCK, height=1, peer_id=11,
            direct=False,
        ),
        # Duplicate reception later — must not re-parent n2.
        BlockReceived(
            time=5.4, node="n2", block_hash=BLOCK, height=1, peer_id=10,
            direct=True,
        ),
    ]
    return Trace(
        seed=1,
        preset="unit",
        canonical_hashes=("0x00", BLOCK),
        head_hash=BLOCK,
        records=records,
    )


def test_node_directory_maps_ids_to_names():
    assert node_directory(_synthetic_trace()) == {10: "gw", 11: "n1", 12: "n2"}


def test_resolve_block_hash_head_prefix_and_errors():
    trace = _synthetic_trace()
    assert resolve_block_hash(trace, "head") == BLOCK
    assert resolve_block_hash(trace, "aabb") == BLOCK
    assert resolve_block_hash(trace, BLOCK) == BLOCK
    with pytest.raises(TraceError, match="no block"):
        resolve_block_hash(trace, "dead")
    with pytest.raises(TraceError, match="ambiguous"):
        # Both genesis and BLOCK start with "0x".
        resolve_block_hash(trace, "0x")


def test_tree_structure_origins_and_parents():
    tree = build_propagation_tree(_synthetic_trace(), BLOCK)
    assert tree.height == 1
    assert tree.pool == "Ethermine"
    assert tree.sealed_time == 5.0
    assert tree.reach == 3
    assert [root.node for root in tree.roots] == ["gw"]
    gw = tree.nodes["gw"]
    assert gw.via_peer == ""  # injected, not received
    assert [child.node for child in gw.children] == ["n1"]
    n1 = tree.nodes["n1"]
    assert n1.direct is True and n1.via_peer == "gw"
    n2 = tree.nodes["n2"]
    # First reception wins: announce from n1, not the later push from gw.
    assert n2.via_peer == "n1" and n2.direct is False
    assert n2.first_seen == 5.2
    assert tree.origin_time == 5.0
    assert tree.spread_seconds(1.0) == pytest.approx(0.2)


def test_unknown_block_raises():
    with pytest.raises(TraceError, match="no events"):
        build_propagation_tree(_synthetic_trace(), "0xdeadbeef")


def test_renderings_contain_the_structure():
    trace = _synthetic_trace()
    tree = build_propagation_tree(trace, BLOCK)
    art = render_propagation_tree(tree)
    assert "sealed by Ethermine" in art
    assert "injected" in art  # gw
    assert "push" in art  # n1
    assert "announce" in art  # n2
    capped = render_propagation_tree(tree, max_nodes=1)
    assert "2 more nodes" in capped
    summary = render_campaign_summary(trace)
    assert "seed 1" in summary and "preset unit" in summary
    assert "Ethermine" in summary


def test_vantage_deltas_against_a_dataset():
    trace = _synthetic_trace()
    dataset = MeasurementDataset(
        vantage_regions={"n1": "NA", "n2": "EA", "cold": "WE"}
    )
    dataset.block_messages = [
        BlockMessageRecord(
            vantage="n1", time=5.16, block_hash=BLOCK, height=1,
            direct=True, miner="", peer_id=10,
        ),
        BlockMessageRecord(
            vantage="n2", time=5.18, block_hash=BLOCK, height=1,
            direct=False, miner="", peer_id=11,
        ),
    ]
    deltas = {d.vantage: d for d in vantage_deltas(trace, dataset, BLOCK)}
    assert deltas["n1"].delta == pytest.approx(0.06)
    assert deltas["n2"].delta == pytest.approx(-0.02)  # NTP error went early
    assert deltas["cold"].truth is None and deltas["cold"].delta is None
    report = render_delta_report(sorted(deltas.values(), key=lambda d: d.vantage))
    assert "+60.0" in report and "-20.0" in report and "-" in report
