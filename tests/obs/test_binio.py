"""The ``.trace.bin`` container: write/read fidelity and corruption paths."""

from __future__ import annotations

import struct

import pytest

from repro.errors import TraceError
from repro.obs.binio import (
    CONTAINER_VERSION,
    END_MAGIC,
    TraceBinReader,
    TraceBinWriter,
    is_binary_trace,
)
from repro.obs.columns import KIND_ORDER, TraceColumns, materialize_block
from repro.obs.export import TRACE_SCHEMA_VERSION

from tests.obs.test_columns import sample_records


def _write_container(path) -> tuple:
    """Write every record kind into a finalized container."""
    columns = TraceColumns()
    originals = sample_records()
    for record in originals:
        columns.append_record(record)
    columns.seal_all()
    writer = TraceBinWriter(path, TRACE_SCHEMA_VERSION)
    for kind in KIND_ORDER:
        for block in columns.stores[kind].blocks:
            writer.write_block(block)
    writer.finalize(
        columns,
        seed=9,
        preset="small",
        canonical_hashes=("0x00", "0xaa"),
        head_hash="0xaa",
    )
    return originals


def test_all_kinds_round_trip_through_the_container(tmp_path):
    path = tmp_path / "run.trace.bin"
    originals = _write_container(path)
    reader = TraceBinReader(path, TRACE_SCHEMA_VERSION)
    assert reader.seed == 9
    assert reader.preset == "small"
    assert reader.canonical_hashes == ("0x00", "0xaa")
    assert reader.head_hash == "0xaa"
    assert reader.record_count == len(originals)

    decoded = []
    for block in reader.iter_blocks():
        decoded.extend(materialize_block(block, reader.symbols, reader.ids))
    # Exact dataclass equality, kind by kind: every field of every kind
    # survived the f64 pack, symbol/id interning, and the varlen codecs.
    by_kind = {type(r): r for r in decoded}
    assert len(decoded) == len(originals)
    for original in originals:
        assert by_kind[type(original)] == original


def test_per_kind_iteration_seeks_only_matching_blocks(tmp_path):
    path = tmp_path / "run.trace.bin"
    originals = _write_container(path)
    reader = TraceBinReader(path, TRACE_SCHEMA_VERSION)
    for original in originals:
        blocks = list(reader.iter_kind_blocks(type(original)))
        assert len(blocks) == 1
        (back,) = materialize_block(blocks[0], reader.symbols, reader.ids)
        assert back == original


def test_no_tmp_sibling_survives_finalize(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    assert [p.name for p in tmp_path.iterdir()] == ["run.trace.bin"]
    assert is_binary_trace(path)


def test_writer_creates_missing_target_directory(tmp_path):
    """Streaming sinks open before anything else touches the cache dir.

    A fleet worker wires ``stream_trace_to`` into a disk cache that
    ``store_dataset`` has not created yet (regression: the first traced
    sweep into a fresh ``--cache-dir`` killed every worker)."""
    path = tmp_path / "cache" / "deep" / "run.trace.bin"
    originals = _write_container(path)
    reader = TraceBinReader(path, TRACE_SCHEMA_VERSION)
    assert reader.record_count == len(originals)


def test_abort_removes_the_partial_file(tmp_path):
    path = tmp_path / "run.trace.bin"
    writer = TraceBinWriter(path, TRACE_SCHEMA_VERSION)
    writer.abort()
    assert list(tmp_path.iterdir()) == []
    assert not is_binary_trace(path)


def test_write_after_finalize_is_rejected(tmp_path):
    path = tmp_path / "run.trace.bin"
    columns = TraceColumns()
    writer = TraceBinWriter(path, TRACE_SCHEMA_VERSION)
    writer.finalize(
        columns, seed=1, preset="small", canonical_hashes=(), head_hash=""
    )
    store = TraceColumns().stores[KIND_ORDER[0]]
    with pytest.raises(TraceError, match="already finalized"):
        writer.write_block(store.staging_block() or _dummy_block())


def _dummy_block():
    columns = TraceColumns()
    for record in sample_records():
        columns.append_record(record)
    return columns.stores[KIND_ORDER[0]].staging_block()


def test_non_container_file_is_rejected(tmp_path):
    path = tmp_path / "garbage.trace.bin"
    path.write_bytes(b"certainly not a trace container")
    assert not is_binary_trace(path)
    with pytest.raises(TraceError, match="not a binary trace container"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)


def test_missing_file_is_rejected(tmp_path):
    with pytest.raises(TraceError, match="no trace file"):
        TraceBinReader(tmp_path / "missing.trace.bin", TRACE_SCHEMA_VERSION)


def test_truncated_file_reports_the_mid_write_death(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    whole = path.read_bytes()
    # Chop the tail: exactly what a crashed writer leaves behind.
    path.write_bytes(whole[:-24])
    with pytest.raises(TraceError, match="truncated"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)


def test_future_container_version_is_rejected(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    raw = bytearray(path.read_bytes())
    # Preamble: 4s magic | u16 container | u16 schema | u32 header len.
    struct.pack_into("<H", raw, 4, CONTAINER_VERSION + 1)
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceError, match="container version"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)


def test_future_trace_schema_is_rejected(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    raw = bytearray(path.read_bytes())
    struct.pack_into("<H", raw, 6, TRACE_SCHEMA_VERSION + 1)
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceError, match="trace schema"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)


def test_corrupt_symbol_table_is_rejected(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    raw = bytearray(path.read_bytes())
    # Locate the trailer through the fixed tail (u64 offset + end magic),
    # then stomp a byte of its JSON with invalid UTF-8.
    (trailer_offset,) = struct.unpack_from("<Q", raw, len(raw) - 12)
    assert raw[len(raw) - 4 :] == END_MAGIC
    raw[trailer_offset + 6] = 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceError, match="trailer .*corrupt"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)


def test_corrupt_block_section_is_rejected(tmp_path):
    path = tmp_path / "run.trace.bin"
    _write_container(path)
    raw = bytearray(path.read_bytes())
    # Data starts right after the preamble + JSON header; stomping the
    # first section marker breaks the block index walk.
    (header_len,) = struct.unpack_from("<I", raw, 8)
    data_start = 12 + header_len
    raw[data_start] = 0x7F
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceError, match="corrupt section"):
        TraceBinReader(path, TRACE_SCHEMA_VERSION)
