"""TraceRecorder unit behaviour: emission, metrics, the disabled guard."""

from __future__ import annotations

from repro.obs.records import GossipSend, HeadChanged, MetricsSample
from repro.obs.recorder import TraceRecorder


def test_recorder_starts_disabled_and_empty():
    recorder = TraceRecorder()
    assert recorder.enabled is False
    assert recorder.events == []
    # Disabled snapshotting is a no-op returning None (the snapshotter
    # process runs unconditionally; the guard lives in the recorder).
    assert recorder.snapshot_metrics(1.0) is None
    assert recorder.events == []


def test_emits_append_records_and_feed_metrics():
    recorder = TraceRecorder()
    recorder.enabled = True
    recorder.gossip_send(
        time=1.0,
        kind="NewBlock",
        sender="a",
        recipient="b",
        sender_region="WE",
        recipient_region="NA",
        size=1000,
        latency=0.08,
        block_hash="0xaa",
    )
    recorder.gossip_send(
        time=1.1,
        kind="Transactions",
        sender="b",
        recipient="a",
        sender_region="NA",
        recipient_region="WE",
        size=300,
        latency=0.04,
        tx_count=3,
    )
    assert [type(r) for r in recorder.events] == [GossipSend, GossipSend]
    recorder.sync_metrics()  # metrics are batch-drained, not per-record
    snap = recorder.registry.snapshot()
    assert snap["gossip_messages_total{kind=NewBlock}"] == 1.0
    assert snap["gossip_bytes_total{kind=NewBlock}"] == 1000.0
    assert snap["gossip_latency_seconds_count{kind=NewBlock}"] == 1.0
    assert snap["gossip_messages_total{kind=Transactions}"] == 1.0


def test_head_changed_tracks_reorgs_and_height():
    recorder = TraceRecorder()
    recorder.enabled = True
    recorder.head_changed(
        time=1.0, node="n", old_head="0x00", new_head="0xaa", height=1,
        reorg_depth=0,
    )
    recorder.head_changed(
        time=2.0, node="n", old_head="0xaa", new_head="0xbb", height=2,
        reorg_depth=1,
    )
    assert [type(r) for r in recorder.events] == [HeadChanged, HeadChanged]
    recorder.sync_metrics()
    snap = recorder.registry.snapshot()
    assert snap["head_changes_total"] == 2.0
    assert snap["reorgs_total"] == 1.0
    assert snap["reorg_depth_blocks_count"] == 1.0
    assert snap["node_head_height{node=n}"] == 2.0


def test_snapshot_metrics_captures_registry_state():
    recorder = TraceRecorder()
    recorder.enabled = True
    recorder.fetch_started(time=1.0, node="n", block_hash="0xaa", peer_id=3)
    sample = recorder.snapshot_metrics(4.0)
    assert isinstance(sample, MetricsSample)
    assert sample.time == 4.0
    assert sample.metrics["block_fetches_total"] == 1.0
    # The sample is recorded columnar like everything else; the trailing
    # record materializes equal (not identical) to the returned object.
    assert recorder.events[-1] == sample
