"""Trace record schema: type-tagged JSON round-trip."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs.records import (
    TRACE_RECORD_TYPES,
    BlockReceived,
    BlockSealed,
    GossipSend,
    HeadChanged,
    LotteryWin,
    MetricsSample,
    trace_from_json,
    trace_to_json,
)

_SAMPLES = [
    LotteryWin(time=1.0, pool="Ethermine", block_hashes=("0xaa", "0xbb")),
    BlockSealed(
        time=1.0,
        block_hash="0xaa",
        parent_hash="0x00",
        height=1,
        pool="Ethermine",
        variant=0,
        variants=2,
        tx_count=120,
    ),
    GossipSend(
        time=1.5,
        kind="NewBlock",
        sender="gw-Ethermine-0",
        recipient="reg-0001",
        sender_region="WE",
        recipient_region="NA",
        size=41_234,
        latency=0.085,
        block_hash="0xaa",
    ),
    BlockReceived(
        time=1.6, node="reg-0001", block_hash="0xaa", height=1, peer_id=7,
        direct=True,
    ),
    HeadChanged(
        time=1.7, node="reg-0001", old_head="0x00", new_head="0xaa",
        height=1, reorg_depth=0,
    ),
    MetricsSample(time=4.0, metrics={"blocks_imported_total": 3.0}),
]


@pytest.mark.parametrize("record", _SAMPLES, ids=lambda r: type(r).__name__)
def test_round_trip_preserves_record(record):
    payload = trace_to_json(record)
    assert payload["_type"] == type(record).__name__
    assert trace_from_json(payload) == record


def test_tuple_fields_come_back_as_tuples():
    # JSON arrays load as lists; the deserialiser must restore tuples so
    # loaded records compare equal to freshly emitted ones.
    import json

    record = _SAMPLES[0]
    payload = json.loads(json.dumps(trace_to_json(record)))
    loaded = trace_from_json(payload)
    assert loaded == record
    assert isinstance(loaded.block_hashes, tuple)


def test_missing_and_unknown_type_tags_raise():
    with pytest.raises(TraceError):
        trace_from_json({"time": 1.0})
    with pytest.raises(TraceError):
        trace_from_json({"_type": "NotARecord", "time": 1.0})


def test_registry_covers_every_record_type():
    assert len(TRACE_RECORD_TYPES) == 17
    for name, cls in TRACE_RECORD_TYPES.items():
        assert cls.__name__ == name
