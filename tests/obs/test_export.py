"""Trace JSONL persistence: atomic save, tolerant load, failure modes."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.obs.export import TRACE_SCHEMA_VERSION, Trace
from repro.obs.records import BlockReceived, BlockSealed, MetricsSample


def _sample_trace() -> Trace:
    return Trace(
        seed=55,
        preset="small",
        canonical_hashes=("0x00", "0xaa"),
        head_hash="0xaa",
        records=[
            BlockSealed(
                time=1.0,
                block_hash="0xaa",
                parent_hash="0x00",
                height=1,
                pool="Ethermine",
                variant=0,
                variants=1,
                tx_count=3,
            ),
            BlockReceived(
                time=1.1, node="reg-0001", block_hash="0xaa", height=1,
                peer_id=4, direct=True,
            ),
            MetricsSample(time=4.0, metrics={"blocks_imported_total": 1.0}),
        ],
    )


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    original = _sample_trace()
    original.save(path)
    loaded = Trace.load(path)
    assert loaded.seed == original.seed
    assert loaded.preset == original.preset
    assert loaded.canonical_hashes == original.canonical_hashes
    assert loaded.head_hash == original.head_hash
    assert loaded.records == original.records
    # No stray tmp files left behind.
    assert list(tmp_path.iterdir()) == [path]


def test_header_line_is_first_and_typed(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    _sample_trace().save(path)
    first = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
    assert first["_type"] == "TraceHeader"
    assert first["schema"] == TRACE_SCHEMA_VERSION
    assert first["seed"] == 55


def test_load_failure_modes(tmp_path):
    with pytest.raises(TraceError, match="no trace file"):
        Trace.load(tmp_path / "missing.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(TraceError, match="empty"):
        Trace.load(empty)
    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text('{"_type": "BlockSealed"}\n', encoding="utf-8")
    with pytest.raises(TraceError, match="header"):
        Trace.load(headerless)
    future = tmp_path / "future.jsonl"
    future.write_text(
        json.dumps(
            {"_type": "TraceHeader", "schema": TRACE_SCHEMA_VERSION + 1}
        )
        + "\n",
        encoding="utf-8",
    )
    with pytest.raises(TraceError, match="schema"):
        Trace.load(future)
    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text(
        json.dumps({"_type": "TraceHeader", "schema": 1}) + "\nnot json\n",
        encoding="utf-8",
    )
    with pytest.raises(TraceError, match=":2"):
        Trace.load(garbled)
