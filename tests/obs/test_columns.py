"""Columnar staging: per-kind stores, interning, seal semantics.

The fidelity fixture below holds one record of **every** kind; the
coverage test pins that, so adding a record kind without extending the
fixture (and thereby the pack → seal → materialize round trip) fails
loudly.
"""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs.columns import (
    BLOCK_ROWS,
    KIND_ORDER,
    InternTable,
    KindBlock,
    TraceColumns,
    materialize_block,
)
from repro.obs.records import (
    BlockImported,
    BlockReceived,
    BlockSealed,
    DeliveryDropped,
    FetchStarted,
    GossipSend,
    HeadChanged,
    LinkFault,
    LotteryWin,
    MetricsSample,
    NodeOffline,
    NodeOnline,
    NodeRegistered,
    PartitionHealed,
    PartitionStarted,
    TraceRecord,
    TxFirstSeen,
    ValidationStarted,
)

#: A 256-bit wire identifier — far beyond exact double range, so any
#: path that stored it as f64 instead of interning would corrupt it.
_WIRE_ID = (1 << 255) + 12345


def sample_records() -> tuple[TraceRecord, ...]:
    """One record per kind, times strictly increasing across kinds."""
    return (
        NodeRegistered(time=0.5, node="reg-0001", node_id=_WIRE_ID, region="EU"),
        LotteryWin(time=1.0, pool="Ethermine", block_hashes=("0xaa", "0xbb")),
        BlockSealed(
            time=1.5, block_hash="0xaa", parent_hash="0x00", height=1,
            pool="Ethermine", variant=0, variants=2, tx_count=3,
        ),
        GossipSend(
            time=2.0, kind="NewBlock", sender="reg-0001", recipient="reg-0002",
            sender_region="EU", recipient_region="US", size=412,
            latency=0.081, block_hash="0xaa", tx_count=0,
        ),
        DeliveryDropped(
            time=2.2, kind="NewBlock", sender="reg-0001",
            recipient="reg-0003", block_hash="0xaa",
        ),
        BlockReceived(
            time=2.4, node="reg-0002", block_hash="0xaa", height=1,
            peer_id=_WIRE_ID, direct=True,
        ),
        FetchStarted(
            time=2.5, node="reg-0003", block_hash="0xaa", peer_id=_WIRE_ID
        ),
        ValidationStarted(time=2.6, node="reg-0002", block_hash="0xaa", height=1),
        BlockImported(
            time=2.8, node="reg-0002", block_hash="0xaa", height=1,
            head_changed=True,
        ),
        HeadChanged(
            time=2.9, node="reg-0002", old_head="0x00", new_head="0xaa",
            height=1, reorg_depth=0,
        ),
        TxFirstSeen(time=3.0, node="reg-0002", tx_hash="0xt1", peer_id=-1),
        NodeOffline(time=3.5, node="reg-0003", crash=False),
        NodeOnline(time=4.0, node="reg-0003"),
        PartitionStarted(time=4.5, regions=("EU", "US"), duration=30.0),
        PartitionHealed(time=5.0, regions=("EU", "US")),
        LinkFault(
            time=5.5, kind="Transactions", fault="jitter", sender="reg-0001",
            recipient="reg-0002", extra_delay=0.25,
        ),
        MetricsSample(time=6.0, metrics={"a": 1.0, "b": 2.5}),
    )


def test_sample_fixture_covers_every_record_kind():
    assert {type(r) for r in sample_records()} == set(KIND_ORDER)


def test_every_kind_round_trips_through_staging():
    columns = TraceColumns()
    originals = sample_records()
    for record in originals:
        columns.append_record(record)
    # Unsealed staging is readable as a block view; records come back as
    # the exact dataclasses (merge order = time order here).
    assert tuple(columns.iter_records()) == originals
    assert columns.record_count() == len(originals)


def test_every_kind_round_trips_through_sealed_blocks():
    columns = TraceColumns()
    originals = sample_records()
    for record in originals:
        columns.append_record(record)
    columns.seal_all()
    for store in columns.stores.values():
        assert store.staged_rows == 0
    assert tuple(columns.iter_records()) == originals


def test_wire_ids_survive_interning_exactly():
    columns = TraceColumns()
    record = BlockReceived(
        time=1.0, node="n", block_hash="0xaa", height=1,
        peer_id=_WIRE_ID, direct=False,
    )
    columns.append_record(record)
    (back,) = tuple(columns.iter_records())
    assert back.peer_id == _WIRE_ID  # not round-tripped through f64


def test_seal_clears_staging_in_place_keeping_bindings():
    columns = TraceColumns()
    store = columns.stores[GossipSend]
    rows = store.rows  # an emit site binds this list once, up front
    columns.append_record(sample_records()[3])
    assert store.staged_rows == 1
    columns.seal_kind(GossipSend)
    assert store.rows is rows  # cleared in place, never reallocated
    assert store.staged_rows == 0 and len(rows) == 0
    assert store.blocks[0].count == 1


def test_staging_block_is_a_view_not_a_drain():
    columns = TraceColumns()
    columns.append_record(sample_records()[3])
    store = columns.stores[GossipSend]
    block = store.staging_block()
    assert block is not None and block.count == 1
    assert store.staged_rows == 1  # unchanged


def test_append_record_seals_at_block_rows():
    columns = TraceColumns()
    record = NodeOnline(time=1.0, node="n")
    for _ in range(BLOCK_ROWS):
        columns.append_record(record)
    store = columns.stores[NodeOnline]
    assert len(store.blocks) == 1
    assert store.blocks[0].count == BLOCK_ROWS
    assert store.staged_rows == 0


def test_intern_table_interns_each_value_once():
    table = InternTable()
    assert table["a"] == 0
    assert table["b"] == 1
    assert table["a"] == 0  # stable on re-query
    assert table.values_list == ["a", "b"]
    assert table.get("c") is None  # lookups never intern


def test_sink_streaming_forbids_in_memory_reads():
    columns = TraceColumns()

    class Sink:
        def __init__(self) -> None:
            self.blocks: list[KindBlock] = []

        def write_block(self, block: KindBlock) -> None:
            self.blocks.append(block)

    sink = Sink()
    columns.sink = sink
    columns.append_record(NodeOnline(time=1.0, node="n"))
    columns.seal_kind(NodeOnline)
    assert len(sink.blocks) == 1  # handed off, not retained
    assert columns.stores[NodeOnline].blocks == []
    with pytest.raises(TraceError, match="streamed to a sink"):
        list(columns.iter_kind_blocks(NodeOnline))


def test_materialize_rejects_out_of_range_symbol_indices():
    block = KindBlock(
        NodeOnline, 1, {"time": [1.0], "node": [99.0]}  # symbol 99 unknown
    )
    with pytest.raises(TraceError, match="corrupted NodeOnline block"):
        list(materialize_block(block, symbols=["only-one"], ids=[]))


def test_unknown_record_kind_is_rejected():
    columns = TraceColumns()
    with pytest.raises(TraceError, match="unknown trace record kind"):
        columns.append_record(object())  # type: ignore[arg-type]
