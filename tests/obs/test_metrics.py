"""Labeled metrics primitives and the registry."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_key,
)


def test_series_key_is_canonical():
    assert series_key("events_total") == "events_total"
    assert (
        series_key("events_total", {"kind": "block", "dir": "in"})
        == "events_total{dir=in,kind=block}"
    )
    # Label insertion order never leaks into the key.
    assert series_key("m", {"b": "2", "a": "1"}) == series_key(
        "m", {"a": "1", "b": "2"}
    )


def test_counter_accumulates_per_label_set():
    counter = Counter("gossip_messages_total")
    counter.inc(labels={"kind": "NewBlock"})
    counter.inc(2.0, labels={"kind": "NewBlock"})
    counter.inc(labels={"kind": "Transactions"})
    assert counter.value({"kind": "NewBlock"}) == 3.0
    assert counter.value({"kind": "Transactions"}) == 1.0
    assert counter.value({"kind": "Never"}) == 0.0
    with pytest.raises(TraceError):
        counter.inc(-1.0)


def test_gauge_moves_both_ways():
    gauge = Gauge("head_height")
    gauge.set(5, labels={"node": "reg-0001"})
    gauge.set(3, labels={"node": "reg-0001"})
    assert gauge.value({"node": "reg-0001"}) == 3.0


def test_histogram_buckets_are_cumulative_with_inf():
    hist = Histogram("latency", edges=(0.1, 0.5, 1.0))
    for value in (0.05, 0.05, 0.3, 2.0):
        hist.observe(value, labels={"kind": "block"})
    series = hist.collect()
    assert series["latency_bucket{kind=block,le=0.1}"] == 2.0
    assert series["latency_bucket{kind=block,le=0.5}"] == 3.0
    assert series["latency_bucket{kind=block,le=1}"] == 3.0
    assert series["latency_bucket{kind=block,le=+Inf}"] == 4.0
    assert series["latency_count{kind=block}"] == 4.0
    assert series["latency_sum{kind=block}"] == pytest.approx(2.4)
    assert hist.count({"kind": "block"}) == 4


def test_histogram_rejects_bad_edges():
    with pytest.raises(TraceError):
        Histogram("h", edges=())
    with pytest.raises(TraceError):
        Histogram("h", edges=(1.0, 0.5))
    with pytest.raises(TraceError):
        Histogram("h", edges=(1.0, 1.0))


def test_registry_is_idempotent_by_name_and_kind():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total")
    assert registry.counter("jobs_total") is counter
    with pytest.raises(TraceError):
        registry.gauge("jobs_total")
    hist = registry.histogram("lat", edges=(0.1, 1.0))
    assert registry.histogram("lat", edges=(0.1, 1.0)) is hist
    with pytest.raises(TraceError):
        registry.histogram("lat", edges=(0.2, 1.0))


def test_snapshot_is_flat_and_sorted():
    registry = MetricsRegistry()
    registry.counter("b_total").inc()
    registry.gauge("a_gauge").set(7)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["a_gauge"] == 7.0
    assert snap["b_total"] == 1.0
