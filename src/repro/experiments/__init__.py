"""Experiment registry, campaign presets, the artifact runner and the
parallel campaign fleet."""

from repro.experiments.cache import campaign_dataset, clear_memory_cache
from repro.experiments.fleet import (
    CampaignJob,
    CampaignPool,
    FleetMetrics,
    FleetResult,
    JobOutcome,
    run_seed_sweep,
    seed_sweep_jobs,
)
from repro.experiments.presets import (
    SCALED_NODE_CONFIG,
    large_campaign,
    preset,
    small_campaign,
    standard_campaign,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    all_experiment_ids,
    get_experiment,
)
from repro.experiments.report import render_report
from repro.experiments.result import ExperimentResult, ensure_renderable
from repro.experiments.runner import run_experiment

__all__ = [
    "EXPERIMENTS",
    "CampaignJob",
    "CampaignPool",
    "Experiment",
    "ExperimentResult",
    "FleetMetrics",
    "FleetResult",
    "JobOutcome",
    "SCALED_NODE_CONFIG",
    "all_experiment_ids",
    "campaign_dataset",
    "clear_memory_cache",
    "ensure_renderable",
    "get_experiment",
    "large_campaign",
    "preset",
    "render_report",
    "run_experiment",
    "run_seed_sweep",
    "seed_sweep_jobs",
    "small_campaign",
    "standard_campaign",
]
