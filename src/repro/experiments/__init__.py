"""Experiment registry, campaign presets and the artifact runner."""

from repro.experiments.cache import campaign_dataset, clear_memory_cache
from repro.experiments.presets import (
    SCALED_NODE_CONFIG,
    large_campaign,
    preset,
    small_campaign,
    standard_campaign,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    all_experiment_ids,
    get_experiment,
)
from repro.experiments.report import render_report
from repro.experiments.runner import run_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "SCALED_NODE_CONFIG",
    "all_experiment_ids",
    "campaign_dataset",
    "clear_memory_cache",
    "get_experiment",
    "large_campaign",
    "preset",
    "render_report",
    "run_experiment",
    "small_campaign",
    "standard_campaign",
]
