"""Experiment registry: one entry per paper table/figure.

Each :class:`Experiment` couples a paper artifact (``fig1`` ... ``fig7``,
``table2``, ``table3``, headline stats) with the analysis that reproduces
it and the values the paper reports, so the benchmark harness can print
paper-vs-measured rows mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import (
    block_propagation_delays,
    fairness_audit,
    censorship_windows,
    commit_times,
    decentralization_metrics,
    empty_block_analysis,
    first_reception_shares,
    fork_analysis,
    one_miner_forks,
    pool_first_receptions,
    reception_redundancy,
    reordering_analysis,
    sequence_analysis,
    study_summary,
    transaction_propagation_delays,
    uncle_rule_savings,
)
from repro.errors import ConfigurationError
from repro.measurement.dataset import MeasurementDataset


@dataclass(frozen=True)
class Experiment:
    """A runnable paper artifact.

    Attributes:
        experiment_id: Paper artifact id (``fig1``, ``table2``, ...).
        title: Human-readable description.
        paper_values: The numbers the paper reports, for side-by-side
            printing (free-form strings; the shapes are what must match).
        run: Analysis entry point; returns a result with ``render()``.
    """

    experiment_id: str
    title: str
    paper_values: dict[str, str]
    run: Callable[[MeasurementDataset], object]


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "fig1",
        "Block propagation delay histogram",
        {
            "median": "74 ms",
            "mean": "109 ms",
            "p95": "211 ms",
            "p99": "317 ms",
        },
        block_propagation_delays,
    ),
    Experiment(
        "table2",
        "Redundant block receptions at a default-peer node",
        {
            "announcements avg/med": "2.585 / 2",
            "whole blocks avg/med": "7.043 / 7",
            "combined avg/med": "9.11 / 9",
            "combined top 1%": "15",
            "gossip optimum": "ln(15000) ≈ 9.62",
        },
        reception_redundancy,
    ),
    Experiment(
        "fig2",
        "First block observations per vantage",
        {
            "EA": "≈ 40%",
            "NA": "≈ 4x less than EA",
            "ordering": "EA > CE ≈ WE > NA",
        },
        first_reception_shares,
    ),
    Experiment(
        "fig3",
        "First observations per mining pool and vantage",
        {
            "EA pools": "Sparkpool/F2pool blocks surface in EA",
            "EU pools": "Ethermine/Nanopool blocks surface in CE/WE",
            "gateways": "unevenly distributed",
        },
        pool_first_receptions,
    ),
    Experiment(
        "fig4",
        "Transaction inclusion and commit times",
        {
            "median 12-conf": "189 s",
            "2017 baseline": "200 s",
            "depths": "3 / 12 / 15 / 36 confirmations",
        },
        commit_times,
    ),
    Experiment(
        "fig5",
        "Commit delay by reception ordering",
        {
            "out-of-order share": "11.54%",
            "in-order p50/p90": "189 s / 292 s",
            "out-of-order p50/p90": "192 s / 325 s",
        },
        reordering_analysis,
    ),
    Experiment(
        "fig6",
        "Empty blocks per mining pool",
        {
            "empty share": "1.45% (2,921 / 201,086)",
            "Zhizhu": "> 25% empty",
            "Nanopool/Miningpoolhub1": "0 empty",
        },
        empty_block_analysis,
    ),
    Experiment(
        "table3",
        "Fork types and lengths",
        {
            "length 1": "15,171 (15,100 recognized)",
            "length 2": "404 (0 recognized)",
            "length 3": "10 (0 recognized)",
            "main/uncle/unrecognized": "92.81% / 6.97% / 0.22%",
        },
        fork_analysis,
    ),
    Experiment(
        "oneminer",
        "One-miner forks (same miner, same height)",
        {
            "pairs/triples/4/7": "1,750 / 25 / 1 / 1",
            "rewarded as uncles": "98%",
            "identical tx set": "56%",
            "share of forks": "> 11%",
        },
        one_miner_forks,
    ),
    Experiment(
        "fig7",
        "Consecutive main-chain blocks per pool",
        {
            "Ethermine": "four 8-block runs",
            "Sparkpool": "two 9-block runs",
            "theory": "0.259^8 × 201,086 ≈ 4 per month",
        },
        sequence_analysis,
    ),
    Experiment(
        "summary",
        "Campaign headline statistics",
        {
            "blocks": "216,656 (incl. forks)",
            "transactions": "21,960,051 (94% committed)",
            "inter-block": "13.3 s",
        },
        study_summary,
    ),
    Experiment(
        "txprop",
        "Transaction propagation (claim: geography-neutral)",
        {
            "claim": "tx delays small and unaffected by vantage location "
            "(§III-A1/B1, figure omitted in the paper)",
        },
        transaction_propagation_delays,
    ),
    Experiment(
        "censorship",
        "Temporary censorship windows (§III-D)",
        {
            "claim": "pools regularly get > 2-minute windows; "
            "3-minute events on record",
        },
        censorship_windows,
    ),
    Experiment(
        "decentralization",
        "Mining concentration (§IV context)",
        {
            "Luu et al.": "≈80% of power in fewer than ten pools",
            "paper §I": "top four pools ≈70% of capacity",
        },
        decentralization_metrics,
    ),
    Experiment(
        "fairness",
        "Reward fairness audit (§III-C5 economics)",
        {
            "claim": "one-miner forks convert redundant blocks into extra "
            "income; honest miners earn ≈2 ETH/block",
        },
        fairness_audit,
    ),
    Experiment(
        "unclerule",
        "§V uncle-rule proposal (what it would save)",
        {
            "paper": "≈1% of platform work recoverable; rule deters "
            "one-miner forks in >56% of cases",
        },
        uncle_rule_savings,
    ),
)

_BY_ID = {experiment.experiment_id: experiment for experiment in EXPERIMENTS}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id.

    Raises:
        ConfigurationError: for unknown ids.
    """
    experiment = _BY_ID.get(experiment_id)
    if experiment is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_BY_ID)}"
        )
    return experiment


def all_experiment_ids() -> list[str]:
    return [experiment.experiment_id for experiment in EXPERIMENTS]
