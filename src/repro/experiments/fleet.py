"""Parallel campaign fleet: multiprocess seed sweeps and ablation grids.

The paper's workloads that matter statistically — multi-seed confidence
intervals, ablation benches, pool-share sweeps — are grids of *independent*
campaigns.  Run sequentially they scale linearly with variant count while
every core but one idles; the fleet fans them out over a pool of
long-lived worker processes instead.

Design (see DESIGN.md §"Parallel campaign fleet"):

* **Job specs** — a :class:`CampaignJob` names either a preset
  (``preset_name`` + ``seed``) or an arbitrary
  :class:`~repro.measurement.campaign.CampaignConfig` ablation variant
  (``config`` + ``label`` + ``seed``).
* **Warm workers** — workers start once per sweep (``fork``-preferred,
  inheriting parent state bit-exactly) and pull *batches* of job indices
  over a pipe, so one process spawn and one interpreter warm-up amortize
  over many seeds.  Completion is event-driven: the parent blocks on the
  workers' result pipes and process sentinels, never on a poll timeout.
* **Determinism** — a worker runs exactly the code a sequential
  ``Campaign(config).run()`` would, and ships its dataset back through the
  existing JSONL serialization, so per-job datasets are bit-identical to
  sequential execution for the same seeds.
* **Cache interplay** — with ``use_disk`` the workers write *straight into*
  the shared disk cache (atomically, tmp + ``os.replace``); jobs already on
  disk are served by the parent without dispatching a batch at all, and a
  ``.meta.json`` sibling persists each run's event counts so cache hits
  still report real throughput.  Duplicate ``(config, seed)`` jobs in one
  sweep are deduplicated: one runs, the rest adopt its outcome.
* **Fault tolerance** — a job that raises is retried ``retries`` times; a
  worker that *dies* (OOM kill, segfault) is respawned and its in-flight
  batch requeued, charging an attempt only to the job that was actually
  running.  A job that keeps failing becomes a per-job failure in the
  :class:`FleetResult` instead of sinking the sweep.
* **Observability** — throughput counters surface as
  :class:`FleetMetrics`, rendered by
  :func:`repro.stats.format_fleet_profile`, mirroring
  :mod:`repro.sim.profile`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import re
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import FleetError
from repro.faults.plan import FaultPlan
from repro.experiments.cache import (
    DEFAULT_CACHE_DIR,
    cache_key,
    campaign_dataset,
    load_cached_dataset,
    store_dataset,
)
from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign, CampaignConfig
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.merge import merge_datasets
from repro.sim.profile import SimMetrics

_LABEL_PATTERN = re.compile(r"[A-Za-z0-9._-]+")


def config_digest(config: CampaignConfig) -> str:
    """A short stable digest of a campaign configuration.

    Embedded in ablation-job cache filenames so that reusing a label with
    a *changed* config can never serve a stale dataset.
    """
    canonical = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]


@dataclass(frozen=True)
class CampaignJob:
    """One independent campaign in a sweep.

    Exactly one of ``preset_name`` / ``config`` must be given:

    * ``CampaignJob(preset_name="standard", seed=3)`` — a named preset;
    * ``CampaignJob(config=variant, label="majority-51", seed=3)`` — an
      arbitrary ablation variant.  ``seed`` overrides the scenario seed
      embedded in ``config`` so one variant fans out over many seeds.

    Attributes:
        preset_name: Preset campaign name (``small``/``standard``/``large``).
        config: Explicit campaign configuration (ablation variants).
        seed: Campaign seed for this job.
        label: Display + cache label; required for ``config`` jobs,
            optional override for preset jobs.  Filesystem-friendly
            (letters, digits, ``._-``).
        trace: Record a ground-truth trace alongside the dataset (the
            worker streams it next to the dataset cache as a columnar
            ``<dataset stem>.trace.bin`` container).  The dataset is
            bit-identical with or without tracing, so traced and
            untraced jobs share one dataset cache entry.
    """

    preset_name: Optional[str] = None
    config: Optional[CampaignConfig] = None
    seed: int = 1
    label: Optional[str] = None
    trace: bool = False

    def __post_init__(self) -> None:
        if (self.preset_name is None) == (self.config is None):
            raise FleetError(
                "a CampaignJob needs exactly one of preset_name or config"
            )
        if self.config is not None and self.label is None:
            raise FleetError("config jobs need a label for cache/reporting")
        if self.label is not None and not _LABEL_PATTERN.fullmatch(self.label):
            raise FleetError(
                f"job label {self.label!r} is not filesystem-friendly "
                "(use letters, digits, '.', '_', '-')"
            )
        if self.preset_name is not None:
            preset(self.preset_name, self.seed)  # fail fast on unknown names

    @property
    def name(self) -> str:
        """Human-readable job name (label, falling back to the preset)."""
        label = self.label or self.preset_name
        assert label is not None
        return label

    def resolved_config(self) -> CampaignConfig:
        """The concrete campaign configuration this job runs."""
        if self.preset_name is not None:
            config = preset(self.preset_name, self.seed)
        else:
            assert self.config is not None
            config = replace(
                self.config, scenario=replace(self.config.scenario, seed=self.seed)
            )
        if self.trace and not config.scenario.trace:
            config = replace(config, scenario=replace(config.scenario, trace=True))
        return config

    def cache_filename(self) -> str:
        """Disk-cache filename; preset jobs share :func:`cache_key`'s.

        Deliberately independent of :attr:`trace` — a traced run's
        dataset is bit-identical to an untraced one's, so both share the
        same cache entry (only the ``.trace.bin`` sibling differs).
        """
        if self.preset_name is not None and self.label is None:
            return cache_key(self.preset_name, self.seed)
        digest = config_digest(self._untraced_config())
        return f"campaign-{self.name}-{digest}-seed{self.seed}.jsonl"

    def _untraced_config(self) -> CampaignConfig:
        """The resolved config with tracing stripped (cache identity)."""
        config = self.resolved_config()
        if config.scenario.trace:
            config = replace(config, scenario=replace(config.scenario, trace=False))
        return config

    def _cache_stem(self) -> str:
        stem = self.cache_filename()
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        return stem

    def trace_filename(self) -> str:
        """Trace-file sibling of :meth:`cache_filename`."""
        return f"{self._cache_stem()}.trace.bin"

    def meta_filename(self) -> str:
        """Run-report sibling of :meth:`cache_filename`.

        With ``use_disk`` the worker's per-run report (event counts, wall
        time, :class:`~repro.sim.profile.SimMetrics`) lands here, so a
        later sweep serving the dataset from cache can still report the
        run's real event counts instead of zero.
        """
        return f"{self._cache_stem()}.meta.json"

    def dedup_key(self) -> tuple[str, bool]:
        """Identity for in-sweep deduplication.

        Two jobs with the same key would run the same campaign and write
        the same cache file, so only one runs; the others adopt its
        outcome.  Trace is part of the key — a traced twin still has to
        run to export the ``.trace.bin`` sibling.
        """
        return (self.cache_filename(), self.trace)


@dataclass
class JobOutcome:
    """Result of one fleet job (success, cache hit, failure, or duplicate).

    Attributes:
        job: The job spec.
        dataset: The campaign dataset (``None`` on failure).
        error: Failure description after all retries (``None`` on success).
        attempts: Worker attempts consumed (0 for a pure cache hit or a
            deduplicated job).
        from_cache: Served from the disk cache without running a worker.
        deduped: Adopted the outcome of an identical job in the same
            sweep instead of running (see :meth:`CampaignJob.dedup_key`).
        events_processed: Simulator events the producing run processed
            (for cache hits: read back from the ``.meta.json`` sibling
            persisted by the run that filled the cache, 0 if unknown).
        wall_seconds: Worker-side campaign wall time.
        path: Disk-cache path holding the dataset (``None`` unless the
            fleet ran with ``use_disk``).
        sim_metrics: The producing simulator's full
            :class:`~repro.sim.profile.SimMetrics` snapshot (``None``
            when unknown) — what lets
            :func:`repro.stats.format_fleet_profile` report per-seed
            events/s rather than just job wall time.
        trace_path: Ground-truth trace file the worker exported
            (``None`` unless the job ran with ``trace=True``).
    """

    job: CampaignJob
    dataset: Optional[MeasurementDataset] = None
    error: Optional[str] = None
    attempts: int = 0
    from_cache: bool = False
    deduped: bool = False
    events_processed: int = 0
    wall_seconds: float = 0.0
    path: Optional[Path] = None
    sim_metrics: Optional[SimMetrics] = None
    trace_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return self.dataset is not None

    @property
    def events_per_second(self) -> float:
        """Producing-run simulator throughput (0.0 when unknown)."""
        if self.sim_metrics is not None:
            return self.sim_metrics.events_per_second
        if self.wall_seconds > 0:
            return self.events_processed / self.wall_seconds
        return 0.0


@dataclass(frozen=True)
class FleetMetrics:
    """Immutable sweep-level throughput counters (cf. ``SimMetrics``).

    Attributes:
        jobs_total: Jobs submitted.
        jobs_succeeded: Jobs that produced a dataset (cache hits and
            deduplicated jobs included).
        jobs_failed: Jobs that failed after all retries.
        cache_hits: Jobs served from the disk cache without a worker.
        retries: Job re-dispatches after a failed attempt.
        workers: Concurrent worker-process cap the sweep ran with.
        wall_seconds: Sweep wall-clock time in the parent.
        total_events: Simulator events actually executed by this sweep's
            workers.  Cache hits and deduplicated jobs are excluded so
            :attr:`events_per_second` states real executed throughput —
            a warm-cache sweep reports the events it ran, not the events
            it remembered.
        deduped: Jobs that adopted an identical job's outcome instead of
            running (in-sweep duplicate dedup).
        cached_events: Events behind the served cache hits (read from
            the ``.meta.json`` cache siblings; informational, excluded
            from :attr:`events_per_second`).
    """

    jobs_total: int
    jobs_succeeded: int
    jobs_failed: int
    cache_hits: int
    retries: int
    workers: int
    wall_seconds: float
    total_events: int
    deduped: int = 0
    cached_events: int = 0

    @property
    def campaigns_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.jobs_succeeded / self.wall_seconds

    @property
    def events_per_second(self) -> float:
        """Aggregate *executed* simulator throughput across the fleet."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds


@dataclass
class FleetResult:
    """Everything a sweep produced, in job-submission order."""

    outcomes: list[JobOutcome]
    metrics: FleetMetrics

    def datasets(self) -> list[MeasurementDataset]:
        """Successful datasets, in job order."""
        return [o.dataset for o in self.outcomes if o.dataset is not None]

    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_failure(self) -> None:
        """Raise :class:`FleetError` summarising any failed jobs."""
        failed = self.failures()
        if failed:
            summary = "; ".join(
                f"{o.job.name} seed {o.job.seed}: {o.error}" for o in failed
            )
            raise FleetError(f"{len(failed)} fleet job(s) failed: {summary}")

    def merged(self) -> MeasurementDataset:
        """All successful datasets merged for record-stream aggregation."""
        return merge_datasets(self.datasets(), allow_disjoint_worlds=True)


def _write_json_atomic(path: Path, payload: dict[str, object]) -> None:
    # Failure reports can be the first write into a fresh cache dir; a
    # missing directory must not escalate a job failure into a dead
    # worker with no report.
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _read_json_tolerant(path: Path) -> dict[str, object]:
    """Read a meta report, treating absence or corruption as empty."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


#: Per-job spool/cache paths: (dataset, meta report, trace).
_JobPaths = tuple[str, str, str]


def _run_one_campaign(job: CampaignJob, paths: _JobPaths) -> None:
    """Run one campaign inside a worker, reporting through the disk.

    The dataset travels through an atomic JSONL write rather than a
    pickle pipe so that it takes exactly the same serialization path as
    the cache, and a crash mid-write can never corrupt a previously
    complete file.  The meta report carries the per-job
    :class:`~repro.sim.profile.SimMetrics` snapshot (or the traceback on
    failure).  Exceptions are contained — the warm worker survives a
    failing campaign and moves on to the next batch entry — but
    ``SystemExit``/``KeyboardInterrupt`` still kill the worker after the
    report is written, preserving process-fatal semantics.
    """
    out_path, meta_path, trace_path = paths
    campaign: Optional[Campaign] = None
    try:
        started = time.perf_counter()
        campaign = Campaign(job.resolved_config())
        if job.trace and trace_path:
            # Stream trace blocks to disk as they seal, so a traced
            # mainnet-scale job costs bounded memory, not a record list.
            campaign.stream_trace_to(trace_path)
        dataset = campaign.run()
        wall = time.perf_counter() - started
        store_dataset(dataset, Path(out_path))
        if job.trace and trace_path:
            campaign.save_trace(trace_path, preset=job.name)
        metrics = campaign.metrics
        payload: dict[str, object] = {
            "ok": True,
            "events_processed": (
                metrics.events_processed if metrics is not None else 0
            ),
            "wall_seconds": wall,
        }
        if metrics is not None:
            payload["sim_metrics"] = dataclasses.asdict(metrics)
        _write_json_atomic(Path(meta_path), payload)
    except BaseException as error:
        if campaign is not None:
            campaign.abort_trace_stream()
        _write_json_atomic(
            Path(meta_path),
            {"ok": False, "error": traceback.format_exc(limit=8)},
        )
        if not isinstance(error, Exception):
            raise  # process-fatal (SystemExit, KeyboardInterrupt)


def _pool_worker(
    jobs: Sequence[CampaignJob],
    paths: Sequence[_JobPaths],
    tasks: connection.Connection,
    results: connection.Connection,
) -> None:
    """Warm-worker main loop: pull index batches until the ``None`` pill.

    One completion message per *job* (not per batch) flows back over
    ``results`` after the job's meta report is on disk, so the parent
    can harvest, retry, and account batches at job granularity — and so
    a worker death loses at most the one job that was actually running.
    """
    try:
        while True:
            batch = tasks.recv()
            if batch is None:
                return
            for index in batch:
                _run_one_campaign(jobs[index], paths[index])
                results.send(index)
    except (EOFError, KeyboardInterrupt):
        return  # parent went away / interactive interrupt: quiet exit


def _parse_sim_metrics(payload: object) -> Optional[SimMetrics]:
    """Rebuild a worker's :class:`SimMetrics` from its meta JSON."""
    if not isinstance(payload, dict):
        return None
    try:
        return SimMetrics(
            events_processed=int(payload["events_processed"]),
            simulated_seconds=float(payload["simulated_seconds"]),
            run_wall_seconds=float(payload["run_wall_seconds"]),
            events_per_second=float(payload["events_per_second"]),
            profiled=bool(payload["profiled"]),
            event_counts={
                str(k): int(v)
                for k, v in dict(payload.get("event_counts", {})).items()
            },
            event_seconds={
                str(k): float(v)
                for k, v in dict(payload.get("event_seconds", {})).items()
            },
            queue_high_water=(
                int(payload["queue_high_water"])
                if payload.get("queue_high_water") is not None
                else None
            ),
            queue_backend=str(payload.get("queue_backend", "heap")),
        )
    except (KeyError, TypeError, ValueError):
        return None


def _auto_batch_size(pending: int, workers: int) -> int:
    """Four dispatch waves per worker — the classic ``Pool`` chunking
    trade-off between amortizing dispatch cost and load balancing."""
    return max(1, -(-pending // (workers * 4)))


@dataclass
class _Worker:
    """One live warm worker and its in-flight batch bookkeeping."""

    process: multiprocessing.process.BaseProcess
    tasks: connection.Connection  # parent -> worker: batches / None pill
    results: connection.Connection  # worker -> parent: completed indices
    inflight: deque[int] = field(default_factory=deque)


class CampaignPool:
    """Fans independent :class:`CampaignJob`\\ s over warm worker processes.

    Workers are started once per :meth:`run` and stay alive for the whole
    sweep, pulling job-index batches over a pipe — one process spawn and
    one interpreter warm-up amortized over many seeds.  The parent
    multiplexes on result pipes and process sentinels (event-driven, no
    poll timeout), so completions and worker deaths are noticed the
    moment they happen.

    Args:
        jobs: Concurrent worker cap; defaults to ``os.cpu_count()``.
        cache_dir: Disk-cache directory (default ``.repro-cache``).
        use_disk: Serve cached jobs from / persist results to the disk
            cache (workers write straight into it).
        retries: Job re-dispatches after a failed attempt.
        progress: Callback for one-line progress reports (e.g. ``print``);
            ``None`` keeps the sweep silent.
        start_method: ``multiprocessing`` start method; defaults to
            ``fork`` where available (bit-exact inheritance of the parent
            interpreter state), else the platform default.
        batch_size: Jobs per dispatched batch; ``None`` auto-sizes to
            about four dispatch waves per worker.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Path] = None,
        use_disk: bool = False,
        retries: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        start_method: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        workers = jobs if jobs is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise FleetError("a fleet needs at least one worker")
        if retries < 0:
            raise FleetError("retries must be >= 0")
        if batch_size is not None and batch_size < 1:
            raise FleetError("batch_size must be >= 1 (or None for auto)")
        self.workers = workers
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        )
        self.use_disk = use_disk
        self.retries = retries
        self.progress = progress
        self.batch_size = batch_size
        if start_method is None and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            start_method = "fork"
        self._context = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------ #
    # Sweep execution
    # ------------------------------------------------------------------ #

    def run(self, jobs: Sequence[CampaignJob]) -> FleetResult:
        """Run every job; never raises for per-job failures."""
        jobs = list(jobs)
        if not jobs:
            raise FleetError("no jobs to run")
        if not self.use_disk and any(job.trace for job in jobs):
            raise FleetError(
                "traced jobs need use_disk=True: trace files live next to "
                "the dataset cache, and the in-memory spool is deleted when "
                "the sweep ends"
            )
        started = time.perf_counter()
        outcomes = [JobOutcome(job=job) for job in jobs]
        state = _SweepState(total=len(jobs))

        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as spool_dir:
            spool = Path(spool_dir)
            paths = [
                self._job_paths(index, job, spool)
                for index, job in enumerate(jobs)
            ]
            # In-sweep dedup: identical (config, seed) jobs would race on
            # one cache file and waste a worker each; only the first runs.
            primary_for: dict[tuple[str, bool], int] = {}
            duplicates: dict[int, int] = {}  # duplicate index -> primary
            pending: deque[int] = deque()
            for index, job in enumerate(jobs):
                key = job.dedup_key()
                primary = primary_for.get(key)
                if primary is not None:
                    duplicates[index] = primary
                    state.deduped += 1
                    continue
                primary_for[key] = index
                if self._serve_from_cache(outcomes[index]):
                    state.cache_hits += 1
                    state.done += 1
                    self._report(state, started)
                else:
                    pending.append(index)

            if pending:
                self._run_warm_pool(
                    jobs, paths, pending, outcomes, state, started
                )

            for index, primary in duplicates.items():
                self._adopt_duplicate(outcomes[index], outcomes[primary])
                state.done += 1
                self._report(state, started)

        metrics = FleetMetrics(
            jobs_total=len(jobs),
            jobs_succeeded=sum(1 for o in outcomes if o.ok),
            jobs_failed=sum(1 for o in outcomes if not o.ok),
            cache_hits=state.cache_hits,
            retries=state.retries,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            total_events=sum(
                o.events_processed
                for o in outcomes
                if not o.from_cache and not o.deduped
            ),
            deduped=state.deduped,
            cached_events=sum(
                o.events_processed
                for o in outcomes
                if o.from_cache and not o.deduped
            ),
        )
        return FleetResult(outcomes=outcomes, metrics=metrics)

    # ------------------------------------------------------------------ #
    # Warm worker pool
    # ------------------------------------------------------------------ #

    def _run_warm_pool(
        self,
        jobs: list[CampaignJob],
        paths: list[_JobPaths],
        pending: deque[int],
        outcomes: list[JobOutcome],
        state: "_SweepState",
        started: float,
    ) -> None:
        """Drive the sweep's worker pool until every pending job resolves."""
        batch_size = self.batch_size or _auto_batch_size(
            len(pending), min(self.workers, len(pending))
        )
        workers: list[_Worker] = []
        try:
            while pending or any(w.inflight for w in workers):
                self._top_up(workers, len(pending), batch_size, jobs, paths)
                for worker in workers:
                    if not worker.inflight and pending:
                        self._dispatch(worker, pending, batch_size, paths)
                if not pending and not any(w.inflight for w in workers):
                    break
                # Event-driven: wake on any completion message or worker
                # death — no poll timeout (connection.wait multiplexes
                # result pipes and process sentinels in one syscall).
                connection.wait(
                    [w.results for w in workers]
                    + [w.process.sentinel for w in workers]
                )
                for worker in list(workers):
                    self._absorb(worker, paths, pending, outcomes, state, started)
                    if not worker.process.is_alive():
                        # Completions can land in the pipe right before
                        # death; drain again now that liveness is settled,
                        # then requeue whatever the corpse still held.
                        self._absorb(
                            worker, paths, pending, outcomes, state, started
                        )
                        self._reap(
                            worker, paths, pending, outcomes, state, started
                        )
                        workers.remove(worker)
        finally:
            self._shutdown(workers)

    def _top_up(
        self,
        workers: list[_Worker],
        pending: int,
        batch_size: int,
        jobs: list[CampaignJob],
        paths: list[_JobPaths],
    ) -> None:
        """Keep exactly as many live workers as undispatched batches need."""
        busy = sum(1 for w in workers if w.inflight)
        batches_waiting = -(-pending // batch_size) if pending else 0
        target = min(self.workers, busy + batches_waiting)
        while len(workers) < target:
            workers.append(self._spawn_worker(jobs, paths))

    def _spawn_worker(
        self, jobs: list[CampaignJob], paths: list[_JobPaths]
    ) -> _Worker:
        task_recv, task_send = self._context.Pipe(duplex=False)
        result_recv, result_send = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_pool_worker,
            args=(jobs, paths, task_recv, result_send),
            name="fleet-worker",
        )
        process.start()
        # Close the parent's copies of the worker-side pipe ends so EOF
        # propagates when the worker dies.
        task_recv.close()
        result_send.close()
        return _Worker(process=process, tasks=task_send, results=result_recv)

    def _dispatch(
        self,
        worker: _Worker,
        pending: deque[int],
        batch_size: int,
        paths: list[_JobPaths],
    ) -> None:
        batch = [pending.popleft() for _ in range(min(batch_size, len(pending)))]
        for index in batch:
            # Clear a previous attempt's report so a stale meta can never
            # masquerade as this attempt's result.
            Path(paths[index][1]).unlink(missing_ok=True)
        try:
            worker.tasks.send(batch)
        except (OSError, ValueError):
            # Worker already dead: put the batch back untouched (no
            # attempt consumed); the reap path collects the corpse.
            pending.extendleft(reversed(batch))
            return
        worker.inflight.extend(batch)

    def _absorb(
        self,
        worker: _Worker,
        paths: list[_JobPaths],
        pending: deque[int],
        outcomes: list[JobOutcome],
        state: "_SweepState",
        started: float,
    ) -> None:
        """Harvest every completion message the worker has sent so far."""
        while True:
            try:
                if not worker.results.poll():
                    return
                index = worker.results.recv()
            except (EOFError, OSError):
                return  # pipe closed by a dead worker; _reap handles it
            if worker.inflight and worker.inflight[0] == index:
                worker.inflight.popleft()
            elif index in worker.inflight:
                worker.inflight.remove(index)
            if self._harvest(outcomes[index], index, paths, state):
                pending.append(index)
            else:
                state.done += 1
                self._report(state, started)

    def _reap(
        self,
        worker: _Worker,
        paths: list[_JobPaths],
        pending: deque[int],
        outcomes: list[JobOutcome],
        state: "_SweepState",
        started: float,
    ) -> None:
        """Absorb a dead worker: account the crashed job, requeue the rest.

        The worker processes its batch in order and acknowledges each job
        only after its meta report is on disk, so the first unacknowledged
        in-flight job is the one that was running when the process died —
        it is charged an attempt (with a synthesized error if it left no
        report).  Later batch entries never started and are requeued
        without consuming an attempt.
        """
        worker.process.join()
        exitcode = worker.process.exitcode
        if worker.inflight:
            crashed = worker.inflight.popleft()
            retry = self._harvest(
                outcomes[crashed],
                crashed,
                paths,
                state,
                exitcode=exitcode,
                died=True,
            )
            if retry:
                pending.append(crashed)
            else:
                state.done += 1
                self._report(state, started)
            pending.extend(worker.inflight)
            worker.inflight.clear()
        worker.tasks.close()
        worker.results.close()

    def _shutdown(self, workers: list[_Worker]) -> None:
        for worker in workers:
            try:
                worker.tasks.send(None)  # poison pill: clean worker exit
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.tasks.close()
            worker.results.close()
            worker.process.join(timeout=10)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _serve_from_cache(self, outcome: JobOutcome) -> bool:
        """Cache-aware scheduling: a job already on disk needs no worker."""
        if not self.use_disk:
            return False
        path = self.cache_dir / outcome.job.cache_filename()
        trace_path = self.cache_dir / outcome.job.trace_filename()
        if outcome.job.trace and not trace_path.exists():
            # The dataset may be cached, but the trace sibling is not:
            # the job must still run so the worker can export it.
            return False
        dataset = load_cached_dataset(path)
        if dataset is None:
            return False
        outcome.dataset = dataset
        outcome.from_cache = True
        outcome.path = path
        if outcome.job.trace:
            outcome.trace_path = trace_path
        # The run that filled the cache persisted its event counts in a
        # .meta.json sibling; read them back so warm-cache sweeps report
        # real per-job throughput instead of zero events.
        meta = _read_json_tolerant(
            self.cache_dir / outcome.job.meta_filename()
        )
        if meta.get("ok"):
            self._fill_throughput(outcome, meta)
        self._adopt(outcome.job, dataset)
        return True

    @staticmethod
    def _fill_throughput(
        outcome: JobOutcome, meta: dict[str, object]
    ) -> None:
        events = meta.get("events_processed", 0)
        wall = meta.get("wall_seconds", 0.0)
        outcome.events_processed = (
            int(events) if isinstance(events, (int, float)) else 0
        )
        outcome.wall_seconds = (
            float(wall) if isinstance(wall, (int, float)) else 0.0
        )
        outcome.sim_metrics = _parse_sim_metrics(meta.get("sim_metrics"))

    def _job_paths(
        self, index: int, job: CampaignJob, spool: Path
    ) -> _JobPaths:
        if self.use_disk:
            out_path = self.cache_dir / job.cache_filename()
            meta_path = self.cache_dir / job.meta_filename()
            trace_path = self.cache_dir / job.trace_filename()
        else:
            out_path = spool / f"job-{index}.jsonl"
            meta_path = spool / f"job-{index}.meta.json"
            trace_path = spool / f"job-{index}.trace.bin"
        return (str(out_path), str(meta_path), str(trace_path))

    def _harvest(
        self,
        outcome: JobOutcome,
        index: int,
        paths: list[_JobPaths],
        state: "_SweepState",
        exitcode: Optional[int] = None,
        died: bool = False,
    ) -> bool:
        """Absorb one finished attempt; return True when the job must retry."""
        outcome.attempts += 1
        out_path, meta_path, trace_path = paths[index]
        meta = _read_json_tolerant(Path(meta_path))
        error: str
        if meta.get("ok"):
            dataset = load_cached_dataset(Path(out_path))
            if dataset is not None:
                outcome.dataset = dataset
                outcome.error = None
                self._fill_throughput(outcome, meta)
                outcome.path = Path(out_path) if self.use_disk else None
                if outcome.job.trace and Path(trace_path).exists():
                    outcome.trace_path = Path(trace_path)
                self._adopt(outcome.job, dataset)
                return False
            error = f"worker wrote an unreadable dataset at {out_path}"
        elif str(meta.get("error") or "").strip():
            error = str(meta["error"]).strip().splitlines()[-1]
        elif died:
            # Killed before it could write any report (OOM kill, SIGKILL,
            # segfault): synthesize a diagnosis instead of an empty error.
            error = (
                f"worker died with exitcode {exitcode}, no report "
                "(killed mid-job, e.g. out-of-memory)"
            )
        else:
            error = "worker acknowledged the job but left no meta report"
        if outcome.attempts <= self.retries:
            state.retries += 1
            return True
        outcome.error = error
        return False

    @staticmethod
    def _adopt_duplicate(outcome: JobOutcome, primary: JobOutcome) -> None:
        """A deduplicated job adopts its primary's outcome wholesale."""
        outcome.dataset = primary.dataset
        outcome.error = primary.error
        outcome.deduped = True
        outcome.from_cache = primary.from_cache
        outcome.events_processed = primary.events_processed
        outcome.wall_seconds = primary.wall_seconds
        outcome.path = primary.path
        outcome.sim_metrics = primary.sim_metrics
        outcome.trace_path = primary.trace_path

    def _adopt(self, job: CampaignJob, dataset: MeasurementDataset) -> None:
        """Feed a worker-produced preset dataset through the shared cache
        path so in-process consumers (runner, analyses) reuse it."""
        if job.preset_name is not None and job.label is None:
            campaign_dataset(
                job.preset_name,
                job.seed,
                cache_dir=self.cache_dir,
                use_disk=self.use_disk,
                dataset=dataset,
            )

    def _report(self, state: "_SweepState", started: float) -> None:
        if self.progress is None:
            return
        elapsed = max(time.perf_counter() - started, 1e-9)
        self.progress(
            f"[fleet] {state.done}/{state.total} jobs "
            f"({state.cache_hits} cached, {state.deduped} deduped, "
            f"{state.retries} retried) | "
            f"{state.done / elapsed:.2f} campaigns/s"
        )


@dataclass
class _SweepState:
    """Mutable progress counters for one :meth:`CampaignPool.run`."""

    total: int
    done: int = 0
    cache_hits: int = 0
    retries: int = 0
    deduped: int = 0


# ---------------------------------------------------------------------- #
# Convenience entry points
# ---------------------------------------------------------------------- #


def seed_sweep_jobs(
    preset_name: Optional[str] = None,
    seeds: Sequence[int] = (),
    config: Optional[CampaignConfig] = None,
    label: Optional[str] = None,
    trace: bool = False,
) -> list[CampaignJob]:
    """One job per seed for a preset or an explicit config variant."""
    return [
        CampaignJob(
            preset_name=preset_name,
            config=config,
            seed=seed,
            label=label,
            trace=trace,
        )
        for seed in seeds
    ]


def fault_grid_jobs(
    preset_name: str,
    plan: FaultPlan,
    intensities: Sequence[float],
    seeds: Sequence[int],
    trace: bool = False,
) -> list[CampaignJob]:
    """An ablation grid over fault intensity: one job per (intensity, seed).

    Each grid point runs the named preset with ``plan.scaled(intensity)``
    as the campaign-level fault plan; intensity ``0`` is the clean
    baseline (the scaled plan is all-zeros, so no injector is built and
    the dataset is bit-identical to the plain preset run).  Labels are
    ``faults-x<intensity>`` so grid points cache separately per config
    digest.
    """
    if not intensities:
        raise FleetError("a fault grid needs at least one intensity")
    if not seeds:
        raise FleetError("a fault grid needs at least one seed")
    grid: list[CampaignJob] = []
    for intensity in intensities:
        config = replace(preset(preset_name, seed=1), faults=plan.scaled(intensity))
        label = f"faults-x{intensity:g}"
        grid.extend(
            CampaignJob(config=config, seed=seed, label=label, trace=trace)
            for seed in seeds
        )
    return grid


def run_fault_grid(
    preset_name: str,
    plan: FaultPlan,
    intensities: Sequence[float],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
) -> FleetResult:
    """Run a fault-intensity ablation grid across warm worker processes."""
    pool = CampaignPool(
        jobs=jobs,
        cache_dir=cache_dir,
        use_disk=use_disk,
        retries=retries,
        progress=progress,
        batch_size=batch_size,
    )
    return pool.run(
        fault_grid_jobs(
            preset_name, plan, intensities=intensities, seeds=seeds, trace=trace
        )
    )


def run_seed_sweep(
    preset_name: str,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    batch_size: Optional[int] = None,
) -> FleetResult:
    """Run a multi-seed sweep of a named preset across warm worker processes.

    ``trace=True`` additionally exports a ground-truth trace per job
    (requires ``use_disk``; the files land next to the dataset cache as
    ``<dataset stem>.trace.bin``).  ``batch_size`` controls how many
    seeds one worker dispatch amortizes over (``None`` = auto).
    """
    pool = CampaignPool(
        jobs=jobs,
        cache_dir=cache_dir,
        use_disk=use_disk,
        retries=retries,
        progress=progress,
        batch_size=batch_size,
    )
    return pool.run(
        seed_sweep_jobs(preset_name=preset_name, seeds=seeds, trace=trace)
    )
