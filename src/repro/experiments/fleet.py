"""Parallel campaign fleet: multiprocess seed sweeps and ablation grids.

The paper's workloads that matter statistically — multi-seed confidence
intervals, ablation benches, pool-share sweeps — are grids of *independent*
campaigns.  Run sequentially they scale linearly with variant count while
every core but one idles; the fleet fans them out over a
:mod:`multiprocessing` worker pool instead.

Design (see DESIGN.md §"Parallel campaign fleet"):

* **Job specs** — a :class:`CampaignJob` names either a preset
  (``preset_name`` + ``seed``) or an arbitrary
  :class:`~repro.measurement.campaign.CampaignConfig` ablation variant
  (``config`` + ``label`` + ``seed``).
* **Determinism** — a worker runs exactly the code a sequential
  ``Campaign(config).run()`` would, and ships its dataset back through the
  existing JSONL serialization, so per-job datasets are bit-identical to
  sequential execution for the same seeds.
* **Cache interplay** — with ``use_disk`` the workers write *straight into*
  the shared disk cache (atomically, tmp + ``os.replace``); jobs already on
  disk are served by the parent without spawning a worker at all.
* **Fault tolerance** — a worker that raises (or is killed) is retried
  ``retries`` times; a job that keeps failing becomes a per-job failure in
  the :class:`FleetResult` instead of sinking the sweep.
* **Observability** — throughput counters surface as
  :class:`FleetMetrics`, rendered by
  :func:`repro.stats.format_fleet_profile`, mirroring
  :mod:`repro.sim.profile`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import re
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import FleetError
from repro.faults.plan import FaultPlan
from repro.experiments.cache import (
    DEFAULT_CACHE_DIR,
    cache_key,
    campaign_dataset,
    load_cached_dataset,
    store_dataset,
)
from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign, CampaignConfig
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.merge import merge_datasets
from repro.sim.profile import SimMetrics

_LABEL_PATTERN = re.compile(r"[A-Za-z0-9._-]+")


def config_digest(config: CampaignConfig) -> str:
    """A short stable digest of a campaign configuration.

    Embedded in ablation-job cache filenames so that reusing a label with
    a *changed* config can never serve a stale dataset.
    """
    canonical = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]


@dataclass(frozen=True)
class CampaignJob:
    """One independent campaign in a sweep.

    Exactly one of ``preset_name`` / ``config`` must be given:

    * ``CampaignJob(preset_name="standard", seed=3)`` — a named preset;
    * ``CampaignJob(config=variant, label="majority-51", seed=3)`` — an
      arbitrary ablation variant.  ``seed`` overrides the scenario seed
      embedded in ``config`` so one variant fans out over many seeds.

    Attributes:
        preset_name: Preset campaign name (``small``/``standard``/``large``).
        config: Explicit campaign configuration (ablation variants).
        seed: Campaign seed for this job.
        label: Display + cache label; required for ``config`` jobs,
            optional override for preset jobs.  Filesystem-friendly
            (letters, digits, ``._-``).
        trace: Record a ground-truth trace alongside the dataset (the
            worker exports it next to the dataset cache as
            ``<dataset stem>.trace.jsonl``).  The dataset itself is
            bit-identical with or without tracing, so traced and
            untraced jobs share one dataset cache entry.
    """

    preset_name: Optional[str] = None
    config: Optional[CampaignConfig] = None
    seed: int = 1
    label: Optional[str] = None
    trace: bool = False

    def __post_init__(self) -> None:
        if (self.preset_name is None) == (self.config is None):
            raise FleetError(
                "a CampaignJob needs exactly one of preset_name or config"
            )
        if self.config is not None and self.label is None:
            raise FleetError("config jobs need a label for cache/reporting")
        if self.label is not None and not _LABEL_PATTERN.fullmatch(self.label):
            raise FleetError(
                f"job label {self.label!r} is not filesystem-friendly "
                "(use letters, digits, '.', '_', '-')"
            )
        if self.preset_name is not None:
            preset(self.preset_name, self.seed)  # fail fast on unknown names

    @property
    def name(self) -> str:
        """Human-readable job name (label, falling back to the preset)."""
        label = self.label or self.preset_name
        assert label is not None
        return label

    def resolved_config(self) -> CampaignConfig:
        """The concrete campaign configuration this job runs."""
        if self.preset_name is not None:
            config = preset(self.preset_name, self.seed)
        else:
            assert self.config is not None
            config = replace(
                self.config, scenario=replace(self.config.scenario, seed=self.seed)
            )
        if self.trace and not config.scenario.trace:
            config = replace(config, scenario=replace(config.scenario, trace=True))
        return config

    def cache_filename(self) -> str:
        """Disk-cache filename; preset jobs share :func:`cache_key`'s.

        Deliberately independent of :attr:`trace` — a traced run's
        dataset is bit-identical to an untraced one's, so both share the
        same cache entry (only the ``.trace.jsonl`` sibling differs).
        """
        if self.preset_name is not None and self.label is None:
            return cache_key(self.preset_name, self.seed)
        digest = config_digest(self._untraced_config())
        return f"campaign-{self.name}-{digest}-seed{self.seed}.jsonl"

    def _untraced_config(self) -> CampaignConfig:
        """The resolved config with tracing stripped (cache identity)."""
        config = self.resolved_config()
        if config.scenario.trace:
            config = replace(config, scenario=replace(config.scenario, trace=False))
        return config

    def trace_filename(self) -> str:
        """Trace-file sibling of :meth:`cache_filename`."""
        stem = self.cache_filename()
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        return f"{stem}.trace.jsonl"


@dataclass
class JobOutcome:
    """Result of one fleet job (success, cache hit, or failure).

    Attributes:
        job: The job spec.
        dataset: The campaign dataset (``None`` on failure).
        error: Failure description after all retries (``None`` on success).
        attempts: Worker attempts consumed (0 for a pure cache hit).
        from_cache: Served from the disk cache without spawning a worker.
        events_processed: Simulator events the worker processed.
        wall_seconds: Worker-side campaign wall time.
        path: Disk-cache path holding the dataset (``None`` unless the
            fleet ran with ``use_disk``).
        sim_metrics: The worker simulator's full
            :class:`~repro.sim.profile.SimMetrics` snapshot (``None``
            for cache hits and failures) — what lets
            :func:`repro.stats.format_fleet_profile` report per-seed
            events/s rather than just job wall time.
        trace_path: Ground-truth trace file the worker exported
            (``None`` unless the job ran with ``trace=True``).
    """

    job: CampaignJob
    dataset: Optional[MeasurementDataset] = None
    error: Optional[str] = None
    attempts: int = 0
    from_cache: bool = False
    events_processed: int = 0
    wall_seconds: float = 0.0
    path: Optional[Path] = None
    sim_metrics: Optional[SimMetrics] = None
    trace_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return self.dataset is not None

    @property
    def events_per_second(self) -> float:
        """Worker-side simulator throughput (0.0 when unknown)."""
        if self.sim_metrics is not None:
            return self.sim_metrics.events_per_second
        if self.wall_seconds > 0:
            return self.events_processed / self.wall_seconds
        return 0.0


@dataclass(frozen=True)
class FleetMetrics:
    """Immutable sweep-level throughput counters (cf. ``SimMetrics``).

    Attributes:
        jobs_total: Jobs submitted.
        jobs_succeeded: Jobs that produced a dataset (cache hits included).
        jobs_failed: Jobs that failed after all retries.
        cache_hits: Jobs served from the disk cache without a worker.
        retries: Worker re-launches after a failed attempt.
        workers: Concurrent worker-process cap the sweep ran with.
        wall_seconds: Sweep wall-clock time in the parent.
        total_events: Simulator events across all workers.
    """

    jobs_total: int
    jobs_succeeded: int
    jobs_failed: int
    cache_hits: int
    retries: int
    workers: int
    wall_seconds: float
    total_events: int

    @property
    def campaigns_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.jobs_succeeded / self.wall_seconds

    @property
    def events_per_second(self) -> float:
        """Aggregate simulator throughput across the whole fleet."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds


@dataclass
class FleetResult:
    """Everything a sweep produced, in job-submission order."""

    outcomes: list[JobOutcome]
    metrics: FleetMetrics

    def datasets(self) -> list[MeasurementDataset]:
        """Successful datasets, in job order."""
        return [o.dataset for o in self.outcomes if o.dataset is not None]

    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_failure(self) -> None:
        """Raise :class:`FleetError` summarising any failed jobs."""
        failed = self.failures()
        if failed:
            summary = "; ".join(
                f"{o.job.name} seed {o.job.seed}: {o.error}" for o in failed
            )
            raise FleetError(f"{len(failed)} fleet job(s) failed: {summary}")

    def merged(self) -> MeasurementDataset:
        """All successful datasets merged for record-stream aggregation."""
        return merge_datasets(self.datasets(), allow_disjoint_worlds=True)


def _write_json_atomic(path: Path, payload: dict[str, object]) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _fleet_worker(
    job: CampaignJob, out_path: str, meta_path: str, trace_path: str
) -> None:
    """Run one campaign in a child process.

    The dataset travels through the disk (atomic JSONL write at
    ``out_path``) rather than a pickle pipe so that it takes exactly the
    same serialization path as the cache, and a crash mid-write can never
    corrupt a previously complete file.  ``meta_path`` carries the
    per-job :class:`~repro.sim.profile.SimMetrics` snapshot (or the
    traceback on failure); ``trace_path`` receives the ground-truth
    trace for ``trace=True`` jobs (empty string otherwise).
    """
    try:
        started = time.perf_counter()
        campaign = Campaign(job.resolved_config())
        dataset = campaign.run()
        wall = time.perf_counter() - started
        store_dataset(dataset, Path(out_path))
        if job.trace and trace_path:
            campaign.save_trace(trace_path, preset=job.name)
        metrics = campaign.metrics
        payload: dict[str, object] = {
            "ok": True,
            "events_processed": (
                metrics.events_processed if metrics is not None else 0
            ),
            "wall_seconds": wall,
        }
        if metrics is not None:
            payload["sim_metrics"] = dataclasses.asdict(metrics)
        _write_json_atomic(Path(meta_path), payload)
    except BaseException:
        _write_json_atomic(
            Path(meta_path),
            {"ok": False, "error": traceback.format_exc(limit=8)},
        )
        raise SystemExit(1)


def _parse_sim_metrics(payload: object) -> Optional[SimMetrics]:
    """Rebuild a worker's :class:`SimMetrics` from its meta JSON."""
    if not isinstance(payload, dict):
        return None
    try:
        return SimMetrics(
            events_processed=int(payload["events_processed"]),
            simulated_seconds=float(payload["simulated_seconds"]),
            run_wall_seconds=float(payload["run_wall_seconds"]),
            events_per_second=float(payload["events_per_second"]),
            profiled=bool(payload["profiled"]),
            event_counts={
                str(k): int(v)
                for k, v in dict(payload.get("event_counts", {})).items()
            },
            event_seconds={
                str(k): float(v)
                for k, v in dict(payload.get("event_seconds", {})).items()
            },
            queue_high_water=(
                int(payload["queue_high_water"])
                if payload.get("queue_high_water") is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError):
        return None


class CampaignPool:
    """Fans independent :class:`CampaignJob`\\ s out over worker processes.

    Args:
        jobs: Concurrent worker cap; defaults to ``os.cpu_count()``.
        cache_dir: Disk-cache directory (default ``.repro-cache``).
        use_disk: Serve cached jobs from / persist results to the disk
            cache (workers write straight into it).
        retries: Worker re-launches per job after a failed attempt.
        progress: Callback for one-line progress reports (e.g. ``print``);
            ``None`` keeps the sweep silent.
        start_method: ``multiprocessing`` start method; defaults to
            ``fork`` where available (bit-exact inheritance of the parent
            interpreter state), else the platform default.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Path] = None,
        use_disk: bool = False,
        retries: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        workers = jobs if jobs is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise FleetError("a fleet needs at least one worker")
        if retries < 0:
            raise FleetError("retries must be >= 0")
        self.workers = workers
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        )
        self.use_disk = use_disk
        self.retries = retries
        self.progress = progress
        if start_method is None and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            start_method = "fork"
        self._context = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------ #
    # Sweep execution
    # ------------------------------------------------------------------ #

    def run(self, jobs: Sequence[CampaignJob]) -> FleetResult:
        """Run every job; never raises for per-job failures."""
        jobs = list(jobs)
        if not jobs:
            raise FleetError("no jobs to run")
        if not self.use_disk and any(job.trace for job in jobs):
            raise FleetError(
                "traced jobs need use_disk=True: trace files live next to "
                "the dataset cache, and the in-memory spool is deleted when "
                "the sweep ends"
            )
        started = time.perf_counter()
        outcomes = [JobOutcome(job=job) for job in jobs]
        state = _SweepState(total=len(jobs))

        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as spool_dir:
            spool = Path(spool_dir)
            pending: deque[int] = deque()
            for index, job in enumerate(jobs):
                if self._serve_from_cache(outcomes[index]):
                    state.cache_hits += 1
                    state.done += 1
                    self._report(state, started)
                else:
                    pending.append(index)

            running: dict[int, multiprocessing.process.BaseProcess] = {}
            while pending or running:
                while pending and len(running) < self.workers:
                    index = pending.popleft()
                    running[index] = self._spawn(index, jobs[index], spool)
                self._wait_any(running)
                for index in [
                    i for i, p in running.items() if not p.is_alive()
                ]:
                    process = running.pop(index)
                    process.join()
                    retry = self._harvest(
                        outcomes[index], process.exitcode, spool, index, state
                    )
                    if retry:
                        pending.append(index)
                    else:
                        state.done += 1
                        self._report(state, started)

        metrics = FleetMetrics(
            jobs_total=len(jobs),
            jobs_succeeded=sum(1 for o in outcomes if o.ok),
            jobs_failed=sum(1 for o in outcomes if not o.ok),
            cache_hits=state.cache_hits,
            retries=state.retries,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            total_events=sum(o.events_processed for o in outcomes),
        )
        return FleetResult(outcomes=outcomes, metrics=metrics)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _serve_from_cache(self, outcome: JobOutcome) -> bool:
        """Cache-aware scheduling: a job already on disk needs no worker."""
        if not self.use_disk:
            return False
        path = self.cache_dir / outcome.job.cache_filename()
        trace_path = self.cache_dir / outcome.job.trace_filename()
        if outcome.job.trace and not trace_path.exists():
            # The dataset may be cached, but the trace sibling is not:
            # the job must still run so the worker can export it.
            return False
        dataset = load_cached_dataset(path)
        if dataset is None:
            return False
        outcome.dataset = dataset
        outcome.from_cache = True
        outcome.path = path
        if outcome.job.trace:
            outcome.trace_path = trace_path
        self._adopt(outcome.job, dataset)
        return True

    def _job_paths(
        self, index: int, job: CampaignJob, spool: Path
    ) -> tuple[Path, Path, Path]:
        if self.use_disk:
            out_path = self.cache_dir / job.cache_filename()
            trace_path = self.cache_dir / job.trace_filename()
        else:
            out_path = spool / f"job-{index}.jsonl"
            trace_path = spool / f"job-{index}.trace.jsonl"
        return out_path, spool / f"job-{index}.meta.json", trace_path

    def _spawn(
        self, index: int, job: CampaignJob, spool: Path
    ) -> multiprocessing.process.BaseProcess:
        out_path, meta_path, trace_path = self._job_paths(index, job, spool)
        meta_path.unlink(missing_ok=True)  # clear a previous attempt's report
        process = self._context.Process(
            target=_fleet_worker,
            args=(
                job,
                str(out_path),
                str(meta_path),
                str(trace_path) if job.trace else "",
            ),
            name=f"fleet-{job.name}-seed{job.seed}",
        )
        process.start()
        return process

    @staticmethod
    def _wait_any(
        running: dict[int, multiprocessing.process.BaseProcess]
    ) -> None:
        if running:
            connection.wait(
                [p.sentinel for p in running.values()], timeout=1.0
            )

    def _harvest(
        self,
        outcome: JobOutcome,
        exitcode: Optional[int],
        spool: Path,
        index: int,
        state: "_SweepState",
    ) -> bool:
        """Absorb one finished worker; return True when the job must retry."""
        outcome.attempts += 1
        out_path, meta_path, trace_path = self._job_paths(
            index, outcome.job, spool
        )
        meta: dict[str, object] = {}
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except ValueError:
                meta = {}
        error: Optional[str] = None
        if exitcode == 0 and meta.get("ok"):
            dataset = load_cached_dataset(out_path)
            if dataset is not None:
                outcome.dataset = dataset
                outcome.error = None
                events = meta.get("events_processed", 0)
                wall = meta.get("wall_seconds", 0.0)
                outcome.events_processed = (
                    int(events) if isinstance(events, (int, float)) else 0
                )
                outcome.wall_seconds = (
                    float(wall) if isinstance(wall, (int, float)) else 0.0
                )
                outcome.path = out_path if self.use_disk else None
                outcome.sim_metrics = _parse_sim_metrics(
                    meta.get("sim_metrics")
                )
                if outcome.job.trace and trace_path.exists():
                    outcome.trace_path = trace_path
                self._adopt(outcome.job, dataset)
                return False
            error = f"worker wrote an unreadable dataset at {out_path}"
        elif meta.get("error"):
            error = str(meta["error"]).strip().splitlines()[-1]
        else:
            error = f"worker died with exit code {exitcode}"
        if outcome.attempts <= self.retries:
            state.retries += 1
            return True
        outcome.error = error
        return False

    def _adopt(self, job: CampaignJob, dataset: MeasurementDataset) -> None:
        """Feed a worker-produced preset dataset through the shared cache
        path so in-process consumers (runner, analyses) reuse it."""
        if job.preset_name is not None and job.label is None:
            campaign_dataset(
                job.preset_name,
                job.seed,
                cache_dir=self.cache_dir,
                use_disk=self.use_disk,
                dataset=dataset,
            )

    def _report(self, state: "_SweepState", started: float) -> None:
        if self.progress is None:
            return
        elapsed = max(time.perf_counter() - started, 1e-9)
        self.progress(
            f"[fleet] {state.done}/{state.total} jobs "
            f"({state.cache_hits} cached, {state.retries} retried) | "
            f"{state.done / elapsed:.2f} campaigns/s"
        )


@dataclass
class _SweepState:
    """Mutable progress counters for one :meth:`CampaignPool.run`."""

    total: int
    done: int = 0
    cache_hits: int = 0
    retries: int = 0


# ---------------------------------------------------------------------- #
# Convenience entry points
# ---------------------------------------------------------------------- #


def seed_sweep_jobs(
    preset_name: Optional[str] = None,
    seeds: Sequence[int] = (),
    config: Optional[CampaignConfig] = None,
    label: Optional[str] = None,
    trace: bool = False,
) -> list[CampaignJob]:
    """One job per seed for a preset or an explicit config variant."""
    return [
        CampaignJob(
            preset_name=preset_name,
            config=config,
            seed=seed,
            label=label,
            trace=trace,
        )
        for seed in seeds
    ]


def fault_grid_jobs(
    preset_name: str,
    plan: FaultPlan,
    intensities: Sequence[float],
    seeds: Sequence[int],
    trace: bool = False,
) -> list[CampaignJob]:
    """An ablation grid over fault intensity: one job per (intensity, seed).

    Each grid point runs the named preset with ``plan.scaled(intensity)``
    as the campaign-level fault plan; intensity ``0`` is the clean
    baseline (the scaled plan is all-zeros, so no injector is built and
    the dataset is bit-identical to the plain preset run).  Labels are
    ``faults-x<intensity>`` so grid points cache separately per config
    digest.
    """
    if not intensities:
        raise FleetError("a fault grid needs at least one intensity")
    if not seeds:
        raise FleetError("a fault grid needs at least one seed")
    grid: list[CampaignJob] = []
    for intensity in intensities:
        config = replace(preset(preset_name, seed=1), faults=plan.scaled(intensity))
        label = f"faults-x{intensity:g}"
        grid.extend(
            CampaignJob(config=config, seed=seed, label=label, trace=trace)
            for seed in seeds
        )
    return grid


def run_fault_grid(
    preset_name: str,
    plan: FaultPlan,
    intensities: Sequence[float],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
) -> FleetResult:
    """Run a fault-intensity ablation grid across worker processes."""
    pool = CampaignPool(
        jobs=jobs,
        cache_dir=cache_dir,
        use_disk=use_disk,
        retries=retries,
        progress=progress,
    )
    return pool.run(
        fault_grid_jobs(
            preset_name, plan, intensities=intensities, seeds=seeds, trace=trace
        )
    )


def run_seed_sweep(
    preset_name: str,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
) -> FleetResult:
    """Run a multi-seed sweep of a named preset across worker processes.

    ``trace=True`` additionally exports a ground-truth trace per job
    (requires ``use_disk``; the files land next to the dataset cache as
    ``<dataset stem>.trace.jsonl``).
    """
    pool = CampaignPool(
        jobs=jobs,
        cache_dir=cache_dir,
        use_disk=use_disk,
        retries=retries,
        progress=progress,
    )
    return pool.run(
        seed_sweep_jobs(preset_name=preset_name, seeds=seeds, trace=trace)
    )
