"""Campaign result caching.

All ten experiments analyse the *same* campaign, exactly as the paper's
figures all derive from one measurement window.  Running the simulation
once per experiment would waste minutes, so :func:`campaign_dataset`
memoises datasets per (preset, seed) — in process, and optionally on disk
as the JSONL format the measurement layer already speaks.

The disk cache is safe under concurrency: datasets are written atomically
(tmp sibling + ``os.replace``, see ``MeasurementDataset.save``), so the
parallel campaign fleet's workers can target the same cache directory as
the parent — and as each other — without a reader ever observing a
truncated file.  :func:`load_cached_dataset` is the shared tolerant
loader: a corrupt or missing file reads as "not cached", never as an
exception.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import DatasetError
from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset

_MEMORY_CACHE: dict[tuple[str, int, str], MeasurementDataset] = {}

#: Default on-disk cache directory (repo-local, git-ignored).
DEFAULT_CACHE_DIR = Path(".repro-cache")


def cache_key(preset_name: str, seed: int) -> str:
    return f"campaign-{preset_name}-seed{seed}.jsonl"


def load_cached_dataset(path: Path) -> Optional[MeasurementDataset]:
    """Load a cached dataset, treating any corruption as a cache miss.

    Truncated JSONL raises ``JSONDecodeError``, a bad record tag
    ``KeyError``, and so on — all of them mean "regenerate", not "crash",
    both for :func:`campaign_dataset` and for the fleet's cache-aware
    scheduler.
    """
    if not path.exists():
        return None
    try:
        return MeasurementDataset.load(path)
    except (DatasetError, OSError, ValueError, KeyError, TypeError):
        return None


def store_dataset(dataset: MeasurementDataset, path: Path) -> None:
    """Persist ``dataset`` at ``path`` atomically, creating parents."""
    path.parent.mkdir(parents=True, exist_ok=True)
    dataset.save(path)


def campaign_dataset(
    preset_name: str = "standard",
    seed: int = 1,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
    dataset: Optional[MeasurementDataset] = None,
) -> MeasurementDataset:
    """Return the (possibly cached) dataset for a preset campaign.

    Args:
        preset_name: One of ``small`` / ``standard`` / ``large``.
        seed: Campaign seed.
        cache_dir: Directory for the optional disk cache.
        use_disk: Persist/reuse the dataset as JSONL on disk.
        dataset: An already-materialized dataset for this (preset, seed)
            — e.g. produced by a fleet worker in another process.  It is
            adopted into the memory cache (and the disk cache when
            ``use_disk`` and not yet present) instead of re-running the
            campaign, so the fleet and the cache share one code path.
    """
    directory = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    # The memory key carries the cache directory so callers using private
    # directories (e.g. tests with tmp_path) cannot cross-contaminate.
    key = (preset_name, seed, str(directory))
    path = directory / cache_key(preset_name, seed)

    if dataset is not None:
        if use_disk and load_cached_dataset(path) is None:
            store_dataset(dataset, path)
        _MEMORY_CACHE[key] = dataset
        return dataset

    cached = _MEMORY_CACHE.get(key)
    if cached is not None:
        return cached

    if use_disk:
        dataset = load_cached_dataset(path)
    if dataset is None:
        dataset = Campaign(preset(preset_name, seed)).run()
        if use_disk:
            store_dataset(dataset, path)
    _MEMORY_CACHE[key] = dataset
    return dataset


def clear_memory_cache() -> None:
    """Drop all in-process cached datasets (used by tests)."""
    _MEMORY_CACHE.clear()
