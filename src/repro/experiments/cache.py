"""Campaign result caching.

All ten experiments analyse the *same* campaign, exactly as the paper's
figures all derive from one measurement window.  Running the simulation
once per experiment would waste minutes, so :func:`campaign_dataset`
memoises datasets per (preset, seed) — in process, and optionally on disk
as the JSONL format the measurement layer already speaks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import DatasetError
from repro.experiments.presets import preset
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset

_MEMORY_CACHE: dict[tuple[str, int, str], MeasurementDataset] = {}

#: Default on-disk cache directory (repo-local, git-ignored).
DEFAULT_CACHE_DIR = Path(".repro-cache")


def cache_key(preset_name: str, seed: int) -> str:
    return f"campaign-{preset_name}-seed{seed}.jsonl"


def campaign_dataset(
    preset_name: str = "standard",
    seed: int = 1,
    cache_dir: Optional[Path] = None,
    use_disk: bool = False,
) -> MeasurementDataset:
    """Return the (possibly cached) dataset for a preset campaign.

    Args:
        preset_name: One of ``small`` / ``standard`` / ``large``.
        seed: Campaign seed.
        cache_dir: Directory for the optional disk cache.
        use_disk: Persist/reuse the dataset as JSONL on disk.
    """
    directory = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    # The memory key carries the cache directory so callers using private
    # directories (e.g. tests with tmp_path) cannot cross-contaminate.
    key = (preset_name, seed, str(directory))
    dataset = _MEMORY_CACHE.get(key)
    if dataset is not None:
        return dataset

    path = directory / cache_key(preset_name, seed)
    if use_disk and path.exists():
        try:
            dataset = MeasurementDataset.load(path)
        except (DatasetError, OSError, ValueError, KeyError, TypeError):
            # Corrupt or unreadable cache (truncated JSONL raises
            # JSONDecodeError, a bad record tag KeyError, ...): regenerate.
            dataset = None
    if dataset is None:
        dataset = Campaign(preset(preset_name, seed)).run()
        if use_disk:
            path.parent.mkdir(parents=True, exist_ok=True)
            dataset.save(path)
    _MEMORY_CACHE[key] = dataset
    return dataset


def clear_memory_cache() -> None:
    """Drop all in-process cached datasets (used by tests)."""
    _MEMORY_CACHE.clear()
