"""Experiment runner: regenerate any paper artifact from the command line.

Usage::

    python -m repro.experiments.runner                 # all experiments
    python -m repro.experiments.runner fig2 table3     # a subset
    python -m repro.experiments.runner --preset large  # flagship campaign
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Sequence

from repro.experiments.cache import campaign_dataset
from repro.experiments.presets import preset
from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset
from repro.stats import format_event_profile


def run_experiment(
    experiment_id: str, dataset: MeasurementDataset
) -> str:
    """Run one experiment and return its rendered artifact + paper values."""
    experiment = get_experiment(experiment_id)
    result = experiment.run(dataset)
    paper = "\n".join(
        f"    paper: {key} = {value}"
        for key, value in experiment.paper_values.items()
    )
    header = f"[{experiment.experiment_id}] {experiment.title}"
    rendered = result.render()  # type: ignore[attr-defined]
    return f"{header}\n{rendered}\n{paper}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--preset",
        default="standard",
        choices=("small", "standard", "large"),
        help="campaign preset to analyse",
    )
    parser.add_argument("--seed", type=int, default=1, help="campaign seed")
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="persist/reuse the campaign dataset under .repro-cache/",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the campaign with event-loop profiling (fresh run, "
        "bypasses the dataset caches) and print the per-event-type table",
    )
    args = parser.parse_args(argv)

    ids = args.experiments or all_experiment_ids()
    for experiment_id in ids:
        get_experiment(experiment_id)  # validate before the expensive run

    if args.profile:
        config = preset(args.preset, args.seed)
        config = replace(
            config, scenario=replace(config.scenario, profile=True)
        )
        campaign = Campaign(config)
        dataset = campaign.run()
        print(format_event_profile(campaign.metrics))
        print()
    else:
        dataset = campaign_dataset(args.preset, args.seed, use_disk=args.disk_cache)
    for experiment_id in ids:
        print(run_experiment(experiment_id, dataset))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
