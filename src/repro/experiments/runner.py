"""Experiment runner: regenerate any paper artifact from the command line.

Usage::

    python -m repro.experiments.runner                 # all experiments
    python -m repro.experiments.runner fig2 table3     # a subset
    python -m repro.experiments.runner --preset large  # flagship campaign
    python -m repro.experiments.runner --seeds 4 --jobs 4   # parallel sweep

With ``--seeds N`` the campaign runs as a multi-seed fleet sweep (seeds
``seed .. seed+N-1`` fanned out over ``--jobs`` worker processes) and the
analyses aggregate over the merged multi-seed dataset.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Sequence

from repro.experiments.cache import campaign_dataset
from repro.experiments.fleet import run_seed_sweep
from repro.experiments.presets import preset
from repro.experiments.registry import all_experiment_ids, get_experiment
from repro.experiments.result import ensure_renderable
from repro.measurement.campaign import Campaign
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.merge import merge_datasets
from repro.stats import format_event_profile, format_fleet_profile


def run_experiment(
    experiment_id: str, dataset: MeasurementDataset
) -> str:
    """Run one experiment and return its rendered artifact + paper values.

    Raises:
        ExperimentError: when the experiment's analysis returns something
            that is not renderable (see :mod:`repro.experiments.result`).
    """
    experiment = get_experiment(experiment_id)
    result = ensure_renderable(experiment.run(dataset), experiment_id)
    paper = "\n".join(
        f"    paper: {key} = {value}"
        for key, value in experiment.paper_values.items()
    )
    header = f"[{experiment.experiment_id}] {experiment.title}"
    return f"{header}\n{result.render()}\n{paper}"


def sweep_dataset(
    preset_name: str,
    first_seed: int,
    seeds: int,
    jobs: int | None,
    batch_size: int | None = None,
) -> MeasurementDataset:
    """Run a multi-seed fleet sweep and merge the per-seed datasets."""
    result = run_seed_sweep(
        preset_name,
        seeds=range(first_seed, first_seed + seeds),
        jobs=jobs,
        progress=print,
        batch_size=batch_size,
    )
    result.raise_on_failure()
    print(format_fleet_profile(result.metrics, result.outcomes))
    print()
    return merge_datasets(result.datasets(), allow_disjoint_worlds=True)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--preset",
        default="standard",
        choices=("small", "standard", "large"),
        help="campaign preset to analyse",
    )
    parser.add_argument("--seed", type=int, default=1, help="campaign seed")
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of seeds (seed .. seed+N-1) to sweep; with N > 1 the "
        "campaigns run as a parallel fleet and analyses aggregate over "
        "the merged multi-seed dataset",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fleet worker processes for --seeds (default: all cores)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="seeds per fleet worker dispatch for --seeds (default: auto)",
    )
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="persist/reuse the campaign dataset under .repro-cache/",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the campaign with event-loop profiling (fresh run, "
        "bypasses the dataset caches) and print the per-event-type table",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    ids = args.experiments or all_experiment_ids()
    for experiment_id in ids:
        get_experiment(experiment_id)  # validate before the expensive run

    if args.profile:
        config = preset(args.preset, args.seed)
        config = replace(
            config, scenario=replace(config.scenario, profile=True)
        )
        campaign = Campaign(config)
        dataset = campaign.run()
        print(format_event_profile(campaign.metrics))
        print()
    elif args.seeds > 1:
        dataset = sweep_dataset(
            args.preset, args.seed, args.seeds, args.jobs, args.batch_size
        )
    else:
        dataset = campaign_dataset(args.preset, args.seed, use_disk=args.disk_cache)
    for experiment_id in ids:
        print(run_experiment(experiment_id, dataset))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
