"""Campaign presets used by tests, benchmarks and examples.

The paper's campaign is one month of mainnet (≈ 201k blocks, 15k nodes).
Simulating that at full scale is neither necessary nor tractable in pure
Python; the presets scale the network and the window down while keeping
every *ratio* the analyses depend on (block fullness, fork windows
relative to the inter-block time, pool shares, peer-degree shape).

* ``small``   — seconds-fast; used by integration tests.
* ``standard``— the default benchmark campaign (≈ 500 blocks).
* ``large``   — the flagship campaign (≈ 1,000 blocks), closest to the
  paper's ratios; used by the examples and EXPERIMENTS.md numbers.
* ``mainnet`` — the full-population preset: 15,000 peers at the paper's
  pool shares with a Gencer-style heavy-tailed degree distribution,
  propagation-only (no transaction workload), one hour of chain time.
  This is the scale the batched delivery path exists for.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.measurement.campaign import CampaignConfig
from repro.node.config import NodeConfig
from repro.node.miner import MAINNET_INTER_BLOCK_TIME
from repro.p2p.degrees import DegreeDistribution
from repro.workload.scenarios import ScenarioConfig
from repro.workload.transactions import WorkloadConfig

#: Regular-node configuration for scaled-down networks: a lower peer cap
#: than Geth's 25 keeps the mesh density (edges/node²) comparable to the
#: real network's, which is what the redundancy statistics care about.
SCALED_NODE_CONFIG = NodeConfig(max_peers=14, target_outbound=7)

#: Preset gas limits sit slightly *below* the transaction arrival rate so
#: a standing backlog forms, as on mainnet — without it, a block sealed
#: seconds after its predecessor would be naturally empty, a scale
#: artifact the real network never exhibits (see DESIGN.md §5).


def small_campaign(seed: int = 1) -> CampaignConfig:
    """A seconds-fast campaign for integration tests (~30 blocks)."""
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=24,
            node_config=SCALED_NODE_CONFIG,
            workload=WorkloadConfig(tx_rate=0.8, senders=40),
            gas_limit=415_000,
            warmup=120.0,
        ),
        duration=30 * MAINNET_INTER_BLOCK_TIME,
    )


def standard_campaign(seed: int = 1) -> CampaignConfig:
    """The default benchmark campaign (~500 blocks, ~1 minute wall)."""
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=60,
            node_config=SCALED_NODE_CONFIG,
            workload=WorkloadConfig(tx_rate=1.2, senders=150),
            gas_limit=620_000,
            warmup=160.0,
        ),
        duration=500 * MAINNET_INTER_BLOCK_TIME,
    )


def large_campaign(seed: int = 1) -> CampaignConfig:
    """The flagship campaign (~1,000 blocks), used for EXPERIMENTS.md."""
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=80,
            node_config=SCALED_NODE_CONFIG,
            workload=WorkloadConfig(tx_rate=1.5, senders=250),
            gas_limit=775_000,
            warmup=200.0,
        ),
        duration=1000 * MAINNET_INTER_BLOCK_TIME,
    )


def mainnet_campaign(seed: int = 1) -> CampaignConfig:
    """The full-population preset: 15k peers, one hour of chain time.

    Matches the paper's measured network in the dimensions that bind:
    node count (≈ 15,000 reachable peers in April 2019), pool shares
    (the default :func:`~repro.workload.mainnet.mainnet_pool_specs`
    calibration) and a heavy-tailed peer-degree distribution.  The
    transaction workload is disabled — at this scale the interesting
    questions are block propagation and fork statistics, and a 15k-node
    transaction flood would swamp them (and the event budget).
    """
    return CampaignConfig(
        scenario=ScenarioConfig(
            seed=seed,
            n_nodes=15_000,
            node_config=NodeConfig(max_peers=25, target_outbound=13),
            degrees=DegreeDistribution(),
            workload=None,
            warmup=120.0,
        ),
        duration=3600.0,
    )


_PRESETS = {
    "small": small_campaign,
    "standard": standard_campaign,
    "large": large_campaign,
    "mainnet": mainnet_campaign,
}


def preset(name: str, seed: int = 1) -> CampaignConfig:
    """Look up a preset by name.

    Raises:
        ConfigurationError: for unknown preset names.
    """
    factory = _PRESETS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        )
    return factory(seed)
