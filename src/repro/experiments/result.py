"""The experiment-result contract.

Every analysis entry point in the registry returns *some* result object
— a frozen dataclass with the numbers the paper artifact needs — and the
runner, the CLI and the report generator all finish the job by calling
``result.render()``.  Historically that call was duck-typed (and hidden
behind ``# type: ignore[attr-defined]``), so an experiment returning the
wrong thing surfaced as an ``AttributeError`` deep inside a sweep, long
after the mistake was made.

This module makes the contract explicit: :class:`ExperimentResult` is a
runtime-checkable protocol (``render() -> str``), and
:func:`ensure_renderable` is the single choke point every consumer runs
a result through before rendering.  A misbehaving experiment now fails
with an :class:`~repro.errors.ExperimentError` naming the experiment and
the offending type.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import ExperimentError


@runtime_checkable
class ExperimentResult(Protocol):
    """What every experiment's ``run`` must return.

    The analysis dataclasses (``PropagationResult``, ``ForkAnalysis``,
    ``FairnessResult``, ...) satisfy this structurally — no subclassing
    required; new experiments only need a zero-argument ``render``.
    """

    def render(self) -> str:  # pragma: no cover - protocol stub
        """Render the artifact as the paper-vs-measured text block."""
        ...


def ensure_renderable(result: object, experiment_id: str) -> ExperimentResult:
    """Validate that ``result`` honours the :class:`ExperimentResult` protocol.

    Args:
        result: Whatever the experiment's ``run`` returned.
        experiment_id: The registry id, for the error message.

    Returns:
        ``result`` unchanged, typed as a renderable.

    Raises:
        ExperimentError: when ``result`` lacks a callable ``render``.
    """
    if not isinstance(result, ExperimentResult):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned {type(result).__name__}, "
            "which has no render() method; experiments must return an "
            "ExperimentResult (see repro.experiments.result)"
        )
    return result
