"""Geography: regions, WAN latency model, and NTP clock-offset model."""

from repro.geo.clock import NtpClock, NtpModelConfig, PerfectClock
from repro.geo.latency import (
    LatencyModel,
    LatencyModelConfig,
    base_latency_seconds,
)
from repro.geo.regions import (
    DEFAULT_NODE_DISTRIBUTION,
    VANTAGE_REGIONS,
    Region,
    RegionProfile,
    normalized_shares,
)

__all__ = [
    "DEFAULT_NODE_DISTRIBUTION",
    "LatencyModel",
    "LatencyModelConfig",
    "NtpClock",
    "NtpModelConfig",
    "PerfectClock",
    "Region",
    "RegionProfile",
    "VANTAGE_REGIONS",
    "base_latency_seconds",
    "normalized_shares",
]
