"""Inter-region network latency and bandwidth model.

One-way latencies are half of typical public inter-datacenter RTTs
(WonderNetwork / cloud-ping style numbers, rounded).  Within a message
transfer the model composes:

``one_way_latency(jittered) + serialisation_delay(size / bandwidth) + processing``

Jitter is multiplicative log-normal, which matches the heavy right tail of
real WAN latency samples and produces the long tail visible in the paper's
Figure 1 histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.regions import Region

#: Base one-way latencies between regions, in milliseconds.  Symmetric.
#: Eastern-Asia links carry a premium over great-circle estimates:
#: 2019-era China↔US/EU paths (where most EA hash power sat) ran well
#: above 200 ms RTT through congested/filtered transit.
_BASE_LATENCY_MS: dict[tuple[Region, Region], float] = {
    (Region.NORTH_AMERICA, Region.NORTH_AMERICA): 18.0,
    (Region.NORTH_AMERICA, Region.SOUTH_AMERICA): 75.0,
    (Region.NORTH_AMERICA, Region.WESTERN_EUROPE): 45.0,
    (Region.NORTH_AMERICA, Region.CENTRAL_EUROPE): 55.0,
    (Region.NORTH_AMERICA, Region.EASTERN_EUROPE): 65.0,
    (Region.NORTH_AMERICA, Region.EASTERN_ASIA): 100.0,
    (Region.NORTH_AMERICA, Region.SOUTH_ASIA): 100.0,
    (Region.NORTH_AMERICA, Region.OCEANIA): 80.0,
    (Region.SOUTH_AMERICA, Region.SOUTH_AMERICA): 25.0,
    (Region.SOUTH_AMERICA, Region.WESTERN_EUROPE): 95.0,
    (Region.SOUTH_AMERICA, Region.CENTRAL_EUROPE): 105.0,
    (Region.SOUTH_AMERICA, Region.EASTERN_EUROPE): 115.0,
    (Region.SOUTH_AMERICA, Region.EASTERN_ASIA): 165.0,
    (Region.SOUTH_AMERICA, Region.SOUTH_ASIA): 170.0,
    (Region.SOUTH_AMERICA, Region.OCEANIA): 155.0,
    (Region.WESTERN_EUROPE, Region.WESTERN_EUROPE): 10.0,
    (Region.WESTERN_EUROPE, Region.CENTRAL_EUROPE): 12.0,
    (Region.WESTERN_EUROPE, Region.EASTERN_EUROPE): 25.0,
    (Region.WESTERN_EUROPE, Region.EASTERN_ASIA): 135.0,
    (Region.WESTERN_EUROPE, Region.SOUTH_ASIA): 90.0,
    (Region.WESTERN_EUROPE, Region.OCEANIA): 140.0,
    (Region.CENTRAL_EUROPE, Region.CENTRAL_EUROPE): 8.0,
    (Region.CENTRAL_EUROPE, Region.EASTERN_EUROPE): 15.0,
    (Region.CENTRAL_EUROPE, Region.EASTERN_ASIA): 145.0,
    (Region.CENTRAL_EUROPE, Region.SOUTH_ASIA): 85.0,
    (Region.CENTRAL_EUROPE, Region.OCEANIA): 145.0,
    (Region.EASTERN_EUROPE, Region.EASTERN_EUROPE): 12.0,
    (Region.EASTERN_EUROPE, Region.EASTERN_ASIA): 120.0,
    (Region.EASTERN_EUROPE, Region.SOUTH_ASIA): 80.0,
    (Region.EASTERN_EUROPE, Region.OCEANIA): 150.0,
    (Region.EASTERN_ASIA, Region.EASTERN_ASIA): 20.0,
    (Region.EASTERN_ASIA, Region.SOUTH_ASIA): 40.0,
    (Region.EASTERN_ASIA, Region.OCEANIA): 60.0,
    (Region.SOUTH_ASIA, Region.SOUTH_ASIA): 18.0,
    (Region.SOUTH_ASIA, Region.OCEANIA): 50.0,
    (Region.OCEANIA, Region.OCEANIA): 15.0,
}


def base_latency_seconds(a: Region, b: Region) -> float:
    """One-way base latency between regions ``a`` and ``b`` in seconds."""
    value = _BASE_LATENCY_MS.get((a, b))
    if value is None:
        value = _BASE_LATENCY_MS.get((b, a))
    if value is None:
        raise ConfigurationError(f"no latency defined between {a!r} and {b!r}")
    return value / 1000.0


@dataclass(frozen=True)
class LatencyModelConfig:
    """Tunable parameters of the latency model.

    Attributes:
        jitter_sigma: Sigma of the multiplicative log-normal jitter.
            0 disables jitter entirely (useful in tests).
        bandwidth_bytes_per_s: Effective per-link throughput used for the
            serialisation delay of large payloads (blocks).  The paper's
            vantages had >= 8 Gbps; ordinary peers are slower — the default
            models a 50 Mbps effective application-level throughput.
        per_message_overhead: Fixed per-message processing cost in seconds
            (deserialisation, queueing); applied on reception.
    """

    jitter_sigma: float = 0.35
    bandwidth_bytes_per_s: float = 50e6 / 8
    per_message_overhead: float = 0.002
    #: Probability that a delivery hits a congested/slow path, and the
    #: extra multiplier it pays.  This mixture reproduces the long right
    #: tail of WAN latency (the paper's Figure 1 has p99 ≈ 4× median).
    tail_probability: float = 0.05
    tail_multiplier: float = 3.0


class LatencyModel:
    """Samples message delivery delays between regions.

    Args:
        rng: Random stream for jitter draws.
        config: Model parameters; defaults match DESIGN.md calibration.
    """

    #: Jitter draws are generated in batches of this size; per-call scalar
    #: numpy draws dominate simulation time otherwise.
    JITTER_BATCH = 8192

    #: Below this fan-out, :meth:`delays` computes in plain Python: the
    #: fixed overhead of numpy array construction exceeds the per-element
    #: savings for small waves.  Both paths perform the exact same IEEE
    #: operations, so the crossover is a pure speed knob.  Measured on
    #: CPython 3.11 through the full sampling path (jitter bookkeeping
    #: included) the scalar listcomp wins up to ~16-element waves and
    #: numpy wins from ~24, so the threshold splits the difference.
    VECTOR_MIN = 20

    def __init__(
        self,
        rng: np.random.Generator,
        config: LatencyModelConfig | None = None,
    ) -> None:
        self._rng = rng
        self.config = config or LatencyModelConfig()
        if self.config.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.config.jitter_sigma < 0:
            raise ConfigurationError("jitter sigma must be non-negative")
        self._jitter_buffer: list[float] = []
        # Hot-path scalars unpacked from the (frozen, never-rebound)
        # config: every delay sample reads all three, and the dataclass
        # attribute chain was measurable at mainnet wave rates.
        self._bandwidth = self.config.bandwidth_bytes_per_s
        self._overhead = self.config.per_message_overhead
        self._jittered = self.config.jitter_sigma > 0
        # Base-latency rows keyed by origin region: one dict lookup per
        # destination instead of the two-way tuple probe in
        # base_latency_seconds.  Values are the same ms/1000.0 floats.
        self._rows: dict[Region, dict[Region, float]] = {}
        for (a, b), ms in _BASE_LATENCY_MS.items():
            self._rows.setdefault(a, {})[b] = ms / 1000.0
            self._rows.setdefault(b, {})[a] = ms / 1000.0

    def _refill_jitter(self) -> None:
        draws = self._rng.lognormal(
            mean=0.0, sigma=self.config.jitter_sigma, size=self.JITTER_BATCH
        )
        if self.config.tail_probability > 0:
            slow = self._rng.random(self.JITTER_BATCH) < (
                self.config.tail_probability
            )
            draws[slow] *= self.config.tail_multiplier
        self._jitter_buffer = draws.tolist()

    def _next_jitter(self) -> float:
        if not self._jitter_buffer:
            self._refill_jitter()
        return self._jitter_buffer.pop()

    def take_jitters(self, count: int) -> list[float]:
        """Consume the next ``count`` jitter draws in scalar order.

        Returns exactly the values ``count`` successive
        :meth:`_next_jitter` calls would, leaving the RNG stream in the
        identical state — the buffer is consumed from its tail, refilling
        mid-batch when it runs dry, just like the scalar path.  This is
        what makes batched sends bitwise-equal to scalar sends.
        """
        buffer = self._jitter_buffer
        if len(buffer) >= count:
            out = buffer[-count:]
            out.reverse()
            del buffer[-count:]
            return out
        out = buffer[::-1]
        del buffer[:]
        while len(out) < count:
            self._refill_jitter()
            buffer = self._jitter_buffer
            take = count - len(out)
            if take > len(buffer):
                take = len(buffer)
            chunk = buffer[-take:]
            chunk.reverse()
            out.extend(chunk)
            del buffer[-take:]
        return out

    def delay(self, origin: Region, destination: Region, size_bytes: int = 0) -> float:
        """Sample the one-way delivery delay for a ``size_bytes`` message.

        The returned delay is always strictly positive so event ordering in
        the simulator never degenerates to zero-delay loops.
        """
        base = base_latency_seconds(origin, destination)
        if self._jittered:
            base *= self._next_jitter()
        serialisation = size_bytes / self._bandwidth
        return max(base + serialisation + self._overhead, 1e-6)

    def delays(
        self,
        origin: Region,
        destinations: Sequence[Region],
        size_bytes: Union[int, Sequence[int]] = 0,
    ) -> list[float]:
        """Sample one delivery delay per destination in a single pass.

        ``size_bytes`` is either one payload size shared by the wave
        (block push / announce) or a per-destination sequence (transaction
        flushes).  The result is bitwise-identical to calling
        :meth:`delay` once per destination in order — the jitter buffer is
        consumed in scalar order and every arithmetic step keeps the
        scalar path's operand association — so batched and scalar sends
        produce the same event times from the same stream state.
        """
        row = self._rows.get(origin)
        if row is None:
            raise ConfigurationError(f"no latency defined from region {origin!r}")
        try:
            base = [row[destination] for destination in destinations]
        except KeyError as error:
            raise ConfigurationError(
                f"no latency defined between {origin!r} and {error.args[0]!r}"
            ) from None
        count = len(base)
        if count == 0:
            return []
        bandwidth = self._bandwidth
        overhead = self._overhead
        per_size = not isinstance(size_bytes, (int, float))
        if self._jittered:
            jitters = self.take_jitters(count)
            if count >= self.VECTOR_MIN:
                values = np.array(base)
                values *= np.array(jitters)
                if per_size:
                    values += np.asarray(size_bytes, dtype=np.float64) / bandwidth
                else:
                    values += size_bytes / bandwidth
                values += overhead
                np.maximum(values, 1e-6, out=values)
                result: list[float] = values.tolist()
                return result
            if per_size:
                sizes = size_bytes  # type: ignore[assignment]
                return [
                    max(b * j + sizes[i] / bandwidth + overhead, 1e-6)
                    for i, (b, j) in enumerate(zip(base, jitters))
                ]
            serialisation = size_bytes / bandwidth
            return [
                max(b * j + serialisation + overhead, 1e-6)
                for b, j in zip(base, jitters)
            ]
        if per_size:
            sizes = size_bytes  # type: ignore[assignment]
            return [
                max(b + sizes[i] / bandwidth + overhead, 1e-6)
                for i, b in enumerate(base)
            ]
        serialisation = size_bytes / bandwidth
        return [max(b + serialisation + overhead, 1e-6) for b in base]

    def expected_delay(
        self, origin: Region, destination: Region, size_bytes: int = 0
    ) -> float:
        """Deterministic expected delay (no jitter draw) — used in tests."""
        base = base_latency_seconds(origin, destination)
        if self.config.jitter_sigma > 0:
            base *= float(np.exp(self.config.jitter_sigma**2 / 2.0))
            base *= 1.0 + self.config.tail_probability * (
                self.config.tail_multiplier - 1.0
            )
        return base + size_bytes / self.config.bandwidth_bytes_per_s + (
            self.config.per_message_overhead
        )
