"""NTP clock-offset model.

The paper's vantage machines used NTP, which the cited Murta et al. study
characterises as offset < 10 ms in 90 % of cases and < 100 ms in 99 % of
cases.  :class:`NtpClock` reproduces that envelope: each clock holds an
offset drawn from a mixture distribution matching the two quantiles, plus a
small per-reading dispersion (clock discipline wobble).

Measurement nodes stamp their logs through an :class:`NtpClock`; the
simulator's true time remains available for ground-truth assertions in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NtpModelConfig:
    """Parameters of the NTP offset mixture.

    With the defaults below, |offset| < 10 ms with probability ~0.9 and
    < 100 ms with probability ~0.99, matching Murta et al. as cited in §II.

    Attributes:
        p_good: Probability mass of the well-disciplined regime.
        good_scale: Std-dev (seconds) of the good regime's normal offset.
        p_fair: Probability mass of the mediocre regime ( < 100 ms ).
        fair_scale: Std-dev of the mediocre regime.
        bad_scale: Std-dev of the rare badly-synced regime.
        reading_noise: Per-reading dispersion around the base offset.
    """

    p_good: float = 0.90
    good_scale: float = 0.004
    p_fair: float = 0.09
    fair_scale: float = 0.035
    bad_scale: float = 0.15
    reading_noise: float = 0.0005

    def __post_init__(self) -> None:
        if not 0 <= self.p_good <= 1 or not 0 <= self.p_fair <= 1:
            raise ConfigurationError("mixture probabilities must lie in [0, 1]")
        if self.p_good + self.p_fair > 1:
            raise ConfigurationError("p_good + p_fair must not exceed 1")


class NtpClock:
    """A wall clock with an NTP-like offset from true simulated time.

    Args:
        rng: Random stream; used once for the base offset and per reading
            for the small residual noise.
        config: Mixture parameters.
    """

    #: Reading-noise draws are generated in batches of this size: every
    #: measurement record costs one reading, and per-call scalar numpy
    #: draws are ~30x slower than amortised vectorised ones.
    READING_NOISE_BATCH = 4096

    def __init__(
        self,
        rng: np.random.Generator,
        config: NtpModelConfig | None = None,
    ) -> None:
        self._rng = rng
        self.config = config or NtpModelConfig()
        self._noise_buffer: list[float] = []
        self.offset = self._draw_offset()

    def _draw_offset(self) -> float:
        u = float(self._rng.random())
        cfg = self.config
        if u < cfg.p_good:
            scale = cfg.good_scale
        elif u < cfg.p_good + cfg.p_fair:
            scale = cfg.fair_scale
        else:
            scale = cfg.bad_scale
        return float(self._rng.normal(loc=0.0, scale=scale))

    def read(self, true_time: float) -> float:
        """Return the timestamp this clock would log for ``true_time``."""
        if self.config.reading_noise <= 0:
            return true_time + self.offset
        buffer = self._noise_buffer
        if not buffer:
            buffer = self._rng.normal(
                loc=0.0, scale=self.config.reading_noise, size=self.READING_NOISE_BATCH
            ).tolist()
            self._noise_buffer = buffer
        return true_time + self.offset + buffer.pop()

    def resync(self) -> None:
        """Redraw the base offset, modelling an NTP re-synchronisation."""
        self.offset = self._draw_offset()


class PerfectClock:
    """Drop-in clock with zero offset, for controlled experiments/tests."""

    offset = 0.0

    def read(self, true_time: float) -> float:
        return true_time

    def resync(self) -> None:  # pragma: no cover - trivial
        return None
