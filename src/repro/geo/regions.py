"""Geographic regions of the simulated network.

The paper deploys vantage nodes in North America, Eastern Asia, Western
Europe and Central Europe.  We model the Ethereum network over a slightly
richer set of regions so that "the rest of the network" also has geography;
the four vantage regions are a subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Region(str, Enum):
    """Coarse geographic regions used by the latency model."""

    NORTH_AMERICA = "NA"
    SOUTH_AMERICA = "SA"
    WESTERN_EUROPE = "WE"
    CENTRAL_EUROPE = "CE"
    EASTERN_EUROPE = "EE"
    EASTERN_ASIA = "EA"
    SOUTH_ASIA = "SEA"
    OCEANIA = "OC"

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper's figures."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    Region.NORTH_AMERICA: "North America",
    Region.SOUTH_AMERICA: "South America",
    Region.WESTERN_EUROPE: "Western Europe",
    Region.CENTRAL_EUROPE: "Central Europe",
    Region.EASTERN_EUROPE: "Eastern Europe",
    Region.EASTERN_ASIA: "Eastern Asia",
    Region.SOUTH_ASIA: "South-East Asia",
    Region.OCEANIA: "Oceania",
}

#: The four regions where the paper placed measurement nodes (Table I).
VANTAGE_REGIONS = (
    Region.NORTH_AMERICA,
    Region.EASTERN_ASIA,
    Region.WESTERN_EUROPE,
    Region.CENTRAL_EUROPE,
)


@dataclass(frozen=True)
class RegionProfile:
    """Share of the overall node population living in a region.

    The default profile below approximates the April-2019 Ethereum node
    geography reported by ethernodes.org: the network is dominated by
    North America, Europe and Eastern Asia.
    """

    region: Region
    node_share: float


#: Approximate geographic distribution of Ethereum peers (ethernodes.org,
#: spring 2019): US ≈ 40 %, Europe ≈ 30 %, China+Korea+Japan ≈ 20 %, rest ≈ 10 %.
DEFAULT_NODE_DISTRIBUTION: tuple[RegionProfile, ...] = (
    RegionProfile(Region.NORTH_AMERICA, 0.38),
    RegionProfile(Region.WESTERN_EUROPE, 0.17),
    RegionProfile(Region.CENTRAL_EUROPE, 0.12),
    RegionProfile(Region.EASTERN_EUROPE, 0.04),
    RegionProfile(Region.EASTERN_ASIA, 0.20),
    RegionProfile(Region.SOUTH_ASIA, 0.04),
    RegionProfile(Region.SOUTH_AMERICA, 0.03),
    RegionProfile(Region.OCEANIA, 0.02),
)


def normalized_shares(profiles: tuple[RegionProfile, ...]) -> dict[Region, float]:
    """Return ``{region: share}`` normalised to sum to exactly 1.0."""
    total = sum(profile.node_share for profile in profiles)
    if total <= 0:
        raise ValueError("node distribution must have positive total share")
    return {profile.region: profile.node_share / total for profile in profiles}
