"""Recurring-process helpers built on top of the simulator.

Two scheduling idioms recur throughout the network model:

* :class:`PeriodicProcess` — fire a callback at a fixed period (e.g. peer
  table maintenance).
* :class:`PoissonProcess` — fire at exponentially distributed intervals
  (e.g. the PoW mining lottery, transaction arrivals).

Both support :meth:`~RecurringProcess.stop` and re-:meth:`~RecurringProcess.start`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class RecurringProcess:
    """Base class for self-rescheduling simulator processes."""

    def __init__(self, simulator: Simulator, callback: Callable[[], None]) -> None:
        self._simulator = simulator
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    def start(self) -> None:
        """Begin firing.  Idempotent while already running."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop firing and cancel any pending occurrence."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return self._running

    def _next_delay(self) -> float:
        raise NotImplementedError

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._event = self._simulator.call_later(self._next_delay(), self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        self._schedule_next()


class PeriodicProcess(RecurringProcess):
    """Fire ``callback`` every ``period`` seconds of simulated time."""

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        super().__init__(simulator, callback)
        self.period = period

    def _next_delay(self) -> float:
        return self.period


class PoissonProcess(RecurringProcess):
    """Fire ``callback`` at exponentially distributed intervals.

    Args:
        simulator: Owning simulator.
        rate: Mean events per simulated second; may be updated live via
            :attr:`rate` (takes effect from the next interval).
        callback: Zero-argument callable.
        rng: Random stream used for interval draws.
    """

    # repro: noqa[STR001] generic process helper: each instance stores exactly one stream; families never share a generator object
    def __init__(
        self,
        simulator: Simulator,
        rate: float,
        callback: Callable[[], None],
        rng: np.random.Generator,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate!r}")
        super().__init__(simulator, callback)
        self.rate = rate
        self._rng = rng

    def _next_delay(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate))
