"""Deterministic discrete-event simulation engine.

Public surface:

* :class:`Simulator` — the event loop, simulated clock and RNG root.
* :class:`Event` / :class:`EventQueue` — schedulable callbacks.
* :class:`PeriodicProcess` / :class:`PoissonProcess` — recurring processes.
* :class:`RngRegistry` / :func:`derive_seed` — namespaced random streams.
* :class:`SimMetrics` / :class:`SimProfile` — opt-in event-loop profiling.
"""

from repro.sim.engine import Simulator
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.process import PeriodicProcess, PoissonProcess, RecurringProcess
from repro.sim.profile import SimMetrics, SimProfile, event_label
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "DEFAULT_PRIORITY",
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "PoissonProcess",
    "RecurringProcess",
    "RngRegistry",
    "SimMetrics",
    "SimProfile",
    "Simulator",
    "derive_seed",
    "event_label",
]
