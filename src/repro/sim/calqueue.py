"""Calendar-queue event backend: O(1) amortised insert at mainnet depth.

The binary heap in :mod:`repro.sim.events` pays O(log n) per push *and*
per pop; at the ~300k queue depth of the 15k-peer ``mainnet`` preset the
sift path touches ~18 cache-hostile tuple comparisons per operation and
dominates the per-event budget (ROADMAP: "the next 2× is structural").
:class:`CalendarQueue` replaces it with a classic bucketed timing wheel
(Brown 1988): entries hash into ``floor(time / width) mod n_buckets``
buckets, a cursor walks the buckets in virtual-time order, and each
bucket is a *tiny* binary heap whose operations are effectively O(1)
because occupancy is held near a small constant by lazy resizing.

Determinism contract (the delicate part — argued in DESIGN.md §5g and
enforced by the differential tests in ``tests/property``):

* Entries are the **same tuples** the heap backend stores —
  ``(time, priority, sequence, obj)`` and the batched arity-5
  ``(time, priority, sequence, batch, index)`` — so within a bucket the
  min-heap orders them by exactly the heap backend's comparison, and the
  globally unique ``sequence`` (stamped at push, batch entries in index
  order) resolves every tie before payloads could ever be compared.
* Two entries with equal ``time`` always land in the same bucket (the
  bucket index is a pure function of ``time``), so cross-bucket ordering
  never has to break a time tie: buckets are visited in strictly
  increasing virtual-time windows.
* Bucket membership and the drain boundary use the *same* float
  expression ``int(time * inv_width)``, so rounding can never strand an
  entry on the wrong side of a window edge — the pop condition is
  "entry's virtual bucket <= cursor", not a fresh boundary comparison.

Resizing (grow, shrink, or corpse compaction) rebuilds every bucket with
a new width keyed on the observed inter-pop spacing; the surviving
entries keep their ``(time, priority, sequence)`` keys, so the drain
order is unchanged — a resize is invisible to the simulation.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush, nsmallest
from typing import Any, Callable, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.events import COMPACT_MIN_HEAP, DEFAULT_PRIORITY, Event

#: Bucket-count bounds (powers of two so the index mask is one AND).
#: The upper bound also caps the scan-jump's worst-case bucket sweep; at
#: mainnet depth (~300k entries) 2^16 buckets keeps occupancy around 5,
#: where the within-bucket heaps are effectively O(1).
MIN_BUCKETS = 64
MAX_BUCKETS = 1 << 16

#: Shrink eligibility: occupancy below ``n_buckets >> _SHRINK_SHIFT``.
#: Checked only when a pop has already walked :data:`_SCAN_JUMP` empty
#: bucket-years — i.e. when the oversized table is *actually costing
#: scan time* — never eagerly on a count threshold.  Gossip workloads
#: swing the queue depth by orders of magnitude every block cycle (a
#: seal enqueues a delivery wave that then drains to a handful of
#: timers), and an eager count-based shrink re-tuned the table twice
#: per cycle, hundreds of O(n) rebuilds per run.
_SHRINK_SHIFT = 5

#: Default bucket width in simulated seconds, used until enough pops have
#: been observed to key the width on real inter-event spacing.
DEFAULT_WIDTH = 1e-3

#: Consecutive empty bucket-years scanned before the cursor stops walking
#: and jumps straight to the globally earliest entry (an O(n_buckets)
#: scan, amortised over the gap it skips).
_SCAN_JUMP = 64

#: Target bucket-year occupancy: the rebuilt width is this multiple of
#: the estimated inter-event gap, so a bucket visit drains a handful of
#: entries instead of one (fewer cursor steps) while staying far from the
#: everything-in-one-bucket degenerate case.
_WIDTH_GAPS = 4.0

#: Entries sampled from the head of the queue to estimate the gap during
#: a rebuild.  Head spacing is what matters (it predicts the drain rate
#: the cursor is about to see), but the sample must span *several*
#: delivery waves, not sit inside one: gossip traffic arrives in dense
#: ~per-hop clusters separated by link-latency gaps, and a width tuned
#: to the intra-wave spacing turns every inter-wave gap into thousands
#: of empty bucket-years — each costing a scan-jump sweep of the table.
_WIDTH_SAMPLE = 1024


class CalendarQueue:
    """Bucketed timing-wheel event queue, drop-in for :class:`EventQueue`.

    Same public surface as the heap backend — ``push`` / ``push_raw`` /
    ``push_batch`` / ``pop`` / ``pop_until`` / ``peek_time`` / ``clear``
    plus the ``live_count`` / ``pending_events`` accounting and lazy
    cancellation with threshold compaction — and the exact same total
    order ``(time, priority, sequence)`` over popped entries.

    The engine's run loop drives :meth:`pop_entry` directly; everything
    else is the cold-path convenience surface shared with the heap.
    """

    backend = "calendar"

    def __init__(
        self,
        n_buckets: int = MIN_BUCKETS,
        width: float = DEFAULT_WIDTH,
    ) -> None:
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise SimulationError(
                f"n_buckets must be a power of two, got {n_buckets!r}"
            )
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width!r}")
        self._nbuckets = n_buckets
        self._mask = n_buckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: list[list[Any]] = [[] for _ in range(n_buckets)]
        self._cur_vb = 0  # cursor as a *virtual* (un-wrapped) bucket number
        self._count = 0  # entries stored, cancelled corpses included
        self._sequence = 0
        self._cancelled = 0
        self._compactions = 0
        self._resizes = 0
        self._last_pop_time = 0.0
        # Deepest the queue has been since the table was last shrunk.
        # Grow rebuilds size the table for this mark, not the count at
        # the instant the grow threshold tripped: delivery bursts stream
        # in, and sizing for the trip point made every burst re-grow the
        # table through a whole ladder of doubling rebuilds.
        self._hiwater = 0
        # Bumped by every rebuild; the engine's inlined run loop rebinds
        # its local bucket/width/cursor views when it sees a new value.
        self._gen = 0

    # ------------------------------------------------------------------ #
    # Shared accounting surface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Entries stored, *including* lazily-removed cancelled ones."""
        return self._count

    @property
    def live_count(self) -> int:
        """Number of scheduled events that will actually fire."""
        count = self._count - self._cancelled
        return count if count > 0 else 0

    @property
    def pending_events(self) -> int:
        """Alias of :attr:`live_count` (the backend-agnostic name)."""
        return self.live_count

    def stats(self) -> dict[str, float]:
        """Backend counters for :mod:`repro.obs` (cold path, derived)."""
        return {
            "depth": float(self._count),
            "live": float(self.live_count),
            "pushed_total": float(self._sequence),
            "cancelled_pending": float(self._cancelled),
            "compactions_total": float(self._compactions),
            "resizes_total": float(self._resizes),
            "buckets": float(self._nbuckets),
            "width": self._width,
        }

    # ------------------------------------------------------------------ #
    # Push paths
    # ------------------------------------------------------------------ #

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback, self)
        vb = int(time * self._inv_width)
        heappush(self._buckets[vb & self._mask], (time, priority, sequence, event))
        if vb < self._cur_vb:
            self._cur_vb = vb  # entry scheduled behind the cursor: pull it back
        self._count += 1
        if self._count > self._hiwater:
            self._hiwater = self._count
        self._maybe_grow()
        if self._cancelled * 2 > self._count and self._count >= COMPACT_MIN_HEAP:
            self._compactions += 1
            self._rebuild()
        return event

    def push_raw(
        self, time: float, event: Any, priority: int = DEFAULT_PRIORITY
    ) -> None:
        """Schedule a pooled event-like object without an :class:`Event` handle."""
        sequence = self._sequence
        self._sequence = sequence + 1
        vb = int(time * self._inv_width)
        heappush(self._buckets[vb & self._mask], (time, priority, sequence, event))
        if vb < self._cur_vb:
            self._cur_vb = vb
        self._count += 1
        if self._count > self._hiwater:
            self._hiwater = self._count
        self._maybe_grow()

    def push_batch(
        self,
        times: Sequence[float],
        batch: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule one ``(batch, index)`` entry per element of ``times``.

        Sequence numbers are assigned in index order — the wave fires
        exactly as ``len(times)`` scalar pushes of the same times would,
        and exactly as the heap backend fires the same batch.
        """
        sequence = self._sequence
        self._sequence = sequence + len(times)
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        cur_vb = self._cur_vb
        for i, time in enumerate(times):
            vb = int(time * inv_width)
            heappush(buckets[vb & mask], (time, priority, sequence + i, batch, i))
            if vb < cur_vb:
                cur_vb = vb
        self._cur_vb = cur_vb
        self._count += len(times)
        if self._count > self._hiwater:
            self._hiwater = self._count
        self._maybe_grow()

    # ------------------------------------------------------------------ #
    # Pop paths
    # ------------------------------------------------------------------ #

    def pop_entry(self, horizon: float = math.inf) -> Optional[tuple[Any, ...]]:
        """Remove and return the next live entry with ``time <= horizon``.

        Returns ``None`` when the queue holds no live entry at or before
        ``horizon`` (distinguish drain from horizon-stop through
        :attr:`live_count`).  Cancelled corpses encountered on the way
        are dropped and accounted for.  This is the engine's hot path.
        """
        if self._count == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        vb = self._cur_vb
        horizon_vb = None if horizon == math.inf else int(horizon * inv_width)
        scanned = 0
        while True:
            if horizon_vb is not None and vb > horizon_vb:
                # Every remaining entry sits in a bucket-year > the
                # horizon's, hence fires strictly after it (placement and
                # this bound use the same float expression).  The cursor
                # must not outrun the horizon's own year: the caller may
                # advance the clock to the horizon and schedule *into*
                # that year, and a cursor parked past it would strand
                # those entries for a whole wheel rotation.
                if horizon_vb > self._cur_vb:
                    self._cur_vb = horizon_vb
                return None
            bucket = buckets[vb & mask]
            while bucket:
                entry = bucket[0]
                time = entry[0]
                if int(time * inv_width) > vb:
                    break  # top belongs to a later year of this bucket
                if time > horizon:
                    self._cur_vb = vb
                    return None
                heappop(bucket)
                self._count -= 1
                if entry[3].cancelled:
                    self._cancelled -= 1
                    continue
                self._cur_vb = vb
                if time > self._last_pop_time:
                    self._last_pop_time = time
                return entry
            if self._count == 0:
                self._cur_vb = vb
                return None
            vb += 1
            scanned += 1
            if scanned >= _SCAN_JUMP:
                if (
                    self._count < self._nbuckets >> _SHRINK_SHIFT
                    and self._nbuckets > MIN_BUCKETS
                ):
                    # A long empty stretch *and* a near-empty table: the
                    # tuning is stale for what's left.  Re-tune instead
                    # of paying the O(n_buckets) jump scan — by the same
                    # near-empty condition the rebuild is O(live), cheap.
                    self._resizes += 1
                    self._rebuild(shrink=True)
                    buckets = self._buckets
                    mask = self._mask
                    inv_width = self._inv_width
                    vb = self._cur_vb
                    horizon_vb = (
                        None if horizon == math.inf else int(horizon * inv_width)
                    )
                    scanned = 0
                    continue
                # Long empty stretch: jump the cursor straight to the
                # earliest entry anywhere.  Equal times share a bucket,
                # so the earliest bucket top is the global minimum.  Only
                # the logical prefix can hold entries — the physical
                # table keeps its high-water capacity after a shrink.
                earliest: Optional[tuple[Any, ...]] = None
                for candidate in buckets[: mask + 1]:
                    if candidate and (
                        earliest is None or candidate[0] < earliest
                    ):
                        earliest = candidate[0]
                assert earliest is not None  # _count > 0 above
                vb = int(earliest[0] * inv_width)
                scanned = 0

    def pop(self) -> Optional[Any]:
        """Remove and return the next non-cancelled event, or ``None``."""
        entry = self.pop_entry()
        return entry[3] if entry is not None else None

    def pop_until(self, horizon: float) -> list[tuple[Any, ...]]:
        """Drain and return every live entry with ``time <= horizon``.

        Cancelled corpses crossed by the drain are dropped with their
        accounting settled *per entry, as each is removed* — never
        deferred to the end of the drain — so a compaction or resize
        triggered mid-drain (by the scan-time shrink in
        :meth:`pop_entry`) can reset the corpse counter without any
        batched adjustment double-counting entries the rebuild already
        reclaimed.
        """
        drained: list[tuple[Any, ...]] = []
        while (entry := self.pop_entry(horizon)) is not None:
            drained.append(entry)
        return drained

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live entry without consuming it.

        Implemented as pop-and-restore: the entry keeps its original
        ``(time, priority, sequence)`` key, so putting it back cannot
        change the drain order.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        vb = int(entry[0] * self._inv_width)
        heappush(self._buckets[vb & self._mask], entry)
        self._count += 1
        if vb < self._cur_vb:
            # The pop may have triggered a rebuild that parked the cursor
            # ahead of the restored entry; pull it back so the entry is
            # found again on the next pop.
            self._cur_vb = vb
        return float(entry[0])

    def clear(self) -> None:
        """Drop every pending event."""
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0
        self._cancelled = 0
        self._cur_vb = 0  # lagging-safe restart; push pulls it back anyway

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def _estimate_width(self, live: list[tuple[Any, ...]]) -> float:
        """Bucket width from the spacing of the queue's head entries.

        Samples the :data:`_WIDTH_SAMPLE` earliest firing times (what the
        cursor drains next — far-future spacing is irrelevant until those
        entries become the head, by which time another rebuild has run)
        and spreads :data:`_WIDTH_GAPS` mean gaps per bucket-year.  Width
        only shapes cost, never order, so the estimate just has to be
        sane, not precise.
        """
        if len(live) < 2:
            return self._width
        head = nsmallest(_WIDTH_SAMPLE + 1, (entry[0] for entry in live))
        span = head[-1] - head[0]
        if span <= 0.0:
            return self._width  # simultaneous head: keep the current tuning
        return min(max(span / (len(head) - 1) * _WIDTH_GAPS, 1e-9), 1e9)

    def _maybe_grow(self) -> None:
        if self._count > self._nbuckets << 1 and self._nbuckets < MAX_BUCKETS:
            self._resizes += 1
            self._rebuild()

    def _rebuild(self, shrink: bool = False) -> None:
        """Re-bucket every live entry; drop corpses; retune size and width.

        Runs on the growth threshold, on the cancelled-majority
        compaction trigger, and — with ``shrink=True`` — when a pop's
        bucket scan found the table near-empty and mistuned.  Survivors
        keep their sort keys, so a rebuild is order-invisible; the
        cursor restarts at or before every survivor's bucket-year (see
        below).

        Grow rebuilds size the table for the high-water mark so a
        recurring delivery burst pays one cheap rebuild at its onset
        (when few entries have landed) instead of a ladder of doubling
        rebuilds as it streams in.  Shrink rebuilds size for the live
        count alone and decay the mark, so the table tracks the
        workload down if the bursts stop.

        The physical bucket table is *reused*, never reallocated: the
        logical size ``_nbuckets`` only narrows the index mask, while
        the backing list keeps the largest capacity ever reached (a few
        MB at most).  Allocating a fresh 2^16-list table per rebuild
        was measured at ~100ms apiece of allocator + GC-tracking time
        at mainnet depth — an order of magnitude more than moving the
        surviving entries.
        """
        # One pass collects survivors and clears the table in place.
        buckets = self._buckets
        live: list[Any] = []
        collect = live.append
        for bucket in buckets:
            if bucket:
                for entry in bucket:
                    if not entry[3].cancelled:
                        collect(entry)
                bucket.clear()
        self._cancelled = 0
        self._count = len(live)
        self._gen += 1

        if shrink:
            decayed = self._hiwater - (self._hiwater >> 2)
            self._hiwater = len(live) if len(live) > decayed else decayed
            target = len(live)
        else:
            target = max(len(live), self._hiwater)
        n_buckets = self._nbuckets
        while n_buckets < target and n_buckets < MAX_BUCKETS:
            n_buckets <<= 1
        while target < n_buckets >> _SHRINK_SHIFT and n_buckets > MIN_BUCKETS:
            n_buckets >>= 1
        width = self._estimate_width(live)
        self._nbuckets = n_buckets
        self._mask = mask = n_buckets - 1
        self._width = width
        self._inv_width = inv_width = 1.0 / width
        if n_buckets > len(buckets):
            buckets.extend([] for _ in range(n_buckets - len(buckets)))

        # Restart the cursor no later than the last *popped* time's year
        # (the event now firing may schedule at the current instant) and
        # no later than any survivor's year.  Lagging is always safe (the
        # scan-jump skips the empty stretch); leading strands entries
        # behind the wheel for a full rotation.
        cur_vb = int(self._last_pop_time * inv_width)
        for entry in live:
            vb = int(entry[0] * inv_width)
            heappush(buckets[vb & mask], entry)
            if vb < cur_vb:
                cur_vb = vb
        self._cur_vb = cur_vb
