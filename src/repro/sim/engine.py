"""The discrete-event simulation engine.

:class:`Simulator` owns simulated time, the event queue, and the RNG
registry.  Components schedule callbacks with :meth:`Simulator.schedule`
(absolute time) or :meth:`Simulator.call_later` (relative delay) and the
engine drives them in deterministic order until a time horizon or event
budget is exhausted.

Hot senders bypass the :class:`~repro.sim.events.Event` handle entirely:
:meth:`Simulator.schedule_raw` enqueues a pooled event-like object (one
per message delivery) and :meth:`Simulator.schedule_batch` enqueues a
whole gossip wave against a single shared batch record — see
:mod:`repro.sim.events` for the entry layouts.  The run loops below
operate directly on the heap so both layouts dispatch without an
intermediate wrapper.

Pass ``profile=True`` (or call :meth:`Simulator.enable_profiling`) to
collect per-event-type counters, callback timings and the queue-depth
high-water mark; read them back through :attr:`Simulator.metrics`.

Every simulator also carries a :class:`~repro.obs.recorder.TraceRecorder`
at :attr:`Simulator.trace`, created disabled.  Components bind it once at
construction and guard hook sites with ``if trace.enabled:`` — call
:meth:`Simulator.enable_tracing` *before* building the network to record
ground-truth block-lifecycle and gossip events.
"""

from __future__ import annotations

import math
import time
from heapq import heappop
from typing import Any, Callable, Optional, Sequence

from repro.errors import SimulationError
from repro.obs.recorder import TraceRecorder
from repro.sim.calqueue import MIN_BUCKETS, _SCAN_JUMP, _SHRINK_SHIFT, CalendarQueue
from repro.sim.events import (
    DEFAULT_PRIORITY,
    Event,
    EventQueue,
    resolve_queue_backend,
)
from repro.sim.profile import SimMetrics, SimProfile, event_label
from repro.sim.rng import RngRegistry


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Root seed for every RNG stream used in the run.
        profile: Collect per-event-type counters and timings (adds two
            clock reads per event; leave off for production campaigns).
        queue_backend: Event-queue implementation — ``"heap"`` or
            ``"calendar"`` (see :mod:`repro.sim.calqueue`).  ``None``
            defers to the ``REPRO_QUEUE_BACKEND`` environment variable,
            then the default (``heap``).  Both backends fire events in
            the identical ``(time, priority, sequence)`` order, so this
            only ever changes wall-clock cost, never outcomes.

    Attributes:
        now: Current simulated time in seconds.
        rng: Namespaced RNG registry rooted at ``seed``.
        trace: The run's :class:`TraceRecorder` (disabled by default).
        queue_backend: The resolved event-queue backend name.
        events_processed: Number of events fired so far.
        budget_exhausted: True when the most recent :meth:`run` stopped
            because it hit its ``max_events`` budget (the run was
            truncated, not drained).
    """

    def __init__(
        self,
        seed: int = 0,
        profile: bool = False,
        queue_backend: Optional[str] = None,
    ) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = RngRegistry(seed)
        self.events_processed: int = 0
        self.budget_exhausted: bool = False
        self.profile: Optional[SimProfile] = SimProfile() if profile else None
        self.trace = TraceRecorder()
        self._run_wall_seconds: float = 0.0
        self.queue_backend = resolve_queue_backend(queue_backend)
        self._queue: Any = (
            EventQueue() if self.queue_backend == "heap" else CalendarQueue()
        )
        self._running = False
        self._stopped = False

    def enable_profiling(self) -> None:
        """Turn on per-event-type profiling (idempotent)."""
        if self.profile is None:
            self.profile = SimProfile()

    def enable_tracing(self) -> None:
        """Turn on ground-truth trace recording (idempotent).

        The recorder object itself never changes — components that bound
        :attr:`trace` before this call start emitting immediately.
        Tracing never perturbs the simulation: hooks draw no randomness
        and schedule nothing, so the event and RNG order of a traced run
        is identical to an untraced one.
        """
        self.trace.enabled = True

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}s; current time is {self.now:.6f}s"
            )
        return self._queue.push(time, callback, priority)

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self.now + delay, callback, priority)

    def schedule_raw(
        self, time: float, event: Any, priority: int = DEFAULT_PRIORITY
    ) -> None:
        """Schedule a pooled event-like object at absolute ``time``.

        ``event`` must expose ``cancelled`` (fixed ``False``) and a
        zero-argument ``callback()`` method.  No :class:`Event` handle is
        allocated, so the entry cannot be cancelled — this is the
        fire-and-forget path for message deliveries.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}s; current time is {self.now:.6f}s"
            )
        self._queue.push_raw(time, event, priority)

    def schedule_batch(
        self,
        times: Sequence[float],
        batch: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule a whole wave against one shared ``batch`` record.

        Entry ``i`` fires ``batch.fire(i)`` at ``times[i]``; sequence
        numbers are assigned in index order, so the wave fires exactly as
        the equivalent scalar :meth:`schedule_raw` loop would.  ``times``
        must hold plain Python floats (``ndarray.tolist()`` them first):
        numpy scalars would slow every heap comparison for the entry's
        whole queue lifetime.
        """
        if times:
            earliest = min(times)
            if earliest < self.now:
                raise SimulationError(
                    f"cannot schedule event at {earliest:.6f}s; "
                    f"current time is {self.now:.6f}s"
                )
        self._queue.push_batch(times, batch, priority)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Fire events in order until the queue drains or a limit is hit.

        Args:
            until: Stop once the next event would fire after this time.
                The clock is advanced to ``until`` when the horizon is hit,
                or when the queue drains naturally before it.  A run
                truncated by ``max_events`` or :meth:`stop` leaves the
                clock at the last fired event.
            max_events: Stop after firing this many events (safety valve);
                check :attr:`budget_exhausted` to see whether it tripped.

        Raises:
            SimulationError: on re-entrant calls to :meth:`run`.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        self._stopped = False
        self.budget_exhausted = False
        drained = False
        started = time.perf_counter()
        try:
            if self.queue_backend == "heap":
                if self.profile is None:
                    drained = self._run_fast(until, max_events)
                else:
                    drained = self._run_profiled(until, max_events)
            elif self.profile is None:
                drained = self._run_fast_calendar(until, max_events)
            else:
                drained = self._run_profiled_calendar(until, max_events)
        finally:
            self._running = False
            self._run_wall_seconds += time.perf_counter() - started
        if until is not None and drained and self.now < until:
            # Queue drained naturally before the horizon: advance the clock
            # so wall-clock-like measurements (e.g. campaign duration) hold.
            # Truncated runs (max_events / stop) deliberately do not
            # advance — the remaining window was never simulated.
            self.now = until

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> bool:
        """Tight event loop (profiling off); returns True on natural drain.

        Operates directly on the queue's heap: one ``heappop`` per entry,
        no handle indirection.  Batch entries (arity 5) dispatch through
        ``batch.fire(index)``; everything else through ``callback()``.
        The heap list is bound once — the queue only ever mutates it in
        place, including compaction.
        """
        queue = self._queue
        heap = queue._heap
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        # `events_processed` is only read between runs (metrics, reports),
        # so the counter accumulates in a local and lands in one store —
        # the per-event attribute load/store pair was measurable.
        try:
            while True:
                if self._stopped:
                    return False
                if fired >= budget:
                    self.budget_exhausted = True
                    return False
                if not heap:
                    return True
                entry = heap[0]
                event_time = entry[0]
                if event_time > horizon:
                    self.now = horizon
                    return False
                heappop(heap)
                obj = entry[3]
                if obj.cancelled:
                    queue._cancelled -= 1
                    continue
                self.now = event_time
                if len(entry) == 5:
                    obj.fire(entry[4])
                else:
                    obj.callback()
                fired += 1
        finally:
            self.events_processed += fired

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Instrumented event loop; same semantics as :meth:`_run_fast`."""
        queue = self._queue
        heap = queue._heap
        profile = self.profile
        assert profile is not None
        counts = profile.event_counts
        seconds = profile.event_seconds
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        while True:
            if self._stopped:
                return False
            if fired >= budget:
                self.budget_exhausted = True
                return False
            depth = len(heap)
            if depth > profile.queue_high_water:
                profile.queue_high_water = depth
            if not heap:
                return True
            entry = heap[0]
            event_time = entry[0]
            if event_time > horizon:
                self.now = horizon
                return False
            heappop(heap)
            obj = entry[3]
            if obj.cancelled:
                queue._cancelled -= 1
                continue
            self.now = event_time
            if len(entry) == 5:
                label = obj.profile_label
                t0 = time.perf_counter()
                obj.fire(entry[4])
                elapsed = time.perf_counter() - t0
            else:
                callback = obj.callback
                label = getattr(obj, "profile_label", None)
                if label is None:
                    label = event_label(callback)
                t0 = time.perf_counter()
                callback()
                elapsed = time.perf_counter() - t0
            counts[label] = counts.get(label, 0) + 1
            seconds[label] = seconds.get(label, 0.0) + elapsed
            fired += 1
            self.events_processed += 1

    def _run_fast_calendar(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Tight calendar-backend loop; same semantics as :meth:`_run_fast`.

        Inlines :meth:`CalendarQueue.pop_entry`'s cursor walk so the hot
        path pays no per-event method call.  The queue's bucket table,
        mask, width and cursor are bound as locals and re-read whenever
        the queue's generation counter changes (a callback's push can
        trigger a rebuild) or a push behind the cursor pulls it back.
        The cursor local is written back to the queue at every pop —
        *before* the callback runs — so pushes and rebuilds inside
        callbacks always see a consistent cursor.  The drain boundary
        ``time * inv_width >= vb + 1`` is exactly the placement test
        ``int(time * inv_width) > vb`` (same float product; ``floor(x) >
        vb`` iff ``x >= vb + 1`` for ``x >= 0``), so ordering matches
        :meth:`CalendarQueue.pop_entry` bit for bit.
        """
        queue = self._queue
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        gen = queue._gen
        buckets = queue._buckets
        mask = queue._mask
        inv_width = queue._inv_width
        vb = queue._cur_vb
        horizon_vb = None if until is None else int(horizon * inv_width)
        scanned = 0
        try:
            while True:
                if self._stopped:
                    queue._cur_vb = vb
                    return False
                if fired >= budget:
                    self.budget_exhausted = True
                    queue._cur_vb = vb
                    return False
                if queue._count == 0:
                    queue._cur_vb = vb
                    return True
                if horizon_vb is not None and vb > horizon_vb:
                    # Everything left fires strictly after the horizon;
                    # park the cursor at the horizon's own year, never
                    # past it (the caller may schedule into that year).
                    if horizon_vb > queue._cur_vb:
                        queue._cur_vb = horizon_vb
                    self.now = horizon
                    return False
                bucket = buckets[vb & mask]
                if bucket:
                    entry = bucket[0]
                    event_time = entry[0]
                    if event_time * inv_width < vb + 1:
                        if event_time > horizon:
                            queue._cur_vb = vb
                            self.now = horizon
                            return False
                        heappop(bucket)
                        queue._count -= 1
                        obj = entry[3]
                        if obj.cancelled:
                            queue._cancelled -= 1
                            continue
                        queue._cur_vb = vb
                        queue._last_pop_time = event_time
                        self.now = event_time
                        if len(entry) == 5:
                            obj.fire(entry[4])
                        else:
                            obj.callback()
                        fired += 1
                        scanned = 0
                        if queue._gen != gen:
                            gen = queue._gen
                            buckets = queue._buckets
                            mask = queue._mask
                            inv_width = queue._inv_width
                            vb = queue._cur_vb
                            if until is not None:
                                horizon_vb = int(horizon * inv_width)
                        elif queue._cur_vb < vb:
                            # A push behind the cursor pulled it back.
                            vb = queue._cur_vb
                        continue
                # Bucket empty for this year (or its head belongs to a
                # later one): advance the cursor.
                vb += 1
                scanned += 1
                if scanned >= _SCAN_JUMP:
                    if (
                        queue._count < (mask + 1) >> _SHRINK_SHIFT
                        and mask + 1 > MIN_BUCKETS
                    ):
                        # Near-empty table paying real scan time: re-tune
                        # it (O(live) — cheap by the same condition)
                        # instead of running the O(n_buckets) jump scan.
                        queue._resizes += 1
                        queue._rebuild(shrink=True)
                        gen = queue._gen
                        buckets = queue._buckets
                        mask = queue._mask
                        inv_width = queue._inv_width
                        vb = queue._cur_vb
                        if until is not None:
                            horizon_vb = int(horizon * inv_width)
                        scanned = 0
                        continue
                    # Long empty stretch: jump to the earliest entry.
                    # Equal times share a bucket, so the earliest bucket
                    # head is the global minimum.  Only the logical
                    # prefix can hold entries — the physical table keeps
                    # its high-water capacity after a shrink.
                    earliest = None
                    for candidate in buckets[: mask + 1]:
                        if candidate and (
                            earliest is None or candidate[0] < earliest
                        ):
                            earliest = candidate[0]
                    if earliest is not None:
                        vb = int(earliest[0] * inv_width)
                    scanned = 0
        finally:
            self.events_processed += fired

    def _run_profiled_calendar(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Instrumented calendar loop; same semantics as :meth:`_run_fast_calendar`.

        Dispatches through :meth:`CalendarQueue.pop_entry` (profiling
        already pays two clock reads per event, so the method call is
        noise here) and adds the per-label counters plus the queue-depth
        high-water mark.
        """
        queue = self._queue
        profile = self.profile
        assert profile is not None
        counts = profile.event_counts
        seconds = profile.event_seconds
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        while True:
            if self._stopped:
                return False
            if fired >= budget:
                self.budget_exhausted = True
                return False
            depth = queue._count
            if depth > profile.queue_high_water:
                profile.queue_high_water = depth
            entry = queue.pop_entry(horizon)
            if entry is None:
                if queue.live_count == 0:
                    return True
                self.now = horizon  # horizon stop, not a drain
                return False
            event_time = entry[0]
            obj = entry[3]
            self.now = event_time
            if len(entry) == 5:
                label = obj.profile_label
                t0 = time.perf_counter()
                obj.fire(entry[4])
                elapsed = time.perf_counter() - t0
            else:
                callback = obj.callback
                label = getattr(obj, "profile_label", None)
                if label is None:
                    label = event_label(callback)
                t0 = time.perf_counter()
                callback()
                elapsed = time.perf_counter() - t0
            counts[label] = counts.get(label, 0) + 1
            seconds[label] = seconds.get(label, 0.0) + elapsed
            fired += 1
            self.events_processed += 1

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return self._queue.live_count

    def queue_stats(self) -> dict[str, float]:
        """Backend-portable queue counters (cold path, for ``repro.obs``).

        Both backends report the same keys — depth, live entries, total
        pushes, pending corpses and compactions; the calendar backend
        additionally populates resize count, bucket count and bucket
        width (the heap reports zeros for those).
        """
        return self._queue.stats()

    @property
    def metrics(self) -> SimMetrics:
        """Snapshot of the engine's performance counters.

        Always carries event totals and wall-clock throughput; the
        per-event-type breakdown and queue high-water mark are populated
        only when profiling is enabled.
        """
        wall = self._run_wall_seconds
        profile = self.profile
        return SimMetrics(
            events_processed=self.events_processed,
            simulated_seconds=self.now,
            run_wall_seconds=wall,
            events_per_second=(self.events_processed / wall) if wall > 0 else 0.0,
            profiled=profile is not None,
            event_counts=dict(profile.event_counts) if profile else {},
            event_seconds=dict(profile.event_seconds) if profile else {},
            queue_high_water=profile.queue_high_water if profile else None,
            queue_backend=self.queue_backend,
        )
