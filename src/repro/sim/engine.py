"""The discrete-event simulation engine.

:class:`Simulator` owns simulated time, the event queue, and the RNG
registry.  Components schedule callbacks with :meth:`Simulator.schedule`
(absolute time) or :meth:`Simulator.call_later` (relative delay) and the
engine drives them in deterministic order until a time horizon or event
budget is exhausted.

Hot senders bypass the :class:`~repro.sim.events.Event` handle entirely:
:meth:`Simulator.schedule_raw` enqueues a pooled event-like object (one
per message delivery) and :meth:`Simulator.schedule_batch` enqueues a
whole gossip wave against a single shared batch record — see
:mod:`repro.sim.events` for the entry layouts.  The run loops below
operate directly on the heap so both layouts dispatch without an
intermediate wrapper.

Pass ``profile=True`` (or call :meth:`Simulator.enable_profiling`) to
collect per-event-type counters, callback timings and the queue-depth
high-water mark; read them back through :attr:`Simulator.metrics`.

Every simulator also carries a :class:`~repro.obs.recorder.TraceRecorder`
at :attr:`Simulator.trace`, created disabled.  Components bind it once at
construction and guard hook sites with ``if trace.enabled:`` — call
:meth:`Simulator.enable_tracing` *before* building the network to record
ground-truth block-lifecycle and gossip events.
"""

from __future__ import annotations

import math
import time
from heapq import heappop
from typing import Any, Callable, Optional, Sequence

from repro.errors import SimulationError
from repro.obs.recorder import TraceRecorder
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.profile import SimMetrics, SimProfile, event_label
from repro.sim.rng import RngRegistry


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Root seed for every RNG stream used in the run.
        profile: Collect per-event-type counters and timings (adds two
            clock reads per event; leave off for production campaigns).

    Attributes:
        now: Current simulated time in seconds.
        rng: Namespaced RNG registry rooted at ``seed``.
        trace: The run's :class:`TraceRecorder` (disabled by default).
        events_processed: Number of events fired so far.
        budget_exhausted: True when the most recent :meth:`run` stopped
            because it hit its ``max_events`` budget (the run was
            truncated, not drained).
    """

    def __init__(self, seed: int = 0, profile: bool = False) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = RngRegistry(seed)
        self.events_processed: int = 0
        self.budget_exhausted: bool = False
        self.profile: Optional[SimProfile] = SimProfile() if profile else None
        self.trace = TraceRecorder()
        self._run_wall_seconds: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False

    def enable_profiling(self) -> None:
        """Turn on per-event-type profiling (idempotent)."""
        if self.profile is None:
            self.profile = SimProfile()

    def enable_tracing(self) -> None:
        """Turn on ground-truth trace recording (idempotent).

        The recorder object itself never changes — components that bound
        :attr:`trace` before this call start emitting immediately.
        Tracing never perturbs the simulation: hooks draw no randomness
        and schedule nothing, so the event and RNG order of a traced run
        is identical to an untraced one.
        """
        self.trace.enabled = True

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}s; current time is {self.now:.6f}s"
            )
        return self._queue.push(time, callback, priority)

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self.now + delay, callback, priority)

    def schedule_raw(
        self, time: float, event: Any, priority: int = DEFAULT_PRIORITY
    ) -> None:
        """Schedule a pooled event-like object at absolute ``time``.

        ``event`` must expose ``cancelled`` (fixed ``False``) and a
        zero-argument ``callback()`` method.  No :class:`Event` handle is
        allocated, so the entry cannot be cancelled — this is the
        fire-and-forget path for message deliveries.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}s; current time is {self.now:.6f}s"
            )
        self._queue.push_raw(time, event, priority)

    def schedule_batch(
        self,
        times: Sequence[float],
        batch: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule a whole wave against one shared ``batch`` record.

        Entry ``i`` fires ``batch.fire(i)`` at ``times[i]``; sequence
        numbers are assigned in index order, so the wave fires exactly as
        the equivalent scalar :meth:`schedule_raw` loop would.  ``times``
        must hold plain Python floats (``ndarray.tolist()`` them first):
        numpy scalars would slow every heap comparison for the entry's
        whole queue lifetime.
        """
        if times:
            earliest = min(times)
            if earliest < self.now:
                raise SimulationError(
                    f"cannot schedule event at {earliest:.6f}s; "
                    f"current time is {self.now:.6f}s"
                )
        self._queue.push_batch(times, batch, priority)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Fire events in order until the queue drains or a limit is hit.

        Args:
            until: Stop once the next event would fire after this time.
                The clock is advanced to ``until`` when the horizon is hit,
                or when the queue drains naturally before it.  A run
                truncated by ``max_events`` or :meth:`stop` leaves the
                clock at the last fired event.
            max_events: Stop after firing this many events (safety valve);
                check :attr:`budget_exhausted` to see whether it tripped.

        Raises:
            SimulationError: on re-entrant calls to :meth:`run`.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        self._stopped = False
        self.budget_exhausted = False
        drained = False
        started = time.perf_counter()
        try:
            if self.profile is None:
                drained = self._run_fast(until, max_events)
            else:
                drained = self._run_profiled(until, max_events)
        finally:
            self._running = False
            self._run_wall_seconds += time.perf_counter() - started
        if until is not None and drained and self.now < until:
            # Queue drained naturally before the horizon: advance the clock
            # so wall-clock-like measurements (e.g. campaign duration) hold.
            # Truncated runs (max_events / stop) deliberately do not
            # advance — the remaining window was never simulated.
            self.now = until

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> bool:
        """Tight event loop (profiling off); returns True on natural drain.

        Operates directly on the queue's heap: one ``heappop`` per entry,
        no handle indirection.  Batch entries (arity 5) dispatch through
        ``batch.fire(index)``; everything else through ``callback()``.
        The heap list is bound once — the queue only ever mutates it in
        place, including compaction.
        """
        queue = self._queue
        heap = queue._heap
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        # `events_processed` is only read between runs (metrics, reports),
        # so the counter accumulates in a local and lands in one store —
        # the per-event attribute load/store pair was measurable.
        try:
            while True:
                if self._stopped:
                    return False
                if fired >= budget:
                    self.budget_exhausted = True
                    return False
                if not heap:
                    return True
                entry = heap[0]
                event_time = entry[0]
                if event_time > horizon:
                    self.now = horizon
                    return False
                heappop(heap)
                obj = entry[3]
                if obj.cancelled:
                    queue._cancelled -= 1
                    continue
                self.now = event_time
                if len(entry) == 5:
                    obj.fire(entry[4])
                else:
                    obj.callback()
                fired += 1
        finally:
            self.events_processed += fired

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> bool:
        """Instrumented event loop; same semantics as :meth:`_run_fast`."""
        queue = self._queue
        heap = queue._heap
        profile = self.profile
        assert profile is not None
        counts = profile.event_counts
        seconds = profile.event_seconds
        horizon = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        while True:
            if self._stopped:
                return False
            if fired >= budget:
                self.budget_exhausted = True
                return False
            depth = len(heap)
            if depth > profile.queue_high_water:
                profile.queue_high_water = depth
            if not heap:
                return True
            entry = heap[0]
            event_time = entry[0]
            if event_time > horizon:
                self.now = horizon
                return False
            heappop(heap)
            obj = entry[3]
            if obj.cancelled:
                queue._cancelled -= 1
                continue
            self.now = event_time
            if len(entry) == 5:
                label = obj.profile_label
                t0 = time.perf_counter()
                obj.fire(entry[4])
                elapsed = time.perf_counter() - t0
            else:
                callback = obj.callback
                label = getattr(obj, "profile_label", None)
                if label is None:
                    label = event_label(callback)
                t0 = time.perf_counter()
                callback()
                elapsed = time.perf_counter() - t0
            counts[label] = counts.get(label, 0) + 1
            seconds[label] = seconds.get(label, 0.0) + elapsed
            fired += 1
            self.events_processed += 1

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return self._queue.live_count

    @property
    def metrics(self) -> SimMetrics:
        """Snapshot of the engine's performance counters.

        Always carries event totals and wall-clock throughput; the
        per-event-type breakdown and queue high-water mark are populated
        only when profiling is enabled.
        """
        wall = self._run_wall_seconds
        profile = self.profile
        return SimMetrics(
            events_processed=self.events_processed,
            simulated_seconds=self.now,
            run_wall_seconds=wall,
            events_per_second=(self.events_processed / wall) if wall > 0 else 0.0,
            profiled=profile is not None,
            event_counts=dict(profile.event_counts) if profile else {},
            event_seconds=dict(profile.event_seconds) if profile else {},
            queue_high_water=profile.queue_high_water if profile else None,
        )
