"""The discrete-event simulation engine.

:class:`Simulator` owns simulated time, the event queue, and the RNG
registry.  Components schedule callbacks with :meth:`Simulator.schedule`
(absolute time) or :meth:`Simulator.call_later` (relative delay) and the
engine drives them in deterministic order until a time horizon or event
budget is exhausted.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.rng import RngRegistry


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Root seed for every RNG stream used in the run.

    Attributes:
        now: Current simulated time in seconds.
        rng: Namespaced RNG registry rooted at ``seed``.
        events_processed: Number of events fired so far.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = RngRegistry(seed)
        self.events_processed: int = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}s; current time is {self.now:.6f}s"
            )
        return self._queue.push(time, callback, priority)

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self.now + delay, callback, priority)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Fire events in order until the queue drains or a limit is hit.

        Args:
            until: Stop once the next event would fire after this time.
                The clock is advanced to ``until`` when the horizon is hit.
            max_events: Stop after firing this many events (safety valve).

        Raises:
            SimulationError: on re-entrant calls to :meth:`run`.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self._queue.pop()
                if event is None:  # races only with cancel(); keep looping
                    continue
                self.now = event.time
                event.callback()
                fired += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until and self._queue.peek_time() is None:
            # Queue drained before the horizon: advance the clock anyway so
            # wall-clock-like measurements (e.g. campaign duration) hold.
            self.now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)
