"""Opt-in event-loop profiling.

Large campaigns (the ``large`` preset, mainnet-scale sweeps) live or die
by the throughput of the event loop, and "the simulation is slow" is not
actionable without knowing *which* event type burns the time.  This
module provides the observability layer behind ``Simulator(profile=True)``:

* per-event-type counters and cumulative callback seconds,
* event-loop wall-clock timing (events/second),
* the queue-depth high-water mark (memory pressure / backlog indicator).

Profiling is strictly opt-in: with it disabled the engine runs its tight
loop and only tracks the (two ``perf_counter`` calls per ``run``) wall
time needed for events/second.  Results are surfaced as
:attr:`repro.sim.engine.Simulator.metrics` and rendered by
:func:`repro.stats.format_event_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional


#: qualname-derived labels keyed by the callback's code object.  A fresh
#: lambda/bound method is created per scheduling, but they all share one
#: ``__code__`` per source location, so the cache is bounded by source
#: size while hitting on every event after the first of its kind.
_LABEL_CACHE: dict[object, str] = {}


def event_label(callback: Callable[[], None]) -> str:
    """Classify a scheduled callback into a stable event-type label.

    Typed callables (e.g. the network's delivery events) advertise a
    ``profile_label``; plain functions and bound methods fall back to
    their qualified name with any ``<locals>`` noise stripped.  The
    qualname derivation is cached per code object: the profiled loop
    calls this once per event, and re-deriving the label for every
    delivery lambda showed up in event-loop profiles itself.
    """
    label = getattr(callback, "profile_label", None)
    if label is not None:
        return str(label)
    func = getattr(callback, "__func__", callback)  # unwrap bound methods
    code = getattr(func, "__code__", None)
    if code is not None:
        cached = _LABEL_CACHE.get(code)
        if cached is not None:
            return cached
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        derived = type(callback).__name__
    else:
        derived = qualname.replace(".<locals>.", ".")
    if code is not None:
        _LABEL_CACHE[code] = derived
    return derived


class SimProfile:
    """Mutable per-run profiling accumulators (engine-internal)."""

    __slots__ = ("event_counts", "event_seconds", "queue_high_water")

    def __init__(self) -> None:
        #: events fired, by event-type label
        self.event_counts: dict[str, int] = {}
        #: cumulative callback seconds, by event-type label
        self.event_seconds: dict[str, float] = {}
        #: deepest queue observed at the top of the event loop
        self.queue_high_water: int = 0


@dataclass(frozen=True)
class SimMetrics:
    """Immutable snapshot of a simulator's performance counters.

    Attributes:
        events_processed: Total events fired since construction.
        simulated_seconds: Current simulated clock.
        run_wall_seconds: Wall-clock time spent inside :meth:`Simulator.run`
            (tracked even without profiling).
        events_per_second: Throughput over the accumulated run time; 0.0
            before any event has fired.
        profiled: Whether per-event-type profiling was enabled.
        event_counts: Events fired per event-type label (empty unless
            profiled).  When profiled, the counts sum to
            ``events_processed``.
        event_seconds: Cumulative callback seconds per event-type label
            (empty unless profiled).
        queue_high_water: Deepest event queue seen (``None`` unless
            profiled).
        queue_backend: Which event-queue implementation ran the loop
            (``"heap"`` or ``"calendar"``); informational — backends
            never change outcomes.
    """

    events_processed: int
    simulated_seconds: float
    run_wall_seconds: float
    events_per_second: float
    profiled: bool
    event_counts: Mapping[str, int] = field(default_factory=dict)
    event_seconds: Mapping[str, float] = field(default_factory=dict)
    queue_high_water: Optional[int] = None
    queue_backend: str = "heap"
