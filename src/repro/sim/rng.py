"""Namespaced random-number streams.

Every stochastic subsystem (mining lottery, network jitter, transaction
workload, NTP noise, ...) draws from its own named stream derived from a
single root seed.  This guarantees that adding or re-ordering draws in one
subsystem does not perturb the randomness seen by another, which keeps
experiments comparable across code changes — the property ablation benches
rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, namespace: str) -> int:
    """Derive a 64-bit child seed for ``namespace`` from ``root_seed``.

    Uses SHA-256 over ``"{root_seed}/{namespace}"`` so the mapping is stable
    across Python versions and processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}/{namespace}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of per-namespace ``numpy.random.Generator`` streams.

    Streams are memoised: asking twice for the same namespace returns the
    same generator object, so sequential draws within a subsystem continue
    where they left off.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, namespace: str) -> np.random.Generator:
        """Return the (memoised) generator for ``namespace``."""
        generator = self._streams.get(namespace)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, namespace))
            self._streams[namespace] = generator
        return generator

    def fork(self, namespace: str) -> "RngRegistry":
        """Return a new registry whose root is derived from ``namespace``.

        Useful to give each simulated node its own registry while staying
        deterministic under the top-level seed.
        """
        return RngRegistry(derive_seed(self.root_seed, namespace))
