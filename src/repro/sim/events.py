"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority, then by
scheduling order.  Determinism of the event order is what makes whole
simulation runs reproducible from a seed.

The heap stores plain tuples rather than rich objects: tuple comparison
is the single hottest operation in a large simulation, and native tuples
compare several times faster than generated dataclass ``__lt__`` methods.
Two entry layouts share one heap:

* ``(time, priority, sequence, event)`` — an ordinary entry.  ``event``
  is either an :class:`Event` handle or a pooled *event-like* object
  (``cancelled`` attribute + zero-argument ``callback()`` method) pushed
  through :meth:`EventQueue.push_raw`, which skips the handle allocation
  for fire-and-forget work such as message deliveries.
* ``(time, priority, sequence, batch, index)`` — one element of a batch
  pushed through :meth:`EventQueue.push_batch`.  ``batch`` is shared by
  the whole wave and must expose ``cancelled`` plus ``fire(index)``.

Sequence numbers are unique, so tuple comparison always resolves at the
third slot and the mixed-arity entries never compare their payloads.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Sequence

from repro.errors import SimulationError

#: Default event priority.  Lower numbers fire first among simultaneous events.
DEFAULT_PRIORITY = 100

#: Below this heap size, cancelled entries are never compacted: popping a
#: few dead timers is cheaper than rebuilding the heap, and it keeps the
#: "lazily removed" contract observable in small unit tests.
COMPACT_MIN_HEAP = 64


class Event:
    """A scheduled callback handle.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break among events with equal ``time``; lower first.
        sequence: Monotone scheduling counter; final tie-break.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the event loop skips it.

        Cancellation is O(1); the event stays in the heap until popped or
        until the owning queue compacts (see :meth:`EventQueue.push`).
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._cancelled += 1

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A priority queue of scheduled events.

    Wraps ``heapq`` with a monotone sequence counter so simultaneous events
    pop in scheduling order, which keeps runs deterministic.

    Cancelled entries are removed lazily: a counter tracks how many dead
    handles the heap still holds, ``live_count`` subtracts them, and
    :meth:`push` compacts the heap in place once the dead fraction
    crosses one half (long-lived cancelled timers — fetch timeouts whose
    block arrived — would otherwise accumulate for their full nominal
    delay).
    """

    def __init__(self) -> None:
        self._heap: list[Any] = []
        self._sequence = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Raw heap size, *including* lazily-removed cancelled entries."""
        return len(self._heap)

    @property
    def live_count(self) -> int:
        """Number of scheduled events that will actually fire."""
        count = len(self._heap) - self._cancelled
        return count if count > 0 else 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback, self)
        heap = self._heap
        heapq.heappush(heap, (time, priority, sequence, event))
        if self._cancelled * 2 > len(heap) and len(heap) >= COMPACT_MIN_HEAP:
            self._compact()
        return event

    def push_raw(self, time: float, event: Any, priority: int = DEFAULT_PRIORITY) -> None:
        """Schedule a pooled event-like object without an :class:`Event` handle.

        ``event`` must expose a ``cancelled`` attribute (normally a class
        attribute fixed at ``False``) and a zero-argument ``callback()``
        method.  There is no handle, so the entry cannot be cancelled —
        use :meth:`push` for anything that might need
        :meth:`Event.cancel`.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (time, priority, sequence, event))

    def push_batch(
        self,
        times: Sequence[float],
        batch: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule one ``(batch, index)`` entry per element of ``times``.

        ``batch`` is shared by every entry and must expose ``cancelled``
        (fixed ``False``) plus ``fire(index)``; entry ``i`` fires
        ``batch.fire(i)`` at ``times[i]``.  Entries receive consecutive
        sequence numbers in index order, so a batch fires in exactly the
        order ``len(times)`` scalar pushes of the same times would.

        When the batch rivals the existing heap in size the entries are
        appended and the whole heap re-heapified (O(n) beats k·log n);
        otherwise each entry is pushed individually.
        """
        heap = self._heap
        count = len(times)
        sequence = self._sequence
        self._sequence = sequence + count
        if count > len(heap):
            heap.extend(
                (times[i], priority, sequence + i, batch, i) for i in range(count)
            )
            heapq.heapify(heap)
        else:
            heappush = heapq.heappush
            for i in range(count):
                heappush(heap, (times[i], priority, sequence + i, batch, i))

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                return event  # type: ignore[no-any-return]
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if heap:
            return float(heap[0][0])
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._cancelled = 0

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place).

        In-place slice assignment matters: the engine's run loop holds a
        direct reference to the heap list, which must stay valid across a
        compaction triggered by a push inside an event callback.
        Batch/raw entries carry ``cancelled = False`` as a class
        attribute, so the filter is uniform across entry layouts.
        Compaction preserves the ``(time, priority, sequence)`` keys of
        every surviving entry, so firing order is unchanged.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
