"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority, then by
scheduling order.  Determinism of the event order is what makes whole
simulation runs reproducible from a seed.

The heap stores plain tuples rather than rich objects: tuple comparison
is the single hottest operation in a large simulation, and native tuples
compare several times faster than generated dataclass ``__lt__`` methods.
Two entry layouts share one heap:

* ``(time, priority, sequence, event)`` — an ordinary entry.  ``event``
  is either an :class:`Event` handle or a pooled *event-like* object
  (``cancelled`` attribute + zero-argument ``callback()`` method) pushed
  through :meth:`EventQueue.push_raw`, which skips the handle allocation
  for fire-and-forget work such as message deliveries.
* ``(time, priority, sequence, batch, index)`` — one element of a batch
  pushed through :meth:`EventQueue.push_batch`.  ``batch`` is shared by
  the whole wave and must expose ``cancelled`` plus ``fire(index)``.

Sequence numbers are unique, so tuple comparison always resolves at the
third slot and the mixed-arity entries never compare their payloads.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError

#: Default event priority.  Lower numbers fire first among simultaneous events.
DEFAULT_PRIORITY = 100

#: Recognised event-queue backends.  ``heap`` is the binary heap below;
#: ``calendar`` is :class:`repro.sim.calqueue.CalendarQueue`, the O(1)
#: amortised-insert timing wheel.  Both drain entries in the identical
#: ``(time, priority, sequence)`` total order (differential-tested), so
#: the backend choice can never change a simulation's outcome — only its
#: wall-clock cost.
QUEUE_BACKENDS: tuple[str, ...] = ("heap", "calendar")

#: Backend used when neither the config nor the environment chooses one.
DEFAULT_QUEUE_BACKEND = "heap"

#: Environment override consulted when no explicit backend is configured
#: (the CI determinism matrix sets this to run every pin on both
#: backends).
QUEUE_BACKEND_ENV = "REPRO_QUEUE_BACKEND"


def resolve_queue_backend(value: Optional[str] = None) -> str:
    """Resolve the event-queue backend name.

    Precedence: an explicit ``value`` wins, then the
    :data:`QUEUE_BACKEND_ENV` environment variable, then
    :data:`DEFAULT_QUEUE_BACKEND`.  Explicit-over-environment matters:
    the CI matrix flips whole test runs through the environment, while a
    test comparing the two backends pins each side explicitly.

    Raises:
        ConfigurationError: for unrecognised backend names.
    """
    backend = value or os.environ.get(QUEUE_BACKEND_ENV) or DEFAULT_QUEUE_BACKEND
    if backend not in QUEUE_BACKENDS:
        raise ConfigurationError(
            f"unknown queue backend {backend!r}; expected one of "
            f"{', '.join(QUEUE_BACKENDS)}"
        )
    return backend

#: Below this heap size, cancelled entries are never compacted: popping a
#: few dead timers is cheaper than rebuilding the heap, and it keeps the
#: "lazily removed" contract observable in small unit tests.
COMPACT_MIN_HEAP = 64


class Event:
    """A scheduled callback handle.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break among events with equal ``time``; lower first.
        sequence: Monotone scheduling counter; final tie-break.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the event loop skips it.

        Cancellation is O(1); the event stays in the heap until popped or
        until the owning queue compacts (see :meth:`EventQueue.push`).
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._cancelled += 1

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A priority queue of scheduled events.

    Wraps ``heapq`` with a monotone sequence counter so simultaneous events
    pop in scheduling order, which keeps runs deterministic.

    Cancelled entries are removed lazily: a counter tracks how many dead
    handles the heap still holds, ``live_count`` subtracts them, and
    :meth:`push` compacts the heap in place once the dead fraction
    crosses one half (long-lived cancelled timers — fetch timeouts whose
    block arrived — would otherwise accumulate for their full nominal
    delay).
    """

    #: Backend tag reported through ``stats()`` and ``repro.obs``.
    backend = "heap"

    def __init__(self) -> None:
        self._heap: list[Any] = []
        self._sequence = 0
        self._cancelled = 0
        self._compactions = 0

    def __len__(self) -> int:
        """Raw heap size, *including* lazily-removed cancelled entries."""
        return len(self._heap)

    @property
    def live_count(self) -> int:
        """Number of scheduled events that will actually fire."""
        count = len(self._heap) - self._cancelled
        return count if count > 0 else 0

    @property
    def pending_events(self) -> int:
        """Alias of :attr:`live_count` (the backend-portable spelling)."""
        count = len(self._heap) - self._cancelled
        return count if count > 0 else 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback, self)
        heap = self._heap
        heapq.heappush(heap, (time, priority, sequence, event))
        if self._cancelled * 2 > len(heap) and len(heap) >= COMPACT_MIN_HEAP:
            self._compact()
        return event

    def push_raw(self, time: float, event: Any, priority: int = DEFAULT_PRIORITY) -> None:
        """Schedule a pooled event-like object without an :class:`Event` handle.

        ``event`` must expose a ``cancelled`` attribute (normally a class
        attribute fixed at ``False``) and a zero-argument ``callback()``
        method.  There is no handle, so the entry cannot be cancelled —
        use :meth:`push` for anything that might need
        :meth:`Event.cancel`.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (time, priority, sequence, event))

    def push_batch(
        self,
        times: Sequence[float],
        batch: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule one ``(batch, index)`` entry per element of ``times``.

        ``batch`` is shared by every entry and must expose ``cancelled``
        (fixed ``False``) plus ``fire(index)``; entry ``i`` fires
        ``batch.fire(i)`` at ``times[i]``.  Entries receive consecutive
        sequence numbers in index order, so a batch fires in exactly the
        order ``len(times)`` scalar pushes of the same times would.

        When the batch rivals the existing heap in size the entries are
        appended and the whole heap re-heapified (O(n) beats k·log n);
        otherwise each entry is pushed individually.
        """
        heap = self._heap
        count = len(times)
        sequence = self._sequence
        self._sequence = sequence + count
        if count > len(heap):
            heap.extend(
                (times[i], priority, sequence + i, batch, i) for i in range(count)
            )
            heapq.heapify(heap)
        else:
            heappush = heapq.heappush
            for i in range(count):
                heappush(heap, (times[i], priority, sequence + i, batch, i))

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                return event  # type: ignore[no-any-return]
            self._cancelled -= 1
        return None

    def pop_until(self, horizon: float) -> list[Any]:
        """Drain and return every live entry with ``time <= horizon``.

        Entries come back in firing order, in raw tuple form (arity 4 or
        5 — see the module docstring).  Cancelled corpses encountered on
        the way are dropped, and ``self._cancelled`` is decremented
        *per corpse as it is removed* — never batched up and subtracted
        after the loop.  Deferred subtraction double-counts: a compaction
        triggered mid-drain (the dead fraction can cross one half while
        corpses pop) resets the counter to zero, and subtracting the
        locally-tallied corpses afterwards would drive it negative,
        permanently inflating :attr:`pending_events`.
        """
        heap = self._heap
        heappop = heapq.heappop
        drained: list[Any] = []
        while heap and heap[0][0] <= horizon:
            entry = heappop(heap)
            if entry[3].cancelled:
                self._cancelled -= 1
                if (
                    self._cancelled * 2 > len(heap)
                    and len(heap) >= COMPACT_MIN_HEAP
                ):
                    self._compact()
                continue
            drained.append(entry)
        return drained

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if heap:
            return float(heap[0][0])
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._cancelled = 0

    def stats(self) -> dict[str, float]:
        """Backend-portable queue counters (see ``CalendarQueue.stats``)."""
        return {
            "depth": float(len(self._heap)),
            "live": float(self.live_count),
            "pushed_total": float(self._sequence),
            "cancelled_pending": float(self._cancelled),
            "compactions_total": float(self._compactions),
            "resizes_total": 0.0,
            "buckets": 0.0,
            "width": 0.0,
        }

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place).

        In-place slice assignment matters: the engine's run loop holds a
        direct reference to the heap list, which must stay valid across a
        compaction triggered by a push inside an event callback.
        Batch/raw entries carry ``cancelled = False`` as a class
        attribute, so the filter is uniform across entry layouts.
        Compaction preserves the ``(time, priority, sequence)`` keys of
        every surviving entry, so firing order is unchanged.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1
