"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority, then by
scheduling order.  Determinism of the event order is what makes whole
simulation runs reproducible from a seed.

The heap stores plain ``(time, priority, sequence, event)`` tuples rather
than rich objects: tuple comparison is the single hottest operation in a
large simulation, and native tuples compare several times faster than
generated dataclass ``__lt__`` methods.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError

#: Default event priority.  Lower numbers fire first among simultaneous events.
DEFAULT_PRIORITY = 100


class Event:
    """A scheduled callback handle.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break among events with equal ``time``; lower first.
        sequence: Monotone scheduling counter; final tie-break.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the event loop skips it.

        Cancellation is O(1); the event stays in the heap until popped.
        """
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Wraps ``heapq`` with a monotone sequence counter so simultaneous events
    pop in scheduling order, which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        sequence = next(self._counter)
        event = Event(time, priority, sequence, callback)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
