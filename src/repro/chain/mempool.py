"""Transaction pool with per-sender nonce sequencing.

Mirrors the behaviour that makes transaction reordering matter (§III-C2):
a transaction whose nonce is ahead of the sender's next expected nonce is
*parked* (Geth calls this the "queued" region) and only becomes *pending*
— eligible for inclusion — once every predecessor has been seen.  Miners
draw from the pending region in descending gas-price order.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chain.transaction import Transaction
from repro.errors import ValidationError


#: Geth's default transaction-pool capacity (``--txpool.globalslots``).
DEFAULT_MEMPOOL_CAPACITY = 4096

#: When the pool overflows, evict down to this fraction of capacity in
#: one batch, so the O(n) eviction scan runs rarely.
EVICTION_LOW_WATER = 0.95


class Mempool:
    """Nonce-aware transaction pool with price-based eviction.

    Like Geth's txpool, capacity is bounded: when the pending region
    overflows, the cheapest sender *tails* are dropped (never a middle
    nonce, so the gapless-prefix invariant holds).  On a busy network the
    pool therefore carries a standing backlog of cheap transactions —
    which is why real miners never produce naturally empty blocks.

    Attributes:
        pending: Executable transactions, keyed by hash.
    """

    def __init__(self, capacity: int = DEFAULT_MEMPOOL_CAPACITY) -> None:
        if capacity <= 0:
            raise ValidationError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.pending: dict[str, Transaction] = {}
        # sender -> {nonce: tx} transactions waiting on a nonce gap
        self._queued: dict[str, dict[int, Transaction]] = {}
        # sender -> next nonce that would be executable
        self._next_nonce: dict[str, int] = {}
        #: Every hash currently tracked (pending + queued).  Hot gossip
        #: loops probe this set directly; mutate only via the pool's methods.
        self.known_hashes: set[str] = set()

    def __len__(self) -> int:
        return len(self.pending)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self.known_hashes

    @property
    def queued_count(self) -> int:
        """Number of transactions parked behind a nonce gap."""
        return sum(len(by_nonce) for by_nonce in self._queued.values())

    def next_nonce(self, sender: str) -> int:
        """Next executable nonce expected from ``sender``."""
        return self._next_nonce.get(sender, 0)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def add(self, tx: Transaction) -> bool:
        """Insert ``tx``; returns True when it was new (pending or queued).

        Stale transactions (nonce already executed) and duplicates are
        dropped, as a real node would drop them.

        Raises:
            ValidationError: for structurally invalid transactions.
        """
        if tx.gas_used <= 0:
            raise ValidationError(f"{tx!r}: gas_used must be positive")
        if tx.tx_hash in self.known_hashes:
            return False
        expected = self._next_nonce.get(tx.sender, 0)
        if tx.nonce < expected:
            return False  # stale: already executable/executed
        self.known_hashes.add(tx.tx_hash)
        if tx.nonce == expected:
            self.pending[tx.tx_hash] = tx
            self._next_nonce[tx.sender] = expected + 1
            self._promote(tx.sender)
        else:
            self._queued.setdefault(tx.sender, {})[tx.nonce] = tx
        if len(self.pending) > self.capacity:
            self._evict_overflow()
        return True

    def _evict_overflow(self) -> None:
        """Drop the cheapest sender tails until below the low-water mark.

        Only a sender's highest pending nonce is evictable, so pending
        prefixes stay gapless.  Evicted hashes are forgotten, allowing a
        resubmission to be accepted later (as in Geth).
        """
        target = int(self.capacity * EVICTION_LOW_WATER)
        while len(self.pending) > target:
            # Highest pending nonce per sender = the evictable frontier.
            tail_nonce: dict[str, int] = {}
            for tx in self.pending.values():
                current = tail_nonce.get(tx.sender, -1)
                if tx.nonce > current:
                    tail_nonce[tx.sender] = tx.nonce
            tails = sorted(
                (
                    tx
                    for tx in self.pending.values()
                    if tx.nonce == tail_nonce[tx.sender]
                ),
                key=lambda tx: tx.gas_price,
            )
            evicted_any = False
            for tx in tails:
                if len(self.pending) <= target:
                    break
                del self.pending[tx.tx_hash]
                self.known_hashes.discard(tx.tx_hash)
                self._next_nonce[tx.sender] = tx.nonce
                evicted_any = True
            if not evicted_any:  # pragma: no cover - defensive
                break

    def _promote(self, sender: str) -> None:
        """Move queued transactions made executable by a new arrival."""
        queued = self._queued.get(sender)
        if not queued:
            return
        nonce = self._next_nonce[sender]
        while nonce in queued:
            tx = queued.pop(nonce)
            self.pending[tx.tx_hash] = tx
            nonce += 1
        self._next_nonce[sender] = nonce
        if not queued:
            del self._queued[sender]

    # ------------------------------------------------------------------ #
    # Selection / settlement
    # ------------------------------------------------------------------ #

    def select(self, gas_limit: int, max_count: Optional[int] = None) -> list[Transaction]:
        """Pick pending transactions for a block, greedy by gas price.

        Per-sender nonce order is preserved: a sender's transactions are
        taken as a gapless prefix, mirroring Geth's price-sorted heads.
        """
        per_sender: dict[str, list[Transaction]] = {}
        for tx in self.pending.values():
            per_sender.setdefault(tx.sender, []).append(tx)
        for txs in per_sender.values():
            txs.sort(key=lambda tx: tx.nonce, reverse=True)  # pop() yields lowest

        chosen: list[Transaction] = []
        gas_left = gas_limit
        heads = {sender: txs[-1] for sender, txs in per_sender.items()}
        while heads:
            if max_count is not None and len(chosen) >= max_count:
                break
            sender, head = max(
                heads.items(), key=lambda item: (item[1].gas_price, item[0])
            )
            if head.gas_used > gas_left:
                # This sender's next tx does not fit; its successors cannot
                # be taken either (nonce order), so drop the whole sender.
                del heads[sender]
                continue
            chosen.append(per_sender[sender].pop())
            gas_left -= head.gas_used
            if per_sender[sender]:
                heads[sender] = per_sender[sender][-1]
            else:
                del heads[sender]
        return chosen

    def remove_included(self, txs: Iterable[Transaction]) -> None:
        """Drop transactions that a new canonical block included.

        A block may include transactions this node never saw (mined from
        another node's view); their nonces still advance the sender's
        account frontier, which evicts any *different* local transaction
        occupying a now-consumed nonce and unparks queued successors.
        """
        included_frontier: dict[str, int] = {}
        for tx in txs:
            self.pending.pop(tx.tx_hash, None)
            queued = self._queued.get(tx.sender)
            if queued:
                queued.pop(tx.nonce, None)
                if not queued:
                    del self._queued[tx.sender]
            previous = included_frontier.get(tx.sender, -1)
            if tx.nonce > previous:
                included_frontier[tx.sender] = tx.nonce
        if not included_frontier:
            return
        # Evict local txs whose nonce the chain already consumed with a
        # different transaction — one scan of the pool for the whole
        # block, not one per sender (this runs on every block import).
        stale = [
            tx_hash
            for tx_hash, pending_tx in self.pending.items()
            if pending_tx.nonce <= included_frontier.get(pending_tx.sender, -1)
        ]
        for tx_hash in stale:
            del self.pending[tx_hash]
        for sender, max_nonce in included_frontier.items():
            if self._next_nonce.get(sender, 0) < max_nonce + 1:
                self._next_nonce[sender] = max_nonce + 1
            self._promote(sender)

    def reinject(self, txs: Iterable[Transaction]) -> None:
        """Return transactions from reorged-out blocks to the pool."""
        for tx in txs:
            expected = self._next_nonce.get(tx.sender, 0)
            if tx.nonce < expected:
                self._next_nonce[tx.sender] = tx.nonce
            self.known_hashes.discard(tx.tx_hash)
            self.add(tx)
