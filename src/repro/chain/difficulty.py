"""Difficulty adjustment, including the "difficulty bomb".

Implements the Byzantium/Constantinople difficulty rule (EIP-100 family)
in simplified continuous form:

* the parent difficulty is nudged up when blocks arrive faster than the
  9-second uncle-aware target window and down when slower, in steps of
  ``parent_difficulty / 2048``;
* an exponential *bomb* term doubles every 100,000 blocks past a fake-block
  offset.  Constantinople (EIP-1234, Feb 2019) pushed the bomb 5,000,000
  blocks back, which is the change the paper credits for the inter-block
  time dropping from 14.3 s to 13.3 s (§III-C1).

The simulator's mining lottery operates on hash-power shares, so absolute
difficulty only matters relatively: fork choice compares summed difficulty,
and the bomb lets the ablation bench reproduce the pre/post-Constantinople
inter-block-time shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Difficulty adjustment quotient (Ethereum constant).
ADJUSTMENT_QUOTIENT = 2048

#: Lower bound of the adjustment factor (Ethereum constant).
MIN_ADJUSTMENT = -99

#: Blocks between bomb doublings (Ethereum constant: 100,000).
BOMB_PERIOD = 100_000

#: Bomb delay after EIP-1234 (Constantinople): 5,000,000 blocks.
CONSTANTINOPLE_BOMB_DELAY = 5_000_000

#: Bomb delay after EIP-649 (Byzantium): 3,000,000 blocks.
BYZANTIUM_BOMB_DELAY = 3_000_000


@dataclass(frozen=True)
class DifficultyConfig:
    """Parameters of the difficulty rule.

    Attributes:
        bomb_delay: Fake-block offset subtracted from the height before the
            bomb exponent is computed (EIP-649/1234 delays).
        minimum_difficulty: Floor below which difficulty never falls.
        uncle_target_window: Seconds per adjustment step in the EIP-100
            rule (9 s on mainnet).
    """

    bomb_delay: int = CONSTANTINOPLE_BOMB_DELAY
    minimum_difficulty: float = 131_072.0
    uncle_target_window: float = 9.0

    def __post_init__(self) -> None:
        if self.minimum_difficulty <= 0:
            raise ConfigurationError("minimum difficulty must be positive")
        if self.uncle_target_window <= 0:
            raise ConfigurationError("uncle target window must be positive")


def bomb_component(height: int, config: DifficultyConfig) -> float:
    """The exponential bomb term at ``height`` under ``config``."""
    fake_height = max(height - config.bomb_delay, 0)
    exponent = fake_height // BOMB_PERIOD - 2
    if exponent < 0:
        return 0.0
    return float(2**exponent)


def next_difficulty(
    parent_difficulty: float,
    parent_timestamp: float,
    timestamp: float,
    height: int,
    parent_has_uncles: bool = False,
    config: DifficultyConfig | None = None,
) -> float:
    """Difficulty of a block at ``height`` following the given parent.

    Args:
        parent_difficulty: Difficulty of the parent block.
        parent_timestamp: Seal time of the parent.
        timestamp: Seal time of the new block; must exceed the parent's.
        height: Height of the new block.
        parent_has_uncles: EIP-100 adds one window of slack when the
            parent references uncles.
        config: Rule parameters; defaults to post-Constantinople mainnet.
    """
    cfg = config or DifficultyConfig()
    if timestamp <= parent_timestamp:
        timestamp = parent_timestamp + 1e-3
    uncle_bonus = 2 if parent_has_uncles else 1
    adjustment = max(
        uncle_bonus - int((timestamp - parent_timestamp) / cfg.uncle_target_window),
        MIN_ADJUSTMENT,
    )
    difficulty = parent_difficulty + parent_difficulty / ADJUSTMENT_QUOTIENT * (
        adjustment
    )
    difficulty += bomb_component(height, cfg)
    return max(difficulty, cfg.minimum_difficulty)
