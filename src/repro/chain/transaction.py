"""Transaction data model.

A transaction carries the fields the study's analyses depend on: the
sender, the sender's monotonically increasing nonce (used to detect
out-of-order receptions, §III-C2), the gas price (miners order by it) and
an approximate wire size (drives serialisation delay).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Typical encoded transaction size on the 2019 mainnet, bytes.
DEFAULT_TX_SIZE = 250


def _tx_hash(sender: str, nonce: int) -> str:
    """Deterministic transaction hash from its identity fields.

    Real Ethereum hashes the full signed payload; for the simulator the
    (sender, nonce) pair is already unique per network run, which is all the
    dissemination and analysis layers need.
    """
    digest = hashlib.blake2b(
        f"tx/{sender}/{nonce}".encode("utf-8"), digest_size=16
    ).hexdigest()
    return "0x" + digest


@dataclass(frozen=True)
class Transaction:
    """An Ethereum-style transaction.

    Attributes:
        sender: Account identifier of the originator.
        nonce: Sender-scoped sequence number; consecutive per sender.
        gas_price: Fee bid in wei-per-gas; miners sort descending by it.
        gas_used: Gas the transaction consumes when executed.
        size_bytes: Encoded size, used by the bandwidth model.
        created_at: True simulated time at which the sender created it.
        tx_hash: Unique identifier, derived from ``(sender, nonce)``.
    """

    sender: str
    nonce: int
    gas_price: float = 1.0
    gas_used: int = 21_000
    size_bytes: int = DEFAULT_TX_SIZE
    created_at: float = 0.0
    tx_hash: str = field(default="")

    def __post_init__(self) -> None:
        if self.nonce < 0:
            raise ValueError(f"nonce must be non-negative, got {self.nonce!r}")
        if not self.tx_hash:
            object.__setattr__(self, "tx_hash", _tx_hash(self.sender, self.nonce))

    def __repr__(self) -> str:  # keep log lines short
        return f"Tx({self.sender}#{self.nonce})"
