"""Protocol validation of blocks and transactions.

Validation here models the checks a Geth node performs before relaying:
structural sanity, parent linkage, timestamp monotonicity, gas accounting
and uncle-reference validity.  A measurement node running this code is
indistinguishable from a regular client — it accepts exactly what the
network accepts (§II, ethical considerations).

Validation cost matters to the study: validating a full block takes time
proportional to its gas, which is the latency empty-block miners skip
(§III-C3).  :func:`validation_delay` quantifies that cost for the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.forkchoice import MAX_UNCLE_DEPTH, BlockTree
from repro.chain.transaction import Transaction
from repro.errors import ValidationError

#: Seconds of execution time per unit of gas (calibrated so a full scaled
#: 2M-gas block takes ~160 ms to import, matching 2019-era Geth times for
#: the real 8M-gas blocks).
SECONDS_PER_GAS = 8e-8

#: Fixed per-block verification overhead (PoW check, header checks).
BLOCK_VERIFY_OVERHEAD = 0.015


@dataclass(frozen=True)
class ValidationConfig:
    """Tunable validation-cost parameters."""

    seconds_per_gas: float = SECONDS_PER_GAS
    verify_overhead: float = BLOCK_VERIFY_OVERHEAD


def validate_transaction(tx: Transaction) -> None:
    """Structural checks on a transaction.

    Raises:
        ValidationError: when a field is out of range.
    """
    if tx.nonce < 0:
        raise ValidationError(f"{tx!r}: negative nonce")
    if tx.gas_price < 0:
        raise ValidationError(f"{tx!r}: negative gas price")
    if tx.gas_used <= 0:
        raise ValidationError(f"{tx!r}: gas_used must be positive")
    if tx.size_bytes <= 0:
        raise ValidationError(f"{tx!r}: size must be positive")


def validate_block(block: Block, tree: BlockTree) -> None:
    """Full block validation against a node's local tree.

    Checks parent linkage, height continuity, timestamp monotonicity,
    gas-limit compliance, and that each referenced uncle is known, in
    range, and not an ancestor.

    Raises:
        ValidationError: on any violation.
    """
    parent = tree.get(block.parent_hash)
    if parent is None:
        raise ValidationError(f"{block!r}: unknown parent {block.parent_hash!r}")
    if block.height != parent.height + 1:
        raise ValidationError(
            f"{block!r}: height {block.height} does not follow parent "
            f"height {parent.height}"
        )
    if block.timestamp < parent.timestamp:
        raise ValidationError(
            f"{block!r}: timestamp {block.timestamp} precedes parent's "
            f"{parent.timestamp}"
        )
    if block.gas_used > block.gas_limit:
        raise ValidationError(
            f"{block!r}: gas used {block.gas_used} exceeds limit {block.gas_limit}"
        )
    if block.difficulty <= 0:
        raise ValidationError(f"{block!r}: non-positive difficulty")
    for tx in block.transactions:
        validate_transaction(tx)
    _validate_uncles(block, parent, tree)


def _validate_uncles(block: Block, parent: Block, tree: BlockTree) -> None:
    if not block.uncle_hashes:
        # The ancestor walk below exists only to reject uncles; blocks
        # without uncle references (the overwhelming majority) skip it.
        return
    ancestor_hashes = {parent.block_hash}
    min_height = max(block.height - MAX_UNCLE_DEPTH, 0)
    for ancestor in tree.ancestors(parent.block_hash, MAX_UNCLE_DEPTH):
        ancestor_hashes.add(ancestor.block_hash)
    seen: set[str] = set()
    for uncle_hash in block.uncle_hashes:
        if uncle_hash in seen:
            raise ValidationError(f"{block!r}: duplicate uncle {uncle_hash!r}")
        seen.add(uncle_hash)
        uncle = tree.get(uncle_hash)
        if uncle is None:
            raise ValidationError(f"{block!r}: unknown uncle {uncle_hash!r}")
        if uncle_hash in ancestor_hashes:
            raise ValidationError(f"{block!r}: uncle {uncle_hash!r} is an ancestor")
        if not (min_height <= uncle.height < block.height):
            raise ValidationError(
                f"{block!r}: uncle height {uncle.height} outside the "
                f"[{min_height}, {block.height}) window"
            )


def validation_delay(block: Block, config: ValidationConfig | None = None) -> float:
    """Simulated seconds a node spends validating ``block`` before relay.

    Empty blocks cost only the fixed overhead, which is the propagation
    head-start §III-C3 attributes to empty-block miners.
    """
    cfg = config or ValidationConfig()
    return cfg.verify_overhead + block.gas_used * cfg.seconds_per_gas
