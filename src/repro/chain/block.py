"""Block data model.

Blocks carry the subset of Ethereum header fields the study needs: height,
parent link, miner identity, difficulty, timestamp, gas usage, uncle
references and the transaction body.  Sizes are approximated from content
so the bandwidth model penalises full blocks versus empty blocks — the
propagation advantage §III-C3 identifies as an incentive for empty-block
mining.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from repro.chain.transaction import Transaction

#: Encoded size of an empty block (header + RLP scaffolding), bytes.
EMPTY_BLOCK_SIZE = 540

#: Gas limit of April-2019 mainnet blocks.
DEFAULT_GAS_LIMIT = 8_000_000

#: Hash of the synthetic genesis block's (absent) parent.
GENESIS_PARENT_HASH = "0x" + "00" * 16


def _block_hash(miner: str, height: int, parent_hash: str, salt: int) -> str:
    """Deterministic block hash.

    ``salt`` distinguishes multiple blocks a single miner produces at the
    same height (the one-miner forks of §III-C5).
    """
    digest = hashlib.blake2b(
        f"block/{miner}/{height}/{parent_hash}/{salt}".encode("utf-8"),
        digest_size=16,
    ).hexdigest()
    return "0x" + digest


@dataclass(frozen=True)
class Block:
    """An Ethereum-style block.

    Attributes:
        height: Block number; genesis is 0.
        parent_hash: Hash of the parent block.
        miner: Identifier of the producing miner or mining pool.
        difficulty: Mining difficulty of this block.
        timestamp: True simulated time at which the block was sealed.
        transactions: Included transactions, in execution order.
        uncle_hashes: Hashes of referenced uncle blocks (max 2).
        gas_limit: Block gas limit.
        salt: Disambiguates same-miner same-height blocks.
        block_hash: Unique identifier, derived deterministically.
    """

    height: int
    parent_hash: str
    miner: str
    difficulty: float
    timestamp: float
    transactions: tuple[Transaction, ...] = ()
    uncle_hashes: tuple[str, ...] = ()
    gas_limit: int = DEFAULT_GAS_LIMIT
    salt: int = 0
    block_hash: str = field(default="")

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError(f"height must be non-negative, got {self.height!r}")
        if len(self.uncle_hashes) > 2:
            raise ValueError("a block may reference at most two uncles")
        if not self.block_hash:
            object.__setattr__(
                self,
                "block_hash",
                _block_hash(self.miner, self.height, self.parent_hash, self.salt),
            )
        # Blocks are immutable, so derived quantities that would otherwise
        # be recomputed on every send/validate are cached up front.
        object.__setattr__(
            self, "_gas_used", sum(tx.gas_used for tx in self.transactions)
        )
        object.__setattr__(
            self,
            "_size_bytes",
            EMPTY_BLOCK_SIZE + sum(tx.size_bytes for tx in self.transactions),
        )

    @property
    def is_empty(self) -> bool:
        """True when the block includes no transactions (§III-C3)."""
        return not self.transactions

    @property
    def gas_used(self) -> int:
        """Total gas consumed by the included transactions."""
        return self._gas_used  # type: ignore[attr-defined]

    @property
    def size_bytes(self) -> int:
        """Approximate encoded size: header plus transaction payloads."""
        return self._size_bytes  # type: ignore[attr-defined]

    @property
    def tx_hashes(self) -> tuple[str, ...]:
        return tuple(tx.tx_hash for tx in self.transactions)

    def __repr__(self) -> str:
        kind = "empty " if self.is_empty else ""
        return (
            f"Block(#{self.height} {kind}by={self.miner} "
            f"hash={self.block_hash[:10]}…)"
        )


def make_genesis(difficulty: float = 1.0, timestamp: float = 0.0) -> Block:
    """Create the canonical genesis block shared by every node in a run."""
    return Block(
        height=0,
        parent_hash=GENESIS_PARENT_HASH,
        miner="genesis",
        difficulty=difficulty,
        timestamp=timestamp,
    )


def header_only_size(block: Block) -> int:
    """Size of a header-only message for ``block`` (announcement follow-up)."""
    return EMPTY_BLOCK_SIZE
