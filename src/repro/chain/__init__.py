"""Blockchain data model: transactions, blocks, fork choice, validation,
rewards and the nonce-aware mempool."""

from repro.chain.block import (
    DEFAULT_GAS_LIMIT,
    EMPTY_BLOCK_SIZE,
    GENESIS_PARENT_HASH,
    Block,
    header_only_size,
    make_genesis,
)
from repro.chain.difficulty import (
    BYZANTIUM_BOMB_DELAY,
    CONSTANTINOPLE_BOMB_DELAY,
    DifficultyConfig,
    bomb_component,
    next_difficulty,
)
from repro.chain.forkchoice import MAX_UNCLE_DEPTH, BlockTree
from repro.chain.mempool import Mempool
from repro.chain.rewards import (
    BLOCK_REWARD_ETH,
    RewardEvent,
    block_rewards,
    ledger_for_chain,
    uncle_reward,
)
from repro.chain.transaction import DEFAULT_TX_SIZE, Transaction
from repro.chain.validation import (
    ValidationConfig,
    validate_block,
    validate_transaction,
    validation_delay,
)

__all__ = [
    "BLOCK_REWARD_ETH",
    "BYZANTIUM_BOMB_DELAY",
    "Block",
    "BlockTree",
    "CONSTANTINOPLE_BOMB_DELAY",
    "DEFAULT_GAS_LIMIT",
    "DEFAULT_TX_SIZE",
    "DifficultyConfig",
    "EMPTY_BLOCK_SIZE",
    "GENESIS_PARENT_HASH",
    "MAX_UNCLE_DEPTH",
    "Mempool",
    "RewardEvent",
    "Transaction",
    "ValidationConfig",
    "block_rewards",
    "bomb_component",
    "header_only_size",
    "ledger_for_chain",
    "make_genesis",
    "next_difficulty",
    "uncle_reward",
    "validate_block",
    "validate_transaction",
    "validation_delay",
]
