"""Block tree and heaviest-chain fork choice.

Each node keeps a :class:`BlockTree`: every block it has accepted, indexed
by hash, with cumulative (total) difficulty.  The canonical head is the
leaf with the highest total difficulty — Ethereum's pre-merge rule — with
first-arrival as the tie break, which is what Geth does and what makes two
same-height blocks race geographically (§III-B).

The tree also implements uncle candidacy (referencing forks within seven
generations) so miners can harvest uncle rewards, including the one-miner
fork exploitation the paper documents in §III-C5.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.chain.block import Block, make_genesis
from repro.errors import ChainError

#: Maximum generation gap between a block and the uncles it may reference.
MAX_UNCLE_DEPTH = 6


class BlockTree:
    """A tree of blocks with total-difficulty fork choice.

    Args:
        genesis: Shared genesis block; defaults to :func:`make_genesis`.
    """

    def __init__(self, genesis: Optional[Block] = None) -> None:
        self.genesis = genesis or make_genesis()
        self._blocks: dict[str, Block] = {self.genesis.block_hash: self.genesis}
        self._children: dict[str, list[str]] = {self.genesis.block_hash: []}
        self._total_difficulty: dict[str, float] = {
            self.genesis.block_hash: self.genesis.difficulty
        }
        self._arrival_order: dict[str, int] = {self.genesis.block_hash: 0}
        self._arrivals = 0
        self.head: Block = self.genesis
        #: head switches that extended the old head (depth-0 advances)
        self.head_advances = 0
        #: head switches that orphaned at least one block
        self.reorg_count = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_hash: str) -> Optional[Block]:
        """Return the block with ``block_hash`` or ``None``."""
        return self._blocks.get(block_hash)

    def require(self, block_hash: str) -> Block:
        """Return the block with ``block_hash`` or raise :class:`ChainError`."""
        block = self._blocks.get(block_hash)
        if block is None:
            raise ChainError(f"unknown block {block_hash!r}")
        return block

    def children_of(self, block_hash: str) -> tuple[str, ...]:
        """Hashes of the known children of ``block_hash``."""
        return tuple(self._children.get(block_hash, ()))

    def total_difficulty(self, block_hash: str) -> float:
        """Cumulative difficulty from genesis to ``block_hash`` inclusive."""
        value = self._total_difficulty.get(block_hash)
        if value is None:
            raise ChainError(f"unknown block {block_hash!r}")
        return value

    def has_parent(self, block: Block) -> bool:
        """True when ``block``'s parent is already in the tree."""
        return block.parent_hash in self._blocks

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #

    def add(self, block: Block) -> bool:
        """Insert ``block`` and re-run fork choice.

        Returns:
            True when the canonical head changed.

        Raises:
            ChainError: if the parent is unknown (callers buffer orphans),
                the block duplicates an existing hash, or its height is
                inconsistent with its parent.
        """
        if block.block_hash in self._blocks:
            raise ChainError(f"duplicate block {block.block_hash!r}")
        parent = self._blocks.get(block.parent_hash)
        if parent is None:
            raise ChainError(
                f"parent {block.parent_hash!r} of {block!r} not in tree"
            )
        if block.height != parent.height + 1:
            raise ChainError(
                f"{block!r} height {block.height} does not extend parent "
                f"height {parent.height}"
            )
        self._blocks[block.block_hash] = block
        self._children[block.block_hash] = []
        self._children[block.parent_hash].append(block.block_hash)
        self._arrivals += 1
        self._arrival_order[block.block_hash] = self._arrivals
        self._total_difficulty[block.block_hash] = (
            self._total_difficulty[block.parent_hash] + block.difficulty
        )
        return self._maybe_reorg(block)

    def _maybe_reorg(self, candidate: Block) -> bool:
        """Switch the head to ``candidate`` if it is strictly heavier."""
        head_td = self._total_difficulty[self.head.block_hash]
        cand_td = self._total_difficulty[candidate.block_hash]
        if cand_td > head_td:
            if candidate.parent_hash == self.head.block_hash:
                self.head_advances += 1
            else:
                self.reorg_count += 1
            self.head = candidate
            return True
        return False

    def branch_diff(
        self, old_head: Block, new_head: Block
    ) -> tuple[list[Block], list[Block]]:
        """Blocks leaving/joining the canonical chain on a head switch.

        Walks both heads down to their lowest common ancestor, so the
        cost is proportional to the reorg depth (almost always 1), not
        the chain length.  Returns ``(old_branch, new_branch)``, each
        ordered head first; ``old_branch`` is empty when ``new_head``
        simply extends ``old_head``, and its length is the reorg depth.
        """
        old_branch: list[Block] = []  # fell off the canonical chain
        new_branch: list[Block] = []  # newly canonical
        a: Optional[Block] = old_head
        b: Optional[Block] = new_head
        while a is not None and b is not None and a.height > b.height:
            old_branch.append(a)
            a = self._blocks.get(a.parent_hash)
        while b is not None and a is not None and b.height > a.height:
            new_branch.append(b)
            b = self._blocks.get(b.parent_hash)
        while a is not None and b is not None and a is not b:
            old_branch.append(a)
            a = self._blocks.get(a.parent_hash)
            new_branch.append(b)
            b = self._blocks.get(b.parent_hash)
        return old_branch, new_branch

    # ------------------------------------------------------------------ #
    # Canonical chain
    # ------------------------------------------------------------------ #

    def canonical_chain(self) -> list[Block]:
        """The main chain from genesis to the head, in height order."""
        chain: list[Block] = []
        cursor: Optional[Block] = self.head
        while cursor is not None:
            chain.append(cursor)
            cursor = self._blocks.get(cursor.parent_hash)
        chain.reverse()
        return chain

    def canonical_hashes(self) -> set[str]:
        """Set of hashes on the current main chain."""
        return {block.block_hash for block in self.canonical_chain()}

    def is_canonical(self, block_hash: str) -> bool:
        """True when ``block_hash`` lies on the current main chain."""
        self.require(block_hash)
        cursor: Optional[Block] = self.head
        target = self._blocks[block_hash]
        while cursor is not None and cursor.height >= target.height:
            if cursor.block_hash == block_hash:
                return True
            cursor = self._blocks.get(cursor.parent_hash)
        return False

    def ancestors(self, block_hash: str, max_depth: int) -> Iterator[Block]:
        """Yield up to ``max_depth`` ancestors of ``block_hash``, parents first."""
        cursor = self.require(block_hash)
        for _ in range(max_depth):
            parent = self._blocks.get(cursor.parent_hash)
            if parent is None:
                return
            yield parent
            cursor = parent

    def confirmations(self, block_hash: str) -> int:
        """Number of canonical blocks after ``block_hash`` (0 for the head).

        Raises:
            ChainError: when the block is not on the main chain.
        """
        if not self.is_canonical(block_hash):
            raise ChainError(f"{block_hash!r} is not canonical")
        return self.head.height - self._blocks[block_hash].height

    # ------------------------------------------------------------------ #
    # Uncles
    # ------------------------------------------------------------------ #

    def uncle_candidates(self, head_hash: str) -> list[Block]:
        """Valid uncles for a block extending ``head_hash``.

        A valid uncle of a block at height ``H`` sits at height
        ``H-6 .. H-1`` and is the child of one of the block's ancestors
        — i.e. a sibling of an ancestor, never a sibling of the block
        itself (children of ``head_hash`` are at height ``H`` and are
        competing blocks, not uncles).  The candidate must not itself be
        an ancestor nor already referenced on the ancestor path.
        """
        head = self.require(head_hash)
        ancestor_path = [head, *self.ancestors(head_hash, MAX_UNCLE_DEPTH)]
        ancestor_hashes = {block.block_hash for block in ancestor_path}
        # Membership dict rather than a set: keeps the structure
        # insertion-ordered so no future iteration can leak hash order
        # into uncle selection (DET003).
        already_referenced: dict[str, None] = {}
        for block in ancestor_path:
            already_referenced.update(dict.fromkeys(block.uncle_hashes))
        candidates: list[Block] = []
        # Children of the head itself are excluded: they would share the
        # new block's height, which the protocol forbids for uncles.
        for ancestor in ancestor_path[1:]:
            for child_hash in self._children[ancestor.block_hash]:
                if child_hash in ancestor_hashes:
                    continue
                if child_hash in already_referenced:
                    continue
                candidates.append(self._blocks[child_hash])
        candidates.sort(key=lambda block: (block.height, block.block_hash))
        return candidates

    def referenced_uncle_hashes(self) -> tuple[str, ...]:
        """Hashes referenced as uncles on the main chain, in chain order.

        Returned as an ordered tuple (deduplicated, genesis-side first)
        rather than a set, so consumers iterating it cannot pick up hash
        order (DET003); membership tests work the same either way.
        """
        referenced: dict[str, None] = {}
        for block in self.canonical_chain():
            referenced.update(dict.fromkeys(block.uncle_hashes))
        return tuple(referenced)

    # ------------------------------------------------------------------ #
    # Whole-tree iteration (used by analyses and tests)
    # ------------------------------------------------------------------ #

    def all_blocks(self) -> list[Block]:
        """Every block in the tree, in insertion order."""
        return list(self._blocks.values())

    def blocks_at_height(self, height: int) -> list[Block]:
        """All known blocks (canonical or not) at ``height``."""
        return [block for block in self._blocks.values() if block.height == height]
