"""Measurement campaign orchestration.

A :class:`Campaign` reproduces the paper's §II methodology end-to-end:

1. build a simulated Ethereum world (:mod:`repro.workload.scenarios`);
2. deploy instrumented vantage nodes in the configured regions (the paper
   used NA, EA, WE and CE, each with unlimited peers), plus optionally the
   subsidiary default-peer (25) vantage used for Table II;
3. run a warm-up so the peer mesh and mempools settle, then a measurement
   window;
4. collect every vantage log plus a chain snapshot from the reference
   vantage into a :class:`~repro.measurement.dataset.MeasurementDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError, TraceError
from repro.faults.plan import FaultPlan
from repro.geo.clock import NtpModelConfig
from repro.geo.regions import VANTAGE_REGIONS, Region
from repro.measurement.dataset import ChainSnapshot, MeasurementDataset
from repro.measurement.instrumented import InstrumentedNode
from repro.measurement.records import ChainBlockRecord
from repro.node.config import measurement_node_config
from repro.obs.export import Trace
from repro.workload.scenarios import Scenario, ScenarioConfig, build_scenario

#: Duration (simulated seconds) equivalent to the paper's one-month window,
#: scaled to the default scenario: 1,000 blocks at 13.3 s.
DEFAULT_DURATION = 13_300.0


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a measurement campaign.

    Attributes:
        scenario: The simulated-world configuration.
        duration: Measurement window length in simulated seconds
            (after warm-up).
        vantage_regions: Regions to deploy unlimited-peer vantages in;
            default matches the paper (NA, EA, WE, CE).
        deploy_default_peer_vantage: Also deploy the subsidiary 25-peer
            vantage (paper: WE, May 2–9 2019) used for Table II.
        reference_vantage: Vantage whose final chain is authoritative for
            fork/empty-block/sequence analyses; defaults to the WE node.
        ntp: NTP clock model; ``None`` uses the defaults from §II.
        perfect_clocks: Disable clock error (ground-truth runs in tests).
        faults: Campaign-level fault plan (see :mod:`repro.faults`).
            When set, it overrides ``scenario.faults`` at deploy time —
            the convenient top-level knob ``repro run --faults`` and the
            sweep ablation grids use.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    duration: float = DEFAULT_DURATION
    vantage_regions: tuple[Region, ...] = VANTAGE_REGIONS
    deploy_default_peer_vantage: bool = True
    reference_vantage: str = ""
    ntp: Optional[NtpModelConfig] = None
    perfect_clocks: bool = False
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not self.vantage_regions:
            raise ConfigurationError("at least one vantage region is required")


def vantage_name(region: Region) -> str:
    """Vantage naming convention: the region code (paper's Table I rows)."""
    return region.value


#: Name of the subsidiary default-peer vantage.
DEFAULT_PEER_VANTAGE_NAME = "WE-default"


class Campaign:
    """A runnable measurement campaign.

    Args:
        config: Campaign parameters.

    Attributes:
        scenario: The underlying simulated world (built lazily by
            :meth:`run` or :meth:`deploy`).
        vantages: Deployed instrumented nodes, by name.
    """

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()
        self.scenario: Optional[Scenario] = None
        self.vantages: dict[str, InstrumentedNode] = {}
        self._deployed = False

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #

    def deploy(self) -> None:
        """Build the world and attach the vantage nodes (idempotent)."""
        if self._deployed:
            return
        self._deployed = True
        scenario_config = self.config.scenario
        if self.config.faults is not None:
            scenario_config = replace(scenario_config, faults=self.config.faults)
        self.scenario = build_scenario(scenario_config)
        network = self.scenario.network
        for region in self.config.vantage_regions:
            name = vantage_name(region)
            if name in self.vantages:
                raise ConfigurationError(
                    f"duplicate vantage region {region!r}; deploy at most one "
                    "vantage per region"
                )
            self.vantages[name] = InstrumentedNode(
                network,
                region,
                name=name,
                config=measurement_node_config(unlimited=True),
                ntp=self.config.ntp,
                perfect_clock=self.config.perfect_clocks,
            )
        if self.config.deploy_default_peer_vantage:
            self.vantages[DEFAULT_PEER_VANTAGE_NAME] = InstrumentedNode(
                network,
                Region.WESTERN_EUROPE,
                name=DEFAULT_PEER_VANTAGE_NAME,
                config=measurement_node_config(unlimited=False),
                ntp=self.config.ntp,
                perfect_clock=self.config.perfect_clocks,
            )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @property
    def metrics(self):
        """Simulator performance metrics (``None`` before :meth:`deploy`).

        Per-event-type breakdowns require the scenario to have been built
        with ``ScenarioConfig(profile=True)``.
        """
        if self.scenario is None:
            return None
        return self.scenario.simulator.metrics

    def run(self) -> MeasurementDataset:
        """Run warm-up + measurement window; return the collected data set."""
        self.deploy()
        assert self.scenario is not None
        self.scenario.start()
        for vantage in self.vantages.values():
            vantage.start()
        self.scenario.run_warmup()
        measurement_start = self.scenario.simulator.now
        self.scenario.run_for(self.config.duration)
        return self._collect(measurement_start)

    # ------------------------------------------------------------------ #
    # Tracing
    # ------------------------------------------------------------------ #

    def build_trace(self) -> Trace:
        """Assemble the run's ground-truth :class:`Trace`.

        Requires the campaign's scenario to have been built with
        ``ScenarioConfig(trace=True)``; call after :meth:`run` so the
        header can carry the final canonical chain.

        Raises:
            TraceError: when the scenario was not built or tracing was
                never enabled.
        """
        if self.scenario is None:
            raise TraceError("campaign has not been deployed; nothing to trace")
        recorder = self.scenario.simulator.trace
        if not recorder.enabled:
            raise TraceError(
                "tracing was not enabled; build the campaign with "
                "ScenarioConfig(trace=True)"
            )
        reference = (
            self.vantages.get(self._reference_name()) if self.vantages else None
        )
        if reference is not None:
            tree = reference.tree
        else:  # vantage-less campaigns: fall back to the primary gateway
            tree = self.scenario.pools[0].primary.tree
        return Trace(
            seed=self.config.scenario.seed,
            canonical_hashes=tuple(
                block.block_hash for block in tree.canonical_chain()
            ),
            head_hash=tree.head.block_hash,
            records=list(recorder.events),
        )

    def save_trace(self, path: str | Path, preset: str = "") -> Path:
        """Write the run's trace as JSONL at ``path`` (atomic); see
        :meth:`build_trace` for preconditions."""
        trace = self.build_trace()
        trace.preset = preset
        path = Path(path)
        trace.save(path)
        return path

    def _reference_name(self) -> str:
        if self.config.reference_vantage:
            if self.config.reference_vantage not in self.vantages:
                raise ConfigurationError(
                    f"reference vantage {self.config.reference_vantage!r} "
                    "was not deployed"
                )
            return self.config.reference_vantage
        preferred = vantage_name(Region.WESTERN_EUROPE)
        if preferred in self.vantages:
            return preferred
        return next(iter(self.vantages))

    def _collect(self, measurement_start: float) -> MeasurementDataset:
        dataset = MeasurementDataset(
            vantage_regions={
                name: node.region.value for name, node in self.vantages.items()
            },
            default_peer_vantage=(
                DEFAULT_PEER_VANTAGE_NAME
                if self.config.deploy_default_peer_vantage
                else None
            ),
            reference_vantage=self._reference_name(),
            measurement_start=measurement_start,
        )
        for node in self.vantages.values():
            dataset.absorb_log(node.log)
        dataset.chain = self._snapshot_chain(self.vantages[dataset.reference_vantage])
        return dataset

    @staticmethod
    def _snapshot_chain(reference: InstrumentedNode) -> ChainSnapshot:
        snapshot = ChainSnapshot()
        for block in reference.tree.all_blocks():
            snapshot.blocks[block.block_hash] = ChainBlockRecord(
                block_hash=block.block_hash,
                height=block.height,
                parent_hash=block.parent_hash,
                miner=block.miner,
                difficulty=block.difficulty,
                timestamp=block.timestamp,
                tx_hashes=block.tx_hashes,
                uncle_hashes=block.uncle_hashes,
            )
        snapshot.canonical_hashes = tuple(
            block.block_hash for block in reference.tree.canonical_chain()
        )
        snapshot.head_hash = reference.tree.head.block_hash
        return snapshot


def run_campaign(config: CampaignConfig | None = None) -> MeasurementDataset:
    """Convenience one-shot: build, run and collect a campaign."""
    return Campaign(config).run()
