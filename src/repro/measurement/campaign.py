"""Measurement campaign orchestration.

A :class:`Campaign` reproduces the paper's §II methodology end-to-end:

1. build a simulated Ethereum world (:mod:`repro.workload.scenarios`);
2. deploy instrumented vantage nodes in the configured regions (the paper
   used NA, EA, WE and CE, each with unlimited peers), plus optionally the
   subsidiary default-peer (25) vantage used for Table II;
3. run a warm-up so the peer mesh and mempools settle, then a measurement
   window;
4. collect every vantage log plus a chain snapshot from the reference
   vantage into a :class:`~repro.measurement.dataset.MeasurementDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError, TraceError
from repro.faults.plan import FaultPlan
from repro.geo.clock import NtpModelConfig
from repro.geo.regions import VANTAGE_REGIONS, Region
from repro.measurement.dataset import ChainSnapshot, MeasurementDataset
from repro.measurement.instrumented import InstrumentedNode
from repro.measurement.records import ChainBlockRecord
from repro.node.config import measurement_node_config
from repro.obs.binio import TraceBinWriter
from repro.obs.export import TRACE_SCHEMA_VERSION, Trace
from repro.obs.recorder import TraceRecorder
from repro.workload.scenarios import Scenario, ScenarioConfig, build_scenario

#: Duration (simulated seconds) equivalent to the paper's one-month window,
#: scaled to the default scenario: 1,000 blocks at 13.3 s.
DEFAULT_DURATION = 13_300.0


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a measurement campaign.

    Attributes:
        scenario: The simulated-world configuration.
        duration: Measurement window length in simulated seconds
            (after warm-up).
        vantage_regions: Regions to deploy unlimited-peer vantages in;
            default matches the paper (NA, EA, WE, CE).
        deploy_default_peer_vantage: Also deploy the subsidiary 25-peer
            vantage (paper: WE, May 2–9 2019) used for Table II.
        reference_vantage: Vantage whose final chain is authoritative for
            fork/empty-block/sequence analyses; defaults to the WE node.
        ntp: NTP clock model; ``None`` uses the defaults from §II.
        perfect_clocks: Disable clock error (ground-truth runs in tests).
        faults: Campaign-level fault plan (see :mod:`repro.faults`).
            When set, it overrides ``scenario.faults`` at deploy time —
            the convenient top-level knob ``repro run --faults`` and the
            sweep ablation grids use.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    duration: float = DEFAULT_DURATION
    vantage_regions: tuple[Region, ...] = VANTAGE_REGIONS
    deploy_default_peer_vantage: bool = True
    reference_vantage: str = ""
    ntp: Optional[NtpModelConfig] = None
    perfect_clocks: bool = False
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not self.vantage_regions:
            raise ConfigurationError("at least one vantage region is required")


def vantage_name(region: Region) -> str:
    """Vantage naming convention: the region code (paper's Table I rows)."""
    return region.value


#: Name of the subsidiary default-peer vantage.
DEFAULT_PEER_VANTAGE_NAME = "WE-default"


class Campaign:
    """A runnable measurement campaign.

    Args:
        config: Campaign parameters.

    Attributes:
        scenario: The underlying simulated world (built lazily by
            :meth:`run` or :meth:`deploy`).
        vantages: Deployed instrumented nodes, by name.
    """

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()
        self.scenario: Optional[Scenario] = None
        self.vantages: dict[str, InstrumentedNode] = {}
        self._deployed = False
        self._trace_writer: Optional[TraceBinWriter] = None

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #

    def deploy(self) -> None:
        """Build the world and attach the vantage nodes (idempotent)."""
        if self._deployed:
            return
        self._deployed = True
        scenario_config = self.config.scenario
        if self.config.faults is not None:
            scenario_config = replace(scenario_config, faults=self.config.faults)
        self.scenario = build_scenario(scenario_config)
        network = self.scenario.network
        for region in self.config.vantage_regions:
            name = vantage_name(region)
            if name in self.vantages:
                raise ConfigurationError(
                    f"duplicate vantage region {region!r}; deploy at most one "
                    "vantage per region"
                )
            self.vantages[name] = InstrumentedNode(
                network,
                region,
                name=name,
                config=measurement_node_config(unlimited=True),
                ntp=self.config.ntp,
                perfect_clock=self.config.perfect_clocks,
            )
        if self.config.deploy_default_peer_vantage:
            self.vantages[DEFAULT_PEER_VANTAGE_NAME] = InstrumentedNode(
                network,
                Region.WESTERN_EUROPE,
                name=DEFAULT_PEER_VANTAGE_NAME,
                config=measurement_node_config(unlimited=False),
                ntp=self.config.ntp,
                perfect_clock=self.config.perfect_clocks,
            )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @property
    def metrics(self):
        """Simulator performance metrics (``None`` before :meth:`deploy`).

        Per-event-type breakdowns require the scenario to have been built
        with ``ScenarioConfig(profile=True)``.
        """
        if self.scenario is None:
            return None
        return self.scenario.simulator.metrics

    def run(self) -> MeasurementDataset:
        """Run warm-up + measurement window; return the collected data set."""
        self.deploy()
        assert self.scenario is not None
        self.scenario.start()
        for vantage in self.vantages.values():
            vantage.start()
        self.scenario.run_warmup()
        measurement_start = self.scenario.simulator.now
        self.scenario.run_for(self.config.duration)
        return self._collect(measurement_start)

    # ------------------------------------------------------------------ #
    # Tracing
    # ------------------------------------------------------------------ #

    def build_trace(self) -> Trace:
        """Assemble the run's ground-truth :class:`Trace`.

        Requires the campaign's scenario to have been built with
        ``ScenarioConfig(trace=True)``; call after :meth:`run` so the
        header can carry the final canonical chain.

        Raises:
            TraceError: when the scenario was not built or tracing was
                never enabled.
        """
        recorder = self._traced_recorder()
        if recorder.columns.sink is not None:
            raise TraceError(
                "trace blocks are streaming to disk; finish with "
                "save_trace() and analyze the written container"
            )
        recorder.sync_metrics()
        canonical_hashes, head_hash = self._chain_context()
        return Trace(
            seed=self.config.scenario.seed,
            canonical_hashes=canonical_hashes,
            head_hash=head_hash,
            columns=recorder.columns,
        )

    def stream_trace_to(self, path: str | Path) -> None:
        """Stream trace blocks to a ``.trace.bin`` at ``path`` as they seal.

        Call between :meth:`deploy` and :meth:`run`: every sealed column
        block is written straight to disk instead of retained, so an
        arbitrarily long traced run holds at most one staging buffer per
        record kind in memory.  :meth:`save_trace` (with the same path)
        finalizes the container.
        """
        self.deploy()
        recorder = self._traced_recorder()
        if self._trace_writer is not None:
            raise TraceError("a trace stream is already attached")
        writer = TraceBinWriter(path, TRACE_SCHEMA_VERSION)
        # Deployment already emitted records (node registrations); hand
        # any blocks sealed so far to the writer so nothing is lost.
        for store in recorder.columns.stores.values():
            for block in store.blocks:
                writer.write_block(block)
            store.blocks.clear()
        self._trace_writer = writer
        recorder.columns.sink = writer

    def abort_trace_stream(self) -> None:
        """Drop an attached trace stream and its partial temp file."""
        writer = self._trace_writer
        if writer is None:
            return
        self._trace_writer = None
        if self.scenario is not None:
            self.scenario.simulator.trace.columns.sink = None
        writer.abort()

    def save_trace(self, path: str | Path, preset: str = "") -> Path:
        """Write the run's trace at ``path`` (atomic); the suffix picks
        the format (``.bin`` = columnar container, else JSONL).  See
        :meth:`build_trace` for preconditions.

        With a stream attached (:meth:`stream_trace_to`), this seals the
        remaining staging buffers and finalizes the container — ``path``
        must then match the streaming path.
        """
        path = Path(path)
        writer = self._trace_writer
        if writer is not None:
            if path != writer.path:
                raise TraceError(
                    f"trace is streaming to {writer.path}; cannot save to "
                    f"{path}"
                )
            recorder = self._traced_recorder()
            recorder.sync_metrics()  # drain before seal resets counters
            recorder.columns.seal_all()
            canonical_hashes, head_hash = self._chain_context()
            self._trace_writer = None
            try:
                writer.finalize(
                    recorder.columns,
                    seed=self.config.scenario.seed,
                    preset=preset,
                    canonical_hashes=canonical_hashes,
                    head_hash=head_hash,
                )
            except BaseException:
                writer.abort()
                raise
            recorder.columns.sink = None
            return path
        trace = self.build_trace()
        trace.preset = preset
        trace.save(path)
        return path

    def _traced_recorder(self) -> TraceRecorder:
        if self.scenario is None:
            raise TraceError("campaign has not been deployed; nothing to trace")
        recorder = self.scenario.simulator.trace
        if not recorder.enabled:
            raise TraceError(
                "tracing was not enabled; build the campaign with "
                "ScenarioConfig(trace=True)"
            )
        return recorder

    def _chain_context(self) -> tuple[tuple[str, ...], str]:
        """Final canonical chain + head from the reference vantage."""
        assert self.scenario is not None
        reference = (
            self.vantages.get(self._reference_name()) if self.vantages else None
        )
        if reference is not None:
            tree = reference.tree
        else:  # vantage-less campaigns: fall back to the primary gateway
            tree = self.scenario.pools[0].primary.tree
        return (
            tuple(block.block_hash for block in tree.canonical_chain()),
            tree.head.block_hash,
        )

    def _reference_name(self) -> str:
        if self.config.reference_vantage:
            if self.config.reference_vantage not in self.vantages:
                raise ConfigurationError(
                    f"reference vantage {self.config.reference_vantage!r} "
                    "was not deployed"
                )
            return self.config.reference_vantage
        preferred = vantage_name(Region.WESTERN_EUROPE)
        if preferred in self.vantages:
            return preferred
        return next(iter(self.vantages))

    def _collect(self, measurement_start: float) -> MeasurementDataset:
        dataset = MeasurementDataset(
            vantage_regions={
                name: node.region.value for name, node in self.vantages.items()
            },
            default_peer_vantage=(
                DEFAULT_PEER_VANTAGE_NAME
                if self.config.deploy_default_peer_vantage
                else None
            ),
            reference_vantage=self._reference_name(),
            measurement_start=measurement_start,
        )
        for node in self.vantages.values():
            dataset.absorb_log(node.log)
        dataset.chain = self._snapshot_chain(self.vantages[dataset.reference_vantage])
        return dataset

    @staticmethod
    def _snapshot_chain(reference: InstrumentedNode) -> ChainSnapshot:
        snapshot = ChainSnapshot()
        for block in reference.tree.all_blocks():
            snapshot.blocks[block.block_hash] = ChainBlockRecord(
                block_hash=block.block_hash,
                height=block.height,
                parent_hash=block.parent_hash,
                miner=block.miner,
                difficulty=block.difficulty,
                timestamp=block.timestamp,
                tx_hashes=block.tx_hashes,
                uncle_hashes=block.uncle_hashes,
            )
        snapshot.canonical_hashes = tuple(
            block.block_hash for block in reference.tree.canonical_chain()
        )
        snapshot.head_hash = reference.tree.head.block_hash
        return snapshot


def run_campaign(config: CampaignConfig | None = None) -> MeasurementDataset:
    """Convenience one-shot: build, run and collect a campaign."""
    return Campaign(config).run()
