"""The measurement data set.

A :class:`MeasurementDataset` bundles everything a campaign produced:
per-vantage logs (flattened into typed record lists) and an
end-of-campaign :class:`ChainSnapshot` taken from a reference vantage —
the equivalent of the paper's released logs plus the Etherscan-style
chain context used to decide which observed blocks ended up canonical.

Datasets round-trip to JSONL (one record per line, type-tagged) so
campaigns can be archived and re-analysed offline, mirroring the paper's
open data release.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import DatasetError
from repro.measurement.logger import MeasurementLog
from repro.measurement.records import (
    BlockImportRecord,
    BlockMessageRecord,
    ChainBlockRecord,
    ConnectionRecord,
    TxReceptionRecord,
    record_from_json,
    record_to_json,
)


@dataclass
class ChainSnapshot:
    """Final chain state as seen from the reference vantage.

    Attributes:
        blocks: Every block the vantage accepted, keyed by hash.
        canonical_hashes: Hashes on the final main chain, genesis first.
        head_hash: Hash of the final canonical head.
    """

    blocks: dict[str, ChainBlockRecord] = field(default_factory=dict)
    canonical_hashes: tuple[str, ...] = ()
    head_hash: str = ""

    @property
    def canonical_blocks(self) -> list[ChainBlockRecord]:
        """Main-chain blocks in height order (genesis included)."""
        return [self.blocks[h] for h in self.canonical_hashes]

    @property
    def canonical_set(self) -> set[str]:
        return set(self.canonical_hashes)

    def referenced_uncles(self) -> set[str]:
        """Hashes referenced as uncles by any main-chain block."""
        referenced: set[str] = set()
        for block_hash in self.canonical_hashes:
            referenced.update(self.blocks[block_hash].uncle_hashes)
        return referenced

    def non_canonical_blocks(self) -> list[ChainBlockRecord]:
        """Observed blocks that did not end up on the main chain."""
        canonical = self.canonical_set
        return [
            block
            for block in self.blocks.values()
            if block.block_hash not in canonical
        ]


@dataclass
class MeasurementDataset:
    """Everything a measurement campaign produced.

    Attributes:
        vantage_regions: ``{vantage name: region value}``.
        default_peer_vantage: Name of the subsidiary 25-peer vantage used
            for the redundancy analysis (Table II), if deployed.
        reference_vantage: Vantage whose chain snapshot is authoritative.
        measurement_start: Simulated time at which the measurement window
            opened (after warm-up); records before it are kept but flagged.
        block_messages / block_imports / tx_receptions / connections:
            Flattened record lists across all vantages.
        chain: End-of-campaign chain snapshot.
        tx_duplicate_counts: Per-vantage duplicate-reception tallies.
    """

    vantage_regions: dict[str, str] = field(default_factory=dict)
    default_peer_vantage: Optional[str] = None
    reference_vantage: str = ""
    measurement_start: float = 0.0
    block_messages: list[BlockMessageRecord] = field(default_factory=list)
    block_imports: list[BlockImportRecord] = field(default_factory=list)
    tx_receptions: list[TxReceptionRecord] = field(default_factory=list)
    connections: list[ConnectionRecord] = field(default_factory=list)
    chain: ChainSnapshot = field(default_factory=ChainSnapshot)
    tx_duplicate_counts: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def absorb_log(self, log: MeasurementLog) -> None:
        """Fold one vantage's log into the flattened record lists."""
        self.block_messages.extend(log.block_messages)
        self.block_imports.extend(log.block_imports)
        self.tx_receptions.extend(log.tx_receptions)
        self.connections.extend(log.connections)
        self.tx_duplicate_counts[log.vantage] = log.tx_duplicate_count

    @property
    def vantages(self) -> list[str]:
        """All vantage names, in insertion order."""
        return list(self.vantage_regions)

    @property
    def primary_vantages(self) -> list[str]:
        """Vantages participating in geographic analyses (excludes the
        subsidiary default-peer node, as in the paper)."""
        return [
            name for name in self.vantage_regions if name != self.default_peer_vantage
        ]

    def require_vantages(self, minimum: int = 2) -> None:
        """Raise :class:`DatasetError` unless enough vantages exist."""
        if len(self.primary_vantages) < minimum:
            raise DatasetError(
                f"analysis requires >= {minimum} vantages, "
                f"got {len(self.primary_vantages)}"
            )

    # ------------------------------------------------------------------ #
    # Persistence (JSONL, type-tagged records)
    # ------------------------------------------------------------------ #

    def save(self, path: str | Path) -> None:
        """Write the data set as JSONL (header line + one record/line).

        The write is atomic: records stream into a process-unique ``.tmp``
        sibling which is ``os.replace``-d over ``path`` only once complete.
        A concurrent reader therefore sees either the previous complete
        file or the new complete file, never a truncated one — the
        property the parallel campaign fleet's shared disk cache relies
        on (a killed writer leaves only a stale ``.tmp`` behind).
        """
        path = Path(path)
        header = {
            "_type": "Header",
            "vantage_regions": self.vantage_regions,
            "default_peer_vantage": self.default_peer_vantage,
            "reference_vantage": self.reference_vantage,
            "measurement_start": self.measurement_start,
            "tx_duplicate_counts": self.tx_duplicate_counts,
            "canonical_hashes": list(self.chain.canonical_hashes),
            "head_hash": self.chain.head_hash,
        }
        tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with tmp_path.open("w", encoding="utf-8") as fh:
                fh.write(json.dumps(header) + "\n")
                for record in self._all_records():
                    fh.write(json.dumps(record_to_json(record)) + "\n")
            os.replace(tmp_path, path)
        finally:
            tmp_path.unlink(missing_ok=True)

    def _all_records(self) -> Iterable[object]:
        yield from self.block_messages
        yield from self.block_imports
        yield from self.tx_receptions
        yield from self.connections
        yield from self.chain.blocks.values()

    @classmethod
    def load(cls, path: str | Path) -> "MeasurementDataset":
        """Inverse of :meth:`save`.

        Raises:
            DatasetError: on a malformed file.
        """
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"no dataset at {path}")
        dataset = cls()
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line:
                raise DatasetError(f"{path} is empty")
            header = json.loads(header_line)
            if header.get("_type") != "Header":
                raise DatasetError(f"{path} missing dataset header")
            dataset.vantage_regions = dict(header["vantage_regions"])
            dataset.default_peer_vantage = header.get("default_peer_vantage")
            dataset.reference_vantage = header.get("reference_vantage", "")
            dataset.measurement_start = float(header.get("measurement_start", 0.0))
            dataset.tx_duplicate_counts = {
                k: int(v) for k, v in header.get("tx_duplicate_counts", {}).items()
            }
            dataset.chain.canonical_hashes = tuple(header.get("canonical_hashes", ()))
            dataset.chain.head_hash = header.get("head_hash", "")
            for line in fh:
                if not line.strip():
                    continue
                record = record_from_json(json.loads(line))
                if isinstance(record, BlockMessageRecord):
                    dataset.block_messages.append(record)
                elif isinstance(record, BlockImportRecord):
                    dataset.block_imports.append(record)
                elif isinstance(record, TxReceptionRecord):
                    dataset.tx_receptions.append(record)
                elif isinstance(record, ConnectionRecord):
                    dataset.connections.append(record)
                elif isinstance(record, ChainBlockRecord):
                    dataset.chain.blocks[record.block_hash] = record
                else:  # pragma: no cover - registry keeps this unreachable
                    raise DatasetError(f"unknown record type {type(record)!r}")
        return dataset
