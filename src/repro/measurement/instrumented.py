"""The instrumented measurement node.

:class:`InstrumentedNode` is the simulator-side equivalent of the paper's
modified Geth 1.8.23: a protocol node whose behaviour is bit-for-bit that
of a regular client (it relays, validates and mines nothing), but which
additionally logs every incoming block message, first transaction
receptions, block imports and peer connections — each stamped with its
local NTP-disciplined clock rather than true simulation time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.geo.clock import NtpClock, NtpModelConfig, PerfectClock
from repro.geo.regions import Region
from repro.measurement.logger import MeasurementLog
from repro.node.config import NodeConfig, measurement_node_config
from repro.node.node import ProtocolNode
from repro.p2p.network import Network
from repro.p2p.peer import Peer
from repro.sim.process import PeriodicProcess

#: Seconds between NTP re-synchronisations.  ntpd's polling interval sits
#: between 64 s and 1024 s; re-syncing makes the clock offset *wander*
#: over a campaign instead of biasing a vantage for the whole month,
#: which is what the paper's per-case (not per-host) error envelope
#: describes.
NTP_RESYNC_INTERVAL = 256.0


class InstrumentedNode(ProtocolNode):
    """A measurement vantage node.

    Args:
        network: Fabric to join.
        region: Vantage region (the paper used NA, EA, WE, CE).
        name: Vantage name used in all records.
        config: Node configuration; defaults to the paper's unlimited-peer
            measurement configuration.
        ntp: NTP model parameters; ``None`` with ``perfect_clock=True``
            yields exact timestamps (useful for ground-truth tests).
        perfect_clock: Disable clock error entirely.
    """

    def __init__(
        self,
        network: Network,
        region: Region,
        name: str,
        config: Optional[NodeConfig] = None,
        ntp: Optional[NtpModelConfig] = None,
        perfect_clock: bool = False,
    ) -> None:
        super().__init__(
            network,
            region,
            config=config or measurement_node_config(unlimited=True),
            name=name,
        )
        if perfect_clock:
            self.clock: NtpClock | PerfectClock = PerfectClock()
        else:
            self.clock = NtpClock(
                network.simulator.rng.stream(f"ntp.{name}"), ntp
            )
        self.log = MeasurementLog(vantage=name)
        self._ntp_resync = PeriodicProcess(
            self.simulator, NTP_RESYNC_INTERVAL, self.clock.resync
        )

    def start(self) -> None:
        super().start()
        self._ntp_resync.start()

    def stop(self) -> None:
        super().stop()
        self._ntp_resync.stop()

    # ------------------------------------------------------------------ #
    # Instrumentation hooks
    # ------------------------------------------------------------------ #

    def _stamp(self) -> float:
        return self.clock.read(self.simulator.now)

    def _observe_block_message(
        self, peer: Peer, block_hash: str, height: int, direct: bool, miner: str = ""
    ) -> None:
        self.log.log_block_message(
            time=self._stamp(),
            block_hash=block_hash,
            height=height,
            direct=direct,
            miner=miner,
            peer_id=peer.remote_id,
        )

    def _observe_transactions(self, peer: Peer, txs: Sequence[Transaction]) -> None:
        stamp = self._stamp()
        for tx in txs:
            self.log.log_transaction(
                time=stamp,
                tx_hash=tx.tx_hash,
                sender=tx.sender,
                nonce=tx.nonce,
                peer_id=peer.remote_id,
            )

    def _observe_block_import(self, block: Block) -> None:
        self.log.log_block_import(
            time=self._stamp(),
            block_hash=block.block_hash,
            height=block.height,
            parent_hash=block.parent_hash,
            miner=block.miner,
            difficulty=block.difficulty,
            gas_used=block.gas_used,
            tx_hashes=block.tx_hashes,
            uncle_hashes=block.uncle_hashes,
        )

    def _observe_connection(self, peer_id: int, inbound: bool) -> None:
        self.log.log_connection(time=self._stamp(), peer_id=peer_id, inbound=inbound)
