"""Measurement log record schema.

These records are what the paper's instrumented Geth writes to its log
files: every incoming block message (direct or announcement), every block
import, first transaction receptions, and peer connections — each with a
local (NTP-disciplined, hence slightly wrong) timestamp.

Records are plain dataclasses with ``to_json``/``from_json`` round-trips
so a campaign can be persisted as JSONL and reloaded for offline analysis,
mirroring the paper's released data set.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class BlockMessageRecord:
    """One incoming block-bearing message at a vantage.

    Attributes:
        vantage: Name of the measurement node.
        time: NTP-stamped local reception time (seconds).
        block_hash: Hash carried by the message.
        height: Advertised block height.
        direct: True for a full ``NewBlock`` push, False for a hash
            announcement (``NewBlockHashes`` entry).
        miner: Producing miner when known (direct pushes carry the header;
            announcements do not — empty string then).
        peer_id: Identifier of the sending peer.
    """

    vantage: str
    time: float
    block_hash: str
    height: int
    direct: bool
    miner: str
    peer_id: int


@dataclass(frozen=True)
class BlockImportRecord:
    """A block accepted into a vantage's local chain.

    Carries the full header summary the analyses need (miner, emptiness,
    uncle references, transaction hashes for commit tracking).
    """

    vantage: str
    time: float
    block_hash: str
    height: int
    parent_hash: str
    miner: str
    difficulty: float
    gas_used: int
    tx_hashes: tuple[str, ...]
    uncle_hashes: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        return not self.tx_hashes


@dataclass(frozen=True)
class TxReceptionRecord:
    """First reception of a transaction at a vantage.

    Duplicate receptions are aggregated into
    :attr:`~repro.measurement.logger.MeasurementLog.tx_duplicate_count`
    rather than logged individually, to keep data sets compact.
    """

    vantage: str
    time: float
    tx_hash: str
    sender: str
    nonce: int
    peer_id: int


@dataclass(frozen=True)
class ConnectionRecord:
    """A peer connection established at a vantage."""

    vantage: str
    time: float
    peer_id: int
    inbound: bool


@dataclass(frozen=True)
class ChainBlockRecord:
    """Summary of one block in the end-of-campaign chain snapshot."""

    block_hash: str
    height: int
    parent_hash: str
    miner: str
    difficulty: float
    timestamp: float
    tx_hashes: tuple[str, ...]
    uncle_hashes: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        return not self.tx_hashes


_RECORD_TYPES: dict[str, type] = {}


def _register(cls: type) -> type:
    _RECORD_TYPES[cls.__name__] = cls
    return cls


for _cls in (
    BlockMessageRecord,
    BlockImportRecord,
    TxReceptionRecord,
    ConnectionRecord,
    ChainBlockRecord,
):
    _register(_cls)


def record_to_json(record: Any) -> dict[str, Any]:
    """Serialise a record to a JSON-compatible dict with a type tag."""
    payload = asdict(record)
    payload["_type"] = type(record).__name__
    return payload


def record_from_json(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`record_to_json`.

    Raises:
        KeyError: when the type tag is missing or unknown.
    """
    data = dict(payload)
    type_name = data.pop("_type")
    cls = _RECORD_TYPES[type_name]
    for field_name in ("tx_hashes", "uncle_hashes"):
        if field_name in data and isinstance(data[field_name], list):
            data[field_name] = tuple(data[field_name])
    return cls(**data)
