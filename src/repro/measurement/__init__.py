"""Measurement toolchain: instrumented vantage nodes, logs, campaigns and
the persisted data set — the paper's core contribution."""

from repro.measurement.campaign import (
    DEFAULT_DURATION,
    DEFAULT_PEER_VANTAGE_NAME,
    Campaign,
    CampaignConfig,
    run_campaign,
    vantage_name,
)
from repro.measurement.dataset import ChainSnapshot, MeasurementDataset
from repro.measurement.instrumented import InstrumentedNode
from repro.measurement.logger import MeasurementLog
from repro.measurement.merge import merge_datasets
from repro.measurement.records import (
    BlockImportRecord,
    BlockMessageRecord,
    ChainBlockRecord,
    ConnectionRecord,
    TxReceptionRecord,
    record_from_json,
    record_to_json,
)

__all__ = [
    "BlockImportRecord",
    "BlockMessageRecord",
    "Campaign",
    "CampaignConfig",
    "ChainBlockRecord",
    "ChainSnapshot",
    "ConnectionRecord",
    "DEFAULT_DURATION",
    "DEFAULT_PEER_VANTAGE_NAME",
    "InstrumentedNode",
    "MeasurementDataset",
    "MeasurementLog",
    "merge_datasets",
    "TxReceptionRecord",
    "record_from_json",
    "record_to_json",
    "run_campaign",
    "vantage_name",
]
