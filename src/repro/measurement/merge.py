"""Merging measurement datasets.

The paper ran its main campaign (April 1 – May 2) and a subsidiary
default-peer campaign (May 2 – 9) as separate deployments and analysed
them together.  :func:`merge_datasets` supports that pattern: combine the
record streams of several campaigns over the *same simulated world*
(e.g. different windows or extra vantages) into one analysable dataset.

Datasets from unrelated worlds (different seeds/chains) cannot be merged
meaningfully; the merge refuses when the chains disagree.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DatasetError
from repro.measurement.dataset import MeasurementDataset


def _chains_compatible(a: MeasurementDataset, b: MeasurementDataset) -> bool:
    """Two snapshots agree when one's canonical chain prefixes the other's."""
    shorter, longer = sorted(
        (a.chain.canonical_hashes, b.chain.canonical_hashes), key=len
    )
    return longer[: len(shorter)] == shorter


def merge_datasets(
    datasets: Sequence[MeasurementDataset],
    allow_disjoint_worlds: bool = False,
) -> MeasurementDataset:
    """Merge campaigns over the same simulated world into one dataset.

    The result carries the union of all records, the vantage map of every
    input, the longest chain snapshot, and the *earliest* measurement
    start (records outside any input's window were never logged anyway).

    Args:
        datasets: Campaign outputs to merge.
        allow_disjoint_worlds: Permit merging campaigns from *different*
            simulated worlds (multi-seed sweeps).  Record-stream analyses
            (propagation delays, vantage shares, redundancy) then
            aggregate observations across every seed — block and tx
            hashes are seed-unique, so streams never collide — while the
            single chain snapshot is taken from the longest input chain,
            so chain-derived analyses (forks, sequences, summary) reflect
            that one world.  See DESIGN.md §"Parallel campaign fleet".

    Raises:
        DatasetError: when no datasets are given, or the chain snapshots
            are incompatible (different worlds) and
            ``allow_disjoint_worlds`` is off.
    """
    if not datasets:
        raise DatasetError("nothing to merge")
    if len(datasets) == 1:
        return datasets[0]
    base = datasets[0]
    if not allow_disjoint_worlds:
        for other in datasets[1:]:
            if not _chains_compatible(base, other):
                raise DatasetError(
                    "cannot merge datasets from different simulated worlds "
                    "(canonical chains disagree); pass "
                    "allow_disjoint_worlds=True to aggregate a multi-seed "
                    "sweep"
                )
    longest = max(datasets, key=lambda d: len(d.chain.canonical_hashes))

    merged = MeasurementDataset(
        vantage_regions={},
        default_peer_vantage=None,
        reference_vantage=longest.reference_vantage,
        measurement_start=min(d.measurement_start for d in datasets),
        chain=longest.chain,
    )
    # Every record stream is deduplicated with a kind-aware key so that
    # overlapping campaign windows merge idempotently.  The block-message
    # key includes ``direct``: a NewBlock push and a NewBlockHashes
    # announcement logged at the same instant from the same peer are two
    # distinct observations (Table II counts them separately).
    seen_messages: set[tuple[str, float, str, int, bool]] = set()
    seen_imports: set[tuple[str, str]] = set()
    seen_txs: set[tuple[str, str]] = set()
    seen_connections: set[tuple[str, float, int, bool]] = set()
    for dataset in datasets:
        merged.vantage_regions.update(dataset.vantage_regions)
        if dataset.default_peer_vantage and merged.default_peer_vantage is None:
            merged.default_peer_vantage = dataset.default_peer_vantage
        for record in dataset.block_messages:
            key = (
                record.vantage,
                record.time,
                record.block_hash,
                record.peer_id,
                record.direct,
            )
            if key not in seen_messages:
                seen_messages.add(key)
                merged.block_messages.append(record)
        for record in dataset.block_imports:
            # A vantage imports a given block exactly once, so the hash
            # alone identifies the import within a vantage.
            import_key = (record.vantage, record.block_hash)
            if import_key not in seen_imports:
                seen_imports.add(import_key)
                merged.block_imports.append(record)
        for record in dataset.tx_receptions:
            tx_key = (record.vantage, record.tx_hash)
            if tx_key not in seen_txs:
                seen_txs.add(tx_key)
                merged.tx_receptions.append(record)
        for record in dataset.connections:
            conn_key = (record.vantage, record.time, record.peer_id, record.inbound)
            if conn_key not in seen_connections:
                seen_connections.add(conn_key)
                merged.connections.append(record)
        for vantage, count in dataset.tx_duplicate_counts.items():
            merged.tx_duplicate_counts[vantage] = (
                merged.tx_duplicate_counts.get(vantage, 0) + count
            )
    merged.block_messages.sort(key=lambda r: r.time)
    merged.block_imports.sort(key=lambda r: r.time)
    merged.tx_receptions.sort(key=lambda r: r.time)
    merged.connections.sort(key=lambda r: r.time)
    return merged
