"""Per-vantage measurement log.

A :class:`MeasurementLog` is the in-memory equivalent of the dedicated
log file the paper's instrumented Geth wrote: append-only lists of typed
records plus a duplicate-transaction counter (duplicates are counted, not
stored, to keep data sets compact).
"""

from __future__ import annotations

from repro.measurement.records import (
    BlockImportRecord,
    BlockMessageRecord,
    ConnectionRecord,
    TxReceptionRecord,
)


class MeasurementLog:
    """Append-only log of one measurement node's observations."""

    def __init__(self, vantage: str) -> None:
        self.vantage = vantage
        self.block_messages: list[BlockMessageRecord] = []
        self.block_imports: list[BlockImportRecord] = []
        self.tx_receptions: list[TxReceptionRecord] = []
        self.connections: list[ConnectionRecord] = []
        #: receptions of already-seen transactions (aggregate only)
        self.tx_duplicate_count = 0
        self._seen_txs: set[str] = set()

    # ------------------------------------------------------------------ #
    # Appenders (called by the instrumented node)
    # ------------------------------------------------------------------ #

    def log_block_message(
        self,
        time: float,
        block_hash: str,
        height: int,
        direct: bool,
        miner: str,
        peer_id: int,
    ) -> None:
        self.block_messages.append(
            BlockMessageRecord(
                vantage=self.vantage,
                time=time,
                block_hash=block_hash,
                height=height,
                direct=direct,
                miner=miner,
                peer_id=peer_id,
            )
        )

    def log_block_import(
        self,
        time: float,
        block_hash: str,
        height: int,
        parent_hash: str,
        miner: str,
        difficulty: float,
        gas_used: int,
        tx_hashes: tuple[str, ...],
        uncle_hashes: tuple[str, ...],
    ) -> None:
        self.block_imports.append(
            BlockImportRecord(
                vantage=self.vantage,
                time=time,
                block_hash=block_hash,
                height=height,
                parent_hash=parent_hash,
                miner=miner,
                difficulty=difficulty,
                gas_used=gas_used,
                tx_hashes=tx_hashes,
                uncle_hashes=uncle_hashes,
            )
        )

    def log_transaction(
        self, time: float, tx_hash: str, sender: str, nonce: int, peer_id: int
    ) -> bool:
        """Log a transaction reception; returns False for duplicates."""
        if tx_hash in self._seen_txs:
            self.tx_duplicate_count += 1
            return False
        self._seen_txs.add(tx_hash)
        self.tx_receptions.append(
            TxReceptionRecord(
                vantage=self.vantage,
                time=time,
                tx_hash=tx_hash,
                sender=sender,
                nonce=nonce,
                peer_id=peer_id,
            )
        )
        return True

    def log_connection(self, time: float, peer_id: int, inbound: bool) -> None:
        self.connections.append(
            ConnectionRecord(
                vantage=self.vantage, time=time, peer_id=peer_id, inbound=inbound
            )
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"MeasurementLog({self.vantage}: "
            f"{len(self.block_messages)} block msgs, "
            f"{len(self.tx_receptions)} txs, "
            f"{len(self.block_imports)} imports)"
        )
