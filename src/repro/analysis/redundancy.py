"""Block reception redundancy (Table II, §III-A2).

How many times does a *default-configured* (25-peer) node receive each
block, split into light announcements and direct whole-block pushes?  The
paper ran a subsidiary vantage with default peers for one week to answer
this; campaigns deploy the equivalent ``WE-default`` vantage.

The paper relates the measured mean (9.11) to the gossip-theoretic
optimum ln(N) for an N-peer network (ln 15,000 ≈ 9.62); we report the
same comparison against the simulated network size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.descriptive import top_fraction_threshold
from repro.stats.tables import format_table


@dataclass(frozen=True)
class RedundancyRow:
    """One row of Table II."""

    message_type: str
    average: float
    median: float
    top10: float
    top1: float


@dataclass(frozen=True)
class RedundancyResult:
    """Outcome of the redundancy analysis.

    Attributes:
        rows: Announcements / whole blocks / combined (Table II rows).
        blocks_counted: Blocks the default-peer vantage observed.
        optimal_mean: ln(network size), the gossip-theoretic target.
        network_size: Node population used for the optimum.
    """

    rows: tuple[RedundancyRow, ...]
    blocks_counted: int
    optimal_mean: float
    network_size: int

    def render(self) -> str:
        table = format_table(
            headers=["Message Type", "Avg.", "Med.", "Top 10%", "Top 1%"],
            rows=[
                (row.message_type, row.average, row.median, row.top10, row.top1)
                for row in self.rows
            ],
            title="Table II — Redundant block receptions (default-peer vantage)",
        )
        return (
            f"{table}\n"
            f"blocks counted: {self.blocks_counted}; gossip optimum "
            f"ln({self.network_size}) = {self.optimal_mean:.2f}"
        )

    def row(self, message_type: str) -> RedundancyRow:
        for row in self.rows:
            if row.message_type == message_type:
                return row
        raise KeyError(message_type)


def reception_redundancy(
    dataset: MeasurementDataset,
    network_size: int | None = None,
) -> RedundancyResult:
    """Compute Table II from a campaign data set.

    Args:
        dataset: Campaign output; must include the default-peer vantage.
        network_size: Total node population for the ln(N) comparison;
            defaults to the number of distinct peers seen network-wide
            (the paper used the Kim et al. estimate of 15,000).

    Raises:
        AnalysisError: when no default-peer vantage was deployed.
    """
    vantage = dataset.default_peer_vantage
    if vantage is None:
        raise AnalysisError(
            "redundancy analysis needs the subsidiary default-peer vantage "
            "(CampaignConfig.deploy_default_peer_vantage)"
        )
    start = dataset.measurement_start
    announce_counts: dict[str, int] = {}
    direct_counts: dict[str, int] = {}
    for record in dataset.block_messages:
        if record.vantage != vantage or record.time < start:
            continue
        bucket = direct_counts if record.direct else announce_counts
        bucket[record.block_hash] = bucket.get(record.block_hash, 0) + 1
    hashes = sorted(set(announce_counts) | set(direct_counts))
    if not hashes:
        raise AnalysisError("default-peer vantage observed no blocks")

    announcements = np.array([announce_counts.get(h, 0) for h in hashes], dtype=float)
    wholes = np.array([direct_counts.get(h, 0) for h in hashes], dtype=float)
    combined = announcements + wholes

    def row(name: str, sample: np.ndarray) -> RedundancyRow:
        return RedundancyRow(
            message_type=name,
            average=float(sample.mean()),
            median=float(np.median(sample)),
            top10=top_fraction_threshold(sample, 0.10),
            top1=top_fraction_threshold(sample, 0.01),
        )

    if network_size is None:
        peers = {record.peer_id for record in dataset.connections}
        network_size = max(len(peers), 2)
    return RedundancyResult(
        rows=(
            row("Announcements", announcements),
            row("Whole Blocks", wholes),
            row("Both combined", combined),
        ),
        blocks_counted=len(hashes),
        optimal_mean=math.log(network_size),
        network_size=network_size,
    )
