"""Transaction inclusion and commit times (Figure 4, §III-C1).

For every transaction the vantages observed, measure:

* **inclusion delay** — first observation of the transaction → first
  observation of the main-chain block that includes it;
* **k-confirmation delay** — first observation of the transaction →
  first observation of the k-th main-chain block following the including
  block, for k ∈ {3, 12, 15, 36} (12 is Ethereum's customary finality
  rule; the paper measured a median of 189 s for it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.analysis.common import block_arrivals, require_chain
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.descriptive import Cdf
from repro.stats.figures import format_cdf

#: Confirmation depths reported in Figure 4.
CONFIRMATION_DEPTHS = (3, 12, 15, 36)

#: Ethereum's customary finality rule.
DEFAULT_CONFIRMATIONS = 12


def first_tx_observations(dataset: MeasurementDataset) -> dict[str, float]:
    """Earliest observation of each transaction across primary vantages."""
    primary = set(dataset.primary_vantages)
    start = dataset.measurement_start
    first: dict[str, float] = {}
    for record in dataset.tx_receptions:
        if record.vantage not in primary or record.time < start:
            continue
        previous = first.get(record.tx_hash)
        if previous is None or record.time < previous:
            first[record.tx_hash] = record.time
    return first


def inclusion_index(dataset: MeasurementDataset) -> dict[str, str]:
    """Map transaction hash → hash of the canonical block including it."""
    require_chain(dataset)
    index: dict[str, str] = {}
    for block in dataset.chain.canonical_blocks:
        for tx_hash in block.tx_hashes:
            index.setdefault(tx_hash, block.block_hash)
    return index


def block_observation_times(dataset: MeasurementDataset) -> dict[str, float]:
    """Earliest observation of each block across primary vantages.

    Falls back to the earliest import time for blocks that produced no
    block message at any vantage (e.g. fetched during initial sync).
    """
    arrivals = block_arrivals(dataset, in_window_only=False)
    times: dict[str, float] = {}
    for block_hash, per_vantage in arrivals.times.items():
        times[block_hash] = min(per_vantage.values())
    primary = set(dataset.primary_vantages)
    for record in dataset.block_imports:
        if record.vantage not in primary:
            continue
        if record.block_hash not in times or record.time < times[record.block_hash]:
            times.setdefault(record.block_hash, record.time)
    return times


@dataclass(frozen=True)
class CommitTimesResult:
    """Figure 4's curves.

    Attributes:
        inclusion: CDF of inclusion delays (seconds).
        confirmations: ``{depth: CDF of commit delays at that depth}``.
        txs_used: Transactions contributing to the inclusion curve.
    """

    inclusion: Cdf
    confirmations: dict[int, Cdf]
    txs_used: int

    def median(self, depth: Optional[int] = None) -> float:
        """Median inclusion delay, or commit delay at ``depth``."""
        if depth is None:
            return self.inclusion.quantile(0.5)
        return self.confirmations[depth].quantile(0.5)

    def render(self) -> str:
        parts = [
            "Figure 4 — Transaction inclusion and commit times",
            format_cdf(self.inclusion, title="  inclusion"),
        ]
        for depth, cdf in sorted(self.confirmations.items()):
            parts.append(format_cdf(cdf, title=f"  {depth} confirmations"))
        parts.append(f"transactions used: {self.txs_used}")
        return "\n".join(parts)


def commit_times(
    dataset: MeasurementDataset,
    depths: tuple[int, ...] = CONFIRMATION_DEPTHS,
) -> CommitTimesResult:
    """Compute Figure 4 from a campaign data set.

    Transactions never observed in the mempool (only discovered inside a
    block) are excluded, as are confirmation depths the campaign ended
    too early to witness.

    Raises:
        AnalysisError: when no observed transaction was ever included.
    """
    require_chain(dataset)
    tx_seen = first_tx_observations(dataset)
    included_in = inclusion_index(dataset)
    block_seen = block_observation_times(dataset)
    height_of: Mapping[str, int] = {
        block_hash: dataset.chain.blocks[block_hash].height
        for block_hash in dataset.chain.canonical_hashes
    }
    canonical_by_height: dict[int, str] = {
        height: block_hash for block_hash, height in height_of.items()
    }

    inclusion_delays: list[float] = []
    confirmation_delays: dict[int, list[float]] = {depth: [] for depth in depths}
    for tx_hash, seen_at in tx_seen.items():
        block_hash = included_in.get(tx_hash)
        if block_hash is None:
            continue
        included_seen = block_seen.get(block_hash)
        if included_seen is None:
            continue
        inclusion_delays.append(max(included_seen - seen_at, 0.0))
        height = height_of[block_hash]
        for depth in depths:
            confirm_hash = canonical_by_height.get(height + depth)
            if confirm_hash is None:
                continue
            confirm_seen = block_seen.get(confirm_hash)
            if confirm_seen is None:
                continue
            confirmation_delays[depth].append(max(confirm_seen - seen_at, 0.0))

    if not inclusion_delays:
        raise AnalysisError("no observed transaction was included in the main chain")
    confirmations = {
        depth: Cdf.of(np.asarray(delays), f"{depth}-confirmation delays")
        for depth, delays in confirmation_delays.items()
        if delays
    }
    return CommitTimesResult(
        inclusion=Cdf.of(np.asarray(inclusion_delays), "inclusion delays"),
        confirmations=confirmations,
        txs_used=len(inclusion_delays),
    )
