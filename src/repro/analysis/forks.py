"""Blockchain forks (Table III, §III-C4) and one-miner forks (§III-C5).

A fork is a maximal chain of non-canonical blocks rooted at a canonical
parent.  Table III tallies forks by length and by whether they became
*recognized* — every block referenced as an uncle by some main-chain
block.  Uncle validity requires the uncle's parent to be a main-chain
ancestor, so only the first block of a fork can ever be recognized; the
paper indeed observed zero recognized forks of length > 1.

§III-C5's one-miner forks are groups of same-height blocks produced by a
*single* miner: pairs, triples and the occasional larger tuple from pool
malfunctions.  The paper found the losing variants were rewarded as
uncles in 98 % of cases and carried an identical transaction set 56 % of
the time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import require_chain, window_blocks
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.records import ChainBlockRecord
from repro.stats.tables import format_table


@dataclass(frozen=True)
class Fork:
    """One fork: a maximal non-canonical chain.

    Attributes:
        blocks: The fork's blocks, root (canonical parent's child) first.
        recognized: True when every block is referenced as an uncle.
    """

    blocks: tuple[ChainBlockRecord, ...]
    recognized: bool

    @property
    def length(self) -> int:
        return len(self.blocks)


@dataclass(frozen=True)
class ForkResult:
    """Table III plus the §III-C4 headline shares.

    Attributes:
        forks: Every fork found in the measurement window.
        total_blocks: All observed blocks in the window (main + forked).
        main_blocks: Canonical blocks in the window.
        recognized_uncle_blocks: Non-canonical blocks referenced as uncles.
        unrecognized_blocks: Non-canonical blocks never referenced.
    """

    forks: tuple[Fork, ...]
    total_blocks: int
    main_blocks: int
    recognized_uncle_blocks: int
    unrecognized_blocks: int

    def by_length(self) -> dict[int, tuple[int, int, int]]:
        """``{length: (total, recognized, unrecognized)}`` — Table III."""
        table: dict[int, list[int]] = {}
        for fork in self.forks:
            row = table.setdefault(fork.length, [0, 0, 0])
            row[0] += 1
            if fork.recognized:
                row[1] += 1
            else:
                row[2] += 1
        return {length: tuple(row) for length, row in sorted(table.items())}

    @property
    def main_share(self) -> float:
        return self.main_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def uncle_share(self) -> float:
        return (
            self.recognized_uncle_blocks / self.total_blocks
            if self.total_blocks
            else 0.0
        )

    @property
    def unrecognized_share(self) -> float:
        return (
            self.unrecognized_blocks / self.total_blocks if self.total_blocks else 0.0
        )

    def render(self) -> str:
        rows = [
            (length, total, recognized, unrecognized)
            for length, (total, recognized, unrecognized) in self.by_length().items()
        ]
        table = format_table(
            headers=["Fork Length", "Total", "Recognized", "Unrecognized"],
            rows=rows,
            title="Table III — Fork types and lengths",
        )
        return (
            f"{table}\n"
            f"main: {100 * self.main_share:.2f}%  "
            f"uncles: {100 * self.uncle_share:.2f}%  "
            f"unrecognized: {100 * self.unrecognized_share:.2f}%  "
            f"(of {self.total_blocks} observed blocks)"
        )


def fork_analysis(dataset: MeasurementDataset) -> ForkResult:
    """Compute Table III from a campaign data set."""
    require_chain(dataset)
    blocks = window_blocks(dataset)
    canonical = dataset.chain.canonical_set
    referenced = dataset.chain.referenced_uncles()

    non_canonical = [b for b in blocks if b.block_hash not in canonical]
    children: dict[str, list[ChainBlockRecord]] = {}
    for block in non_canonical:
        children.setdefault(block.parent_hash, []).append(block)

    forks: list[Fork] = []
    for block in non_canonical:
        if block.parent_hash not in canonical:
            continue  # not a fork root
        # Follow the (rare) non-canonical descendants; on a branch inside
        # the fork, follow the longest path — fork length is the depth of
        # the divergence, which is what the paper tallies.
        chain: list[ChainBlockRecord] = []
        cursor: ChainBlockRecord | None = block
        while cursor is not None:
            chain.append(cursor)
            descendants = children.get(cursor.block_hash, [])
            cursor = (
                max(descendants, key=_subtree_depth_key(children))
                if descendants
                else None
            )
        recognized = all(b.block_hash in referenced for b in chain)
        forks.append(Fork(blocks=tuple(chain), recognized=recognized))

    main_count = sum(1 for b in blocks if b.block_hash in canonical)
    uncle_count = sum(
        1 for b in non_canonical if b.block_hash in referenced
    )
    return ForkResult(
        forks=tuple(forks),
        total_blocks=len(blocks),
        main_blocks=main_count,
        recognized_uncle_blocks=uncle_count,
        unrecognized_blocks=len(non_canonical) - uncle_count,
    )


def _subtree_depth_key(children: dict[str, list[ChainBlockRecord]]):
    def depth(block: ChainBlockRecord) -> int:
        descendants = children.get(block.block_hash, [])
        if not descendants:
            return 1
        return 1 + max(depth(child) for child in descendants)

    return depth


@dataclass(frozen=True)
class OneMinerForkResult:
    """§III-C5's one-miner fork statistics.

    Attributes:
        tuple_counts: ``{tuple size: occurrences}`` (pairs, triples, ...).
        rewarded_share: Fraction of losing variants referenced as uncles.
        same_txset_share: Fraction of groups whose variants carry an
            identical transaction set.
        share_of_forks: One-miner fork groups / all fork events.
    """

    tuple_counts: dict[int, int]
    rewarded_share: float
    same_txset_share: float
    share_of_forks: float

    @property
    def total_groups(self) -> int:
        return sum(self.tuple_counts.values())

    def render(self) -> str:
        rows = [(size, count) for size, count in sorted(self.tuple_counts.items())]
        table = format_table(
            headers=["Tuple size", "Occurrences"],
            rows=rows,
            title="One-miner forks (same miner, same height)",
        )
        return (
            f"{table}\n"
            f"rewarded as uncles: {100 * self.rewarded_share:.1f}%  "
            f"identical tx set: {100 * self.same_txset_share:.1f}%  "
            f"share of all forks: {100 * self.share_of_forks:.1f}%"
        )


@dataclass(frozen=True)
class UncleRuleSavings:
    """Effect of the §V proposal: forbid referencing uncles mined by a
    miner that already produced the main-chain block at the same height.

    Attributes:
        denied_uncles: Referenced uncles the rule would invalidate.
        total_referenced_uncles: All referenced uncles in the window.
        denied_reward_eth: Uncle rewards (ETH) the rule would withhold.
        wasted_blocks_avoided: Non-canonical same-height-same-miner
            blocks whose mining the rule deters (the ≈1 % of platform
            work §V estimates could be saved).
        total_blocks: All observed blocks in the window.
    """

    denied_uncles: int
    total_referenced_uncles: int
    denied_reward_eth: float
    wasted_blocks_avoided: int
    total_blocks: int

    @property
    def denied_share(self) -> float:
        if not self.total_referenced_uncles:
            return 0.0
        return self.denied_uncles / self.total_referenced_uncles

    @property
    def work_saved_share(self) -> float:
        return (
            self.wasted_blocks_avoided / self.total_blocks
            if self.total_blocks
            else 0.0
        )

    def render(self) -> str:
        return "\n".join(
            [
                "§V uncle-rule proposal — forbid same-height same-miner uncles",
                f"  referenced uncles denied: {self.denied_uncles}/"
                f"{self.total_referenced_uncles} "
                f"({100 * self.denied_share:.1f}%)",
                f"  uncle rewards withheld:   {self.denied_reward_eth:.2f} ETH",
                f"  wasted work deterred:     {self.wasted_blocks_avoided} blocks "
                f"({100 * self.work_saved_share:.2f}% of observed blocks)",
            ]
        )


def uncle_rule_savings(dataset: MeasurementDataset) -> UncleRuleSavings:
    """Quantify the §V proposal on a campaign data set."""
    require_chain(dataset)
    blocks = window_blocks(dataset)
    canonical = dataset.chain.canonical_set
    canonical_miner_by_height = {
        block.height: block.miner
        for block in blocks
        if block.block_hash in canonical
    }
    referenced = dataset.chain.referenced_uncles()
    denied = 0
    denied_reward = 0.0
    wasted = 0
    # Map uncle hash -> height of the including block, for reward maths.
    including_height: dict[str, int] = {}
    for block in dataset.chain.canonical_blocks:
        for uncle_hash in block.uncle_hashes:
            including_height[uncle_hash] = block.height
    from repro.chain.rewards import uncle_reward

    for block in blocks:
        if block.block_hash in canonical:
            continue
        main_miner = canonical_miner_by_height.get(block.height)
        if main_miner != block.miner:
            continue
        wasted += 1
        if block.block_hash in referenced:
            denied += 1
            include_at = including_height.get(block.block_hash)
            if include_at is not None:
                denied_reward += uncle_reward(block.height, include_at)
    return UncleRuleSavings(
        denied_uncles=denied,
        total_referenced_uncles=len(referenced),
        denied_reward_eth=denied_reward,
        wasted_blocks_avoided=wasted,
        total_blocks=len(blocks),
    )


def one_miner_forks(dataset: MeasurementDataset) -> OneMinerForkResult:
    """Compute the §III-C5 one-miner fork statistics."""
    require_chain(dataset)
    blocks = window_blocks(dataset)
    canonical = dataset.chain.canonical_set
    referenced = dataset.chain.referenced_uncles()

    groups: dict[tuple[int, str], list[ChainBlockRecord]] = {}
    for block in blocks:
        groups.setdefault((block.height, block.miner), []).append(block)
    multi = {key: group for key, group in groups.items() if len(group) > 1}

    tuple_counts: dict[int, int] = {}
    losers = 0
    losers_rewarded = 0
    same_txset = 0
    for group in multi.values():
        size = len(group)
        tuple_counts[size] = tuple_counts.get(size, 0) + 1
        tx_sets = {frozenset(block.tx_hashes) for block in group}
        if len(tx_sets) == 1:
            same_txset += 1
        for block in group:
            if block.block_hash in canonical:
                continue
            losers += 1
            if block.block_hash in referenced:
                losers_rewarded += 1

    fork_events = fork_analysis(dataset).forks
    total_forks = len(fork_events)
    return OneMinerForkResult(
        tuple_counts=tuple_counts,
        rewarded_share=losers_rewarded / losers if losers else 0.0,
        same_txset_share=same_txset / len(multi) if multi else 0.0,
        share_of_forks=len(multi) / total_forks if total_forks else 0.0,
    )
