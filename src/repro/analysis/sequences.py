"""Consecutive-block sequences and block finality (Figure 7, §III-D).

A pool that mines k consecutive main-chain blocks can censor transactions
for k block intervals — and with k >= 12 it could rewrite "final" history.
This module provides:

* the empirical per-pool run-length distribution over a campaign's main
  chain (Figure 7's log-scale CDF);
* the closed-form streak expectations the paper uses (a pool with share p
  should start a run of length >= k about ``n * (1-p) * p^k`` times over
  n blocks — the paper's back-of-envelope ``n * p^k`` is also provided);
* a whole-history lottery simulation standing in for the paper's
  Etherscan lookback (102/41/4/1 sequences of length 10/11/12/14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.common import require_chain, window_canonical_blocks
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.tables import format_table


def run_lengths(miner_sequence: Sequence[str]) -> dict[str, list[int]]:
    """Lengths of maximal same-miner runs, per miner."""
    runs: dict[str, list[int]] = {}
    current: str | None = None
    length = 0
    for miner in miner_sequence:
        if miner == current:
            length += 1
            continue
        if current is not None:
            runs.setdefault(current, []).append(length)
        current = miner
        length = 1
    if current is not None:
        runs.setdefault(current, []).append(length)
    return runs


@dataclass(frozen=True)
class SequenceResult:
    """Figure 7's data.

    Attributes:
        runs: Per-pool run lengths over the window's main chain.
        max_run: Longest run per pool.
        chain_length: Main-chain blocks considered.
    """

    runs: dict[str, list[int]]
    max_run: dict[str, int]
    chain_length: int

    def cdf_points(self, pool: str) -> list[tuple[int, float]]:
        """(length L, fraction of runs <= L) pairs for ``pool``."""
        lengths = sorted(self.runs.get(pool, []))
        if not lengths:
            raise AnalysisError(f"pool {pool!r} mined no blocks in the window")
        total = len(lengths)
        points = []
        for cutoff in range(1, max(lengths) + 1):
            below = sum(1 for value in lengths if value <= cutoff)
            points.append((cutoff, below / total))
        return points

    def render(self, pools: Sequence[str] | None = None) -> str:
        names = list(pools) if pools else sorted(
            self.runs, key=lambda p: -len(self.runs[p])
        )[:6]
        rows = []
        for name in names:
            lengths = self.runs.get(name, [])
            if not lengths:
                continue
            rows.append(
                (
                    name,
                    len(lengths),
                    self.max_run.get(name, 0),
                    sum(1 for v in lengths if v >= 4),
                )
            )
        return format_table(
            headers=["Pool", "Runs", "Longest", "Runs >= 4"],
            rows=rows,
            title="Figure 7 — Consecutive main-chain blocks per pool",
        )


def sequence_analysis(dataset: MeasurementDataset) -> SequenceResult:
    """Compute Figure 7 from a campaign data set."""
    require_chain(dataset)
    chain = window_canonical_blocks(dataset)
    if not chain:
        raise AnalysisError("no main-chain blocks inside the measurement window")
    miners = [block.miner for block in chain]
    runs = run_lengths(miners)
    return SequenceResult(
        runs=runs,
        max_run={pool: max(lengths) for pool, lengths in runs.items()},
        chain_length=len(miners),
    )


# ---------------------------------------------------------------------- #
# Closed-form streak theory (§III-D's probability arguments)
# ---------------------------------------------------------------------- #


def expected_streaks(share: float, length: int, chain_blocks: int) -> float:
    """Expected number of runs of >= ``length`` consecutive blocks.

    A run of length >= k starts at a position with probability
    ``(1 - p) * p^k`` (previous block by someone else, then k in a row),
    so over n positions the expectation is ``n * (1 - p) * p^k``.
    """
    if not 0 < share < 1:
        raise AnalysisError(f"share must lie in (0, 1), got {share!r}")
    if length < 1 or chain_blocks < 1:
        raise AnalysisError("length and chain_blocks must be positive")
    return chain_blocks * (1.0 - share) * share**length


def paper_expected_streaks(share: float, length: int, chain_blocks: int) -> float:
    """The paper's simpler estimate ``n * p^k`` (no run-start correction).

    §III-D computes e.g. 0.259^8 × 201,086 ≈ 4 expected 8-streaks for
    Ethermine; this helper reproduces that arithmetic exactly.
    """
    if not 0 < share < 1:
        raise AnalysisError(f"share must lie in (0, 1), got {share!r}")
    return chain_blocks * share**length


def months_to_observe(share: float, length: int, blocks_per_month: int = 201_086) -> float:
    """Expected months until one streak of >= ``length`` occurs."""
    expected = paper_expected_streaks(share, length, blocks_per_month)
    if expected <= 0:
        return float("inf")
    return 1.0 / expected


# ---------------------------------------------------------------------- #
# Whole-history lookback (stand-in for the paper's Etherscan analysis)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class HistoryStreaks:
    """Counts of long streaks over a simulated whole chain history."""

    total_blocks: int
    counts_at_least: dict[int, int]
    longest: int
    longest_pool: str

    def render(self) -> str:
        rows = [
            (length, count)
            for length, count in sorted(self.counts_at_least.items())
        ]
        table = format_table(
            headers=["Streak >= L", "Occurrences"],
            rows=rows,
            title=f"Whole-history streaks over {self.total_blocks:,} blocks",
        )
        return f"{table}\nlongest: {self.longest} (by {self.longest_pool})"


#: Pool-concentration epochs approximating Ethereum's mining history up to
#: block 7,680,658 (the measurement window's end).  Mining was markedly
#: more concentrated in 2016-2017 — DwarfPool briefly exceeded 40 % and
#: Ethpool/Ethermine plus F2Pool dominated — which is why the paper's
#: whole-history lookback finds far more long streaks (102 of length
#: >= 10) than 2019's shares alone would generate.  Each entry is
#: ``(blocks, {pool: share})``; the schedule is a documented calibration,
#: not measured ground truth (see DESIGN.md).
HISTORY_EPOCHS: tuple[tuple[int, dict[str, float]], ...] = (
    # 2015-2016: very concentrated (DwarfPool peaks, early Ethpool).
    (1_500_000, {"DwarfPool": 0.37, "Ethpool": 0.22, "F2pool": 0.15}),
    # 2016-2017: Ethermine+Ethpool dominant, F2Pool strong.
    (2_000_000, {"Ethermine": 0.33, "F2pool": 0.22, "DwarfPool": 0.12}),
    # 2017-2018: gradual dilution.
    (2_000_000, {"Ethermine": 0.30, "Sparkpool": 0.15, "F2pool": 0.13}),
    # 2018-2019: the paper's measured shares.
    (2_180_658, {"Ethermine": 0.259, "Sparkpool": 0.227, "F2pool": 0.127}),
)


def simulate_history_epochs(
    epochs: Sequence[tuple[int, Mapping[str, float]]] = HISTORY_EPOCHS,
    seed: int = 0,
    lengths: Sequence[int] = (10, 11, 12, 14),
) -> HistoryStreaks:
    """Whole-history lookback with evolving pool concentration.

    Runs :func:`simulate_history` per epoch and merges the tallies.
    Streaks spanning an epoch boundary are split (a negligible effect at
    millions of blocks per epoch).
    """
    if not epochs:
        raise AnalysisError("at least one epoch is required")
    total = 0
    counts: dict[int, int] = {length: 0 for length in lengths}
    longest, longest_pool = 0, ""
    for index, (blocks, shares) in enumerate(epochs):
        result = simulate_history(
            blocks, shares, seed=derive_epoch_seed(seed, index), lengths=lengths
        )
        total += blocks
        for length in lengths:
            counts[length] += result.counts_at_least[length]
        if result.longest > longest:
            longest, longest_pool = result.longest, result.longest_pool
    return HistoryStreaks(
        total_blocks=total,
        counts_at_least=counts,
        longest=longest,
        longest_pool=longest_pool,
    )


def derive_epoch_seed(seed: int, index: int) -> int:
    """Stable per-epoch child seed."""
    return seed * 1_000_003 + index


def simulate_history(
    total_blocks: int,
    shares: Mapping[str, float],
    seed: int = 0,
    lengths: Sequence[int] = (10, 11, 12, 14),
) -> HistoryStreaks:
    """Simulate the whole-chain miner lottery and count long streaks.

    Stands in for the paper's full-blockchain Etherscan lookback
    (§III-D): with ~7.9 M blocks of history and pool shares like 2019's,
    streaks of 10-14 blocks appear — far beyond what the 12-block rule's
    flat-miner-universe analysis anticipates.

    Args:
        total_blocks: Number of blocks to draw (Ethereum's history at the
            measurement window was ≈ 7.7 M).
        shares: Pool hash-power shares; must sum to <= 1 (remainder goes
            to a fringe pseudo-pool that never accumulates streaks of
            interest).
        seed: RNG seed.
        lengths: Streak lengths to tally (``>= L`` counts).
    """
    if total_blocks < 1:
        raise AnalysisError("total_blocks must be positive")
    names = list(shares)
    weights = np.array([shares[name] for name in names], dtype=float)
    if (weights <= 0).any():
        raise AnalysisError("shares must be positive")
    fringe = 1.0 - float(weights.sum())
    if fringe < -1e-9:
        raise AnalysisError("shares sum to more than 1")
    if fringe > 0:
        names.append("_fringe")
        weights = np.append(weights, fringe)
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)
    draws = rng.choice(len(names), size=total_blocks, p=weights)

    # Vectorised run-length extraction: boundaries where the miner changes.
    change = np.flatnonzero(np.diff(draws)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [total_blocks]))
    lengths_arr = ends - starts
    owners = draws[starts]

    counts = {
        length: int(np.sum((lengths_arr >= length) & (owners != len(names) - 1)))
        if fringe > 0
        else int(np.sum(lengths_arr >= length))
        for length in lengths
    }
    # Longest streak by a real pool.
    real = owners != (len(names) - 1) if fringe > 0 else np.ones_like(owners, bool)
    if real.any():
        best = int(np.argmax(np.where(real, lengths_arr, 0)))
        longest = int(lengths_arr[best])
        longest_pool = names[int(owners[best])]
    else:  # pragma: no cover - degenerate configuration
        longest, longest_pool = 0, ""
    return HistoryStreaks(
        total_blocks=total_blocks,
        counts_at_least=counts,
        longest=longest,
        longest_pool=longest_pool,
    )
