"""Out-of-order transaction receptions (Figure 5, §III-C2).

Two transactions from the same sender are *received out of order* at a
vantage when the one with the higher nonce is observed first.  Such
transactions cannot be included until their predecessors arrive, so they
commit more slowly — the paper measured 11.54 % out-of-order committed
transactions (up from 6.18 % in 2017), with 50 %/90 % commit quantiles of
192 s/325 s versus 189 s/292 s for in-order ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.commit import (
    DEFAULT_CONFIRMATIONS,
    block_observation_times,
    inclusion_index,
)
from repro.analysis.common import require_chain
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.descriptive import Cdf
from repro.stats.figures import format_cdf


#: Sentinel larger than any realistic nonce.
_NONCE_INFINITY = 2**62


def out_of_order_txs(dataset: MeasurementDataset, vantage: str) -> set[str]:
    """Hashes of transactions received out of order at ``vantage``.

    Per the paper's definition, a pair is out of order when the
    *higher-nonce* transaction is observed first; that transaction is the
    one whose commit is delayed (miners cannot include it until its
    predecessors arrive), so it is the one flagged here.  Concretely: a
    transaction is flagged when, at its first observation, some earlier
    nonce of the same sender has not yet been seen.
    """
    start = dataset.measurement_start
    # Per-sender reception sequences, in observation order.
    sequences: dict[str, list[tuple[int, str]]] = {}
    seen_hashes: set[str] = set()
    for record in dataset.tx_receptions:  # log order == reception order
        if record.vantage != vantage or record.time < start:
            continue
        if record.tx_hash in seen_hashes:
            continue
        seen_hashes.add(record.tx_hash)
        sequences.setdefault(record.sender, []).append(
            (record.nonce, record.tx_hash)
        )
    flagged: set[str] = set()
    for receptions in sequences.values():
        # A tx is out of order iff a strictly lower nonce of the same
        # sender arrives after it: compare against the suffix minimum.
        suffix_min = [0] * (len(receptions) + 1)
        suffix_min[-1] = _NONCE_INFINITY
        for index in range(len(receptions) - 1, -1, -1):
            suffix_min[index] = min(suffix_min[index + 1], receptions[index][0])
        for index, (nonce, tx_hash) in enumerate(receptions):
            if suffix_min[index + 1] < nonce:
                flagged.add(tx_hash)
    return flagged


@dataclass(frozen=True)
class ReorderingResult:
    """Figure 5 plus the §III-C2 headline shares.

    Attributes:
        out_of_order_share: Fraction of committed transactions received
            out of order at the reference vantage.
        per_vantage_share: The same share computed at every vantage.
        in_order: CDF of commit (12-confirmation) delays, in-order txs.
        out_of_order: CDF for out-of-order txs.
    """

    out_of_order_share: float
    per_vantage_share: dict[str, float]
    in_order: Cdf
    out_of_order: Cdf

    def render(self) -> str:
        parts = [
            "Figure 5 — Commit delay by reception ordering",
            format_cdf(self.in_order, title="  in-order"),
            format_cdf(self.out_of_order, title="  out-of-order"),
            f"out-of-order committed share: {100 * self.out_of_order_share:.2f}%",
        ]
        return "\n".join(parts)


def reordering_analysis(
    dataset: MeasurementDataset,
    confirmations: int = DEFAULT_CONFIRMATIONS,
) -> ReorderingResult:
    """Compute Figure 5 and the out-of-order share.

    Commit delay is the ``confirmations``-deep commit time measured from
    the transaction's first observation at the reference vantage.

    Raises:
        AnalysisError: when either ordering class has no committed txs.
    """
    require_chain(dataset)
    reference = dataset.reference_vantage or dataset.primary_vantages[0]
    start = dataset.measurement_start

    seen_at: dict[str, float] = {}
    for record in dataset.tx_receptions:
        if record.vantage != reference or record.time < start:
            continue
        if record.tx_hash not in seen_at:
            seen_at[record.tx_hash] = record.time

    flagged = out_of_order_txs(dataset, reference)
    included_in = inclusion_index(dataset)
    block_seen = block_observation_times(dataset)
    height_of = {
        block_hash: dataset.chain.blocks[block_hash].height
        for block_hash in dataset.chain.canonical_hashes
    }
    canonical_by_height = {h: b for b, h in height_of.items()}

    in_order_delays: list[float] = []
    out_of_order_delays: list[float] = []
    committed = 0
    committed_ooo = 0
    for tx_hash, observed in seen_at.items():
        block_hash = included_in.get(tx_hash)
        if block_hash is None:
            continue
        confirm_hash = canonical_by_height.get(height_of[block_hash] + confirmations)
        if confirm_hash is None:
            continue
        confirm_seen = block_seen.get(confirm_hash)
        if confirm_seen is None:
            continue
        committed += 1
        delay = max(confirm_seen - observed, 0.0)
        if tx_hash in flagged:
            committed_ooo += 1
            out_of_order_delays.append(delay)
        else:
            in_order_delays.append(delay)

    if not in_order_delays or not out_of_order_delays:
        raise AnalysisError(
            "need committed transactions in both ordering classes "
            f"(in-order: {len(in_order_delays)}, "
            f"out-of-order: {len(out_of_order_delays)})"
        )

    per_vantage = {}
    for vantage in dataset.primary_vantages:
        v_flagged = out_of_order_txs(dataset, vantage)
        v_committed = [h for h in sorted(v_flagged) if h in included_in]
        v_seen = sum(
            1
            for record in dataset.tx_receptions
            if record.vantage == vantage
            and record.time >= start
            and record.tx_hash in included_in
        )
        per_vantage[vantage] = len(v_committed) / v_seen if v_seen else 0.0

    return ReorderingResult(
        out_of_order_share=committed_ooo / committed if committed else 0.0,
        per_vantage_share=per_vantage,
        in_order=Cdf.of(np.asarray(in_order_delays), "in-order commit delays"),
        out_of_order=Cdf.of(
            np.asarray(out_of_order_delays), "out-of-order commit delays"
        ),
    )
