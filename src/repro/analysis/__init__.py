"""Analysis toolchain: one module per paper artifact.

* :mod:`repro.analysis.propagation` — Figure 1 (plus the §III-A1 tx-delay
  and §III-C3 empty-vs-full claims)
* :mod:`repro.analysis.redundancy` — Table II
* :mod:`repro.analysis.geography` — Figures 2 and 3
* :mod:`repro.analysis.commit` — Figure 4
* :mod:`repro.analysis.reordering` — Figure 5
* :mod:`repro.analysis.empty_blocks` — Figure 6
* :mod:`repro.analysis.forks` — Table III, §III-C5, and the §V uncle rule
* :mod:`repro.analysis.sequences` — Figure 7 and §III-D
* :mod:`repro.analysis.censorship` — §III-D temporary-censorship windows
* :mod:`repro.analysis.decentralization` — §IV concentration metrics
* :mod:`repro.analysis.summary` — §III-A headline statistics
"""

from repro.analysis.censorship import (
    CensorshipResult,
    CensorshipWindow,
    censorship_windows,
    expected_window_duration,
    summarise_durations,
)
from repro.analysis.commit import CommitTimesResult, commit_times
from repro.analysis.common import block_arrivals, block_miners, pool_order
from repro.analysis.decentralization import (
    DecentralizationResult,
    decentralization_metrics,
    gini,
    herfindahl,
    nakamoto_coefficient,
)
from repro.analysis.empty_blocks import EmptyBlockResult, empty_block_analysis
from repro.analysis.forks import (
    Fork,
    ForkResult,
    OneMinerForkResult,
    UncleRuleSavings,
    fork_analysis,
    one_miner_forks,
    uncle_rule_savings,
)
from repro.analysis.fairness import (
    FairnessResult,
    fairness_audit,
    reward_ledger,
)
from repro.analysis.gas import GasUtilizationResult, gas_utilization
from repro.analysis.geography import (
    FirstReceptionResult,
    PoolGeographyResult,
    first_reception_shares,
    pool_first_receptions,
)
from repro.analysis.propagation import (
    PropagationResult,
    TxPropagationResult,
    block_propagation_delays,
    empty_vs_full_propagation,
    transaction_propagation_delays,
)
from repro.analysis.redundancy import RedundancyResult, reception_redundancy
from repro.analysis.reordering import ReorderingResult, reordering_analysis
from repro.analysis.sequences import (
    HISTORY_EPOCHS,
    HistoryStreaks,
    SequenceResult,
    expected_streaks,
    months_to_observe,
    paper_expected_streaks,
    run_lengths,
    sequence_analysis,
    simulate_history,
    simulate_history_epochs,
)
from repro.analysis.summary import StudySummary, study_summary

__all__ = [
    "CensorshipResult",
    "CensorshipWindow",
    "CommitTimesResult",
    "DecentralizationResult",
    "EmptyBlockResult",
    "FirstReceptionResult",
    "Fork",
    "ForkResult",
    "HistoryStreaks",
    "OneMinerForkResult",
    "PoolGeographyResult",
    "PropagationResult",
    "RedundancyResult",
    "ReorderingResult",
    "SequenceResult",
    "StudySummary",
    "UncleRuleSavings",
    "block_arrivals",
    "block_miners",
    "block_propagation_delays",
    "censorship_windows",
    "commit_times",
    "decentralization_metrics",
    "empty_vs_full_propagation",
    "expected_window_duration",
    "FairnessResult",
    "GasUtilizationResult",
    "fairness_audit",
    "gas_utilization",
    "reward_ledger",
    "gini",
    "herfindahl",
    "nakamoto_coefficient",
    "summarise_durations",
    "transaction_propagation_delays",
    "TxPropagationResult",
    "empty_block_analysis",
    "expected_streaks",
    "first_reception_shares",
    "fork_analysis",
    "months_to_observe",
    "one_miner_forks",
    "paper_expected_streaks",
    "pool_first_receptions",
    "pool_order",
    "reception_redundancy",
    "reordering_analysis",
    "run_lengths",
    "sequence_analysis",
    "simulate_history",
    "simulate_history_epochs",
    "HISTORY_EPOCHS",
    "study_summary",
    "uncle_rule_savings",
]
