"""Empty-block mining (Figure 6, §III-C3).

Miners occasionally publish blocks with no transactions: they forfeit the
fees but keep the (much larger) static reward, start mining the successor
earlier, and their block propagates faster.  The paper measured 1.45 %
empty blocks overall, found most pools doing it at least occasionally
(Zhizhu: > 25 % of its blocks), two major pools never doing it, and one
solo miner *only* mining empty blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import pool_order, require_chain, window_canonical_blocks
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.figures import format_bar_chart

#: Label for the aggregated fringe, as in Figure 6.
REMAINING_LABEL = "Remaining pools"


@dataclass(frozen=True)
class PoolEmptyStats:
    """Per-pool empty-block tally (one bar of Figure 6)."""

    pool: str
    total_blocks: int
    empty_blocks: int

    @property
    def empty_fraction(self) -> float:
        return self.empty_blocks / self.total_blocks if self.total_blocks else 0.0


@dataclass(frozen=True)
class EmptyBlockResult:
    """Figure 6 plus the §III-C3 headline numbers.

    Attributes:
        per_pool: Tallies for the top pools + the aggregated remainder,
            in block-production order (Figure 6's row order).
        total_blocks: Main-chain blocks in the measurement window.
        empty_blocks: Empty main-chain blocks in the window.
    """

    per_pool: tuple[PoolEmptyStats, ...]
    total_blocks: int
    empty_blocks: int

    @property
    def empty_fraction(self) -> float:
        return self.empty_blocks / self.total_blocks if self.total_blocks else 0.0

    def pool(self, name: str) -> PoolEmptyStats:
        for stats in self.per_pool:
            if stats.pool == name:
                return stats
        raise KeyError(name)

    def render(self) -> str:
        chart = format_bar_chart(
            {stats.pool: float(stats.empty_blocks) for stats in self.per_pool},
            title="Figure 6 — Empty blocks per mining pool",
            unit=" blocks",
        )
        return (
            f"{chart}\n"
            f"empty blocks: {self.empty_blocks}/{self.total_blocks} "
            f"({100 * self.empty_fraction:.2f}%)"
        )


def empty_block_analysis(
    dataset: MeasurementDataset, top_n: int = 15
) -> EmptyBlockResult:
    """Compute Figure 6 from a campaign data set."""
    require_chain(dataset)
    blocks = window_canonical_blocks(dataset)
    if not blocks:
        raise AnalysisError("no main-chain blocks inside the measurement window")
    top, _rest = pool_order(dataset, top_n=top_n)
    totals: dict[str, int] = {}
    empties: dict[str, int] = {}
    for block in blocks:
        label = block.miner if block.miner in top else REMAINING_LABEL
        totals[label] = totals.get(label, 0) + 1
        if block.is_empty:
            empties[label] = empties.get(label, 0) + 1
    ordered = [name for name in top if name in totals]
    if REMAINING_LABEL in totals:
        ordered.append(REMAINING_LABEL)
    per_pool = tuple(
        PoolEmptyStats(
            pool=label,
            total_blocks=totals[label],
            empty_blocks=empties.get(label, 0),
        )
        for label in ordered
    )
    return EmptyBlockResult(
        per_pool=per_pool,
        total_blocks=len(blocks),
        empty_blocks=sum(1 for block in blocks if block.is_empty),
    )
