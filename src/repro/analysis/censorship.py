"""Temporary-censorship windows (§III-D).

A pool mining k consecutive main-chain blocks can refuse to include a
transaction for the whole wall-clock span of that run — the paper found
pools "regularly have the opportunity to temporarily censor transactions
for more than two minutes", with 3-minute events on record.

This module converts a campaign's miner runs into wall-clock censorship
windows, using the actual block timestamps rather than a nominal
inter-block time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import require_chain, window_canonical_blocks
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.tables import format_table


@dataclass(frozen=True)
class CensorshipWindow:
    """One single-pool run of consecutive main-chain blocks.

    Attributes:
        pool: The run's miner.
        start_height: Height of the first block of the run.
        length: Number of consecutive blocks.
        duration: Wall-clock seconds from the timestamp of the block
            *before* the run to the run's last block — the span during
            which no other miner sealed, i.e. the censorable window.
    """

    pool: str
    start_height: int
    length: int
    duration: float


@dataclass(frozen=True)
class CensorshipResult:
    """All censorship windows of a campaign.

    Attributes:
        windows: Every single-pool run of length >= ``min_length``.
        chain_length: Main-chain blocks considered.
    """

    windows: tuple[CensorshipWindow, ...]
    chain_length: int

    def longest(self) -> CensorshipWindow:
        if not self.windows:
            raise AnalysisError("no censorship windows found")
        return max(self.windows, key=lambda w: w.duration)

    def over(self, seconds: float) -> list[CensorshipWindow]:
        """Windows lasting longer than ``seconds``."""
        return [w for w in self.windows if w.duration > seconds]

    def per_pool_maxima(self) -> dict[str, float]:
        maxima: dict[str, float] = {}
        for window in self.windows:
            maxima[window.pool] = max(maxima.get(window.pool, 0.0), window.duration)
        return maxima

    def render(self, top_n: int = 8) -> str:
        ranked = sorted(self.windows, key=lambda w: -w.duration)[:top_n]
        rows = [
            (w.pool, w.length, f"{w.duration:.1f}s", w.start_height) for w in ranked
        ]
        table = format_table(
            headers=["Pool", "Blocks", "Window", "At height"],
            rows=rows,
            title="Longest temporary-censorship windows (§III-D)",
        )
        over_2min = len(self.over(120.0))
        return (
            f"{table}\n"
            f"windows over two minutes: {over_2min} "
            f"(in {self.chain_length} main blocks)"
        )


def censorship_windows(
    dataset: MeasurementDataset, min_length: int = 2
) -> CensorshipResult:
    """Extract single-pool censorship windows from a campaign.

    Args:
        dataset: Campaign output.
        min_length: Shortest run considered a window (a single block
            censors only trivially).
    """
    require_chain(dataset)
    chain = window_canonical_blocks(dataset)
    if len(chain) < 2:
        raise AnalysisError("need at least two main-chain blocks")
    windows: list[CensorshipWindow] = []
    run_start = 0
    for index in range(1, len(chain) + 1):
        ended = index == len(chain) or chain[index].miner != chain[run_start].miner
        if not ended:
            continue
        length = index - run_start
        if length >= min_length:
            # The window opens at the previous miner's block (or the run's
            # own first block when the run starts the window).
            open_time = (
                chain[run_start - 1].timestamp
                if run_start > 0
                else chain[run_start].timestamp
            )
            windows.append(
                CensorshipWindow(
                    pool=chain[run_start].miner,
                    start_height=chain[run_start].height,
                    length=length,
                    duration=float(chain[index - 1].timestamp - open_time),
                )
            )
        run_start = index
    return CensorshipResult(windows=tuple(windows), chain_length=len(chain))


def expected_window_duration(length: int, inter_block: float = 13.3) -> float:
    """Expected wall-clock span of a ``length``-block run.

    The run occupies ``length`` inter-block intervals in expectation
    (including the interval before its first block), so a 9-block run
    censors for ≈ 2 minutes at 13.3 s blocks — the paper's headline.
    """
    if length < 1:
        raise AnalysisError("length must be positive")
    return length * inter_block


def summarise_durations(result: CensorshipResult) -> dict[str, float]:
    """Aggregate duration statistics across all windows."""
    if not result.windows:
        raise AnalysisError("no censorship windows found")
    durations = np.array([w.duration for w in result.windows])
    return {
        "count": float(durations.size),
        "median": float(np.median(durations)),
        "p90": float(np.percentile(durations, 90)),
        "max": float(durations.max()),
    }
