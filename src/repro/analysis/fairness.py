"""Reward fairness audit.

§III-C5's punchline is economic: one-miner forks let powerful pools
collect *multiple* rewards per height, so their income outruns their
hash power.  This module reconstructs the reward ledger from a campaign's
chain snapshot (block + uncle + nephew rewards under the Constantinople
schedule) and tests two things:

* whether the *lottery* itself was fair — main-chain block counts vs
  hash-power shares, via a chi-square goodness-of-fit test (scipy);
* whether *income* per pool deviates from its block share — the signature
  of uncle-reward harvesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np
from scipy import stats

from repro.analysis.common import require_chain, window_canonical_blocks
from repro.chain.rewards import (
    BLOCK_REWARD_ETH,
    NEPHEW_REWARD_DIVISOR,
    uncle_reward,
)
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.tables import format_table


def reward_ledger(dataset: MeasurementDataset) -> dict[str, float]:
    """Reconstruct per-miner ETH income from the chain snapshot.

    Covers static block rewards, uncle rewards (with the linear decay
    schedule) and nephew bonuses.  Fees are omitted — they are an order
    of magnitude below the static reward and need gas-price data the
    snapshot does not carry.
    """
    require_chain(dataset)
    ledger: dict[str, float] = {}
    blocks = dataset.chain.blocks
    for block in window_canonical_blocks(dataset):
        if block.height == 0:
            continue
        ledger[block.miner] = ledger.get(block.miner, 0.0) + BLOCK_REWARD_ETH
        for uncle_hash in block.uncle_hashes:
            uncle = blocks.get(uncle_hash)
            if uncle is None:
                continue
            ledger[uncle.miner] = ledger.get(uncle.miner, 0.0) + uncle_reward(
                uncle.height, block.height
            )
            ledger[block.miner] = ledger.get(block.miner, 0.0) + (
                BLOCK_REWARD_ETH / NEPHEW_REWARD_DIVISOR
            )
    return ledger


@dataclass(frozen=True)
class FairnessResult:
    """Outcome of the fairness audit.

    Attributes:
        ledger: Per-miner ETH income over the window.
        income_share: Per-miner fraction of total income.
        block_share: Per-miner fraction of main-chain blocks.
        income_per_block: Per-miner ETH per main-chain block; honest
            miners sit at ≈2 ETH, uncle harvesters above it.
        lottery_p_value: Chi-square p-value of block counts against the
            supplied hash-power shares (None when shares not given).
    """

    ledger: dict[str, float]
    income_share: dict[str, float]
    block_share: dict[str, float]
    income_per_block: dict[str, float]
    lottery_p_value: Optional[float]

    def excess_income_ratio(self, miner: str) -> float:
        """Income-per-block relative to the honest 2-ETH baseline."""
        per_block = self.income_per_block.get(miner)
        if per_block is None:
            raise AnalysisError(f"{miner!r} mined no main-chain blocks")
        return per_block / BLOCK_REWARD_ETH

    def render(self, top_n: int = 8) -> str:
        ranked = sorted(self.ledger, key=lambda m: -self.ledger[m])[:top_n]
        rows = [
            (
                miner,
                f"{self.ledger[miner]:.1f}",
                f"{100 * self.block_share.get(miner, 0.0):.1f}%",
                f"{100 * self.income_share.get(miner, 0.0):.1f}%",
                f"{self.income_per_block.get(miner, 0.0):.3f}",
            )
            for miner in ranked
        ]
        table = format_table(
            headers=["Miner", "ETH", "Block share", "Income share", "ETH/block"],
            rows=rows,
            title="Reward fairness audit (§III-C5's economics)",
        )
        p_line = (
            f"lottery chi-square p-value: {self.lottery_p_value:.3f}"
            if self.lottery_p_value is not None
            else "lottery chi-square: no hash-power shares supplied"
        )
        return f"{table}\n{p_line}"


def fairness_audit(
    dataset: MeasurementDataset,
    hashpower: Optional[Mapping[str, float]] = None,
) -> FairnessResult:
    """Run the fairness audit over a campaign.

    Args:
        dataset: Campaign output.
        hashpower: Optional hash-power shares; enables the lottery test.

    Raises:
        AnalysisError: on an empty window.
    """
    ledger = reward_ledger(dataset)
    if not ledger:
        raise AnalysisError("no rewards in the measurement window")
    blocks = [b for b in window_canonical_blocks(dataset) if b.height > 0]
    block_counts: dict[str, int] = {}
    for block in blocks:
        block_counts[block.miner] = block_counts.get(block.miner, 0) + 1
    total_blocks = sum(block_counts.values())
    total_income = sum(ledger.values())

    p_value: Optional[float] = None
    if hashpower:
        named = [name for name in hashpower if name in block_counts]
        if len(named) >= 2:
            observed = np.array([block_counts[name] for name in named], dtype=float)
            shares = np.array([hashpower[name] for name in named], dtype=float)
            covered = observed.sum()
            expected = shares / shares.sum() * covered
            _, p_value = stats.chisquare(observed, expected)
            p_value = float(p_value)

    return FairnessResult(
        ledger=ledger,
        income_share={m: v / total_income for m, v in ledger.items()},
        block_share={m: c / total_blocks for m, c in block_counts.items()},
        income_per_block={
            m: ledger.get(m, 0.0) / c for m, c in block_counts.items()
        },
        lottery_p_value=p_value,
    )
