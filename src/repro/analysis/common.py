"""Shared plumbing for the analysis modules.

Every analysis consumes a :class:`~repro.measurement.dataset.MeasurementDataset`
and nothing else — exactly like the paper's offline processing of its
vantage logs.  This module centralises the recurring index structures:
first block arrivals per (block, vantage), miner lookup, the measurement
window filter, and the canonical-chain view restricted to the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.measurement.records import ChainBlockRecord


@dataclass(frozen=True)
class BlockArrivals:
    """First observation time of each block at each primary vantage.

    Attributes:
        times: ``{block_hash: {vantage: first observation time}}``.
        heights: ``{block_hash: height}`` as advertised by the messages.
    """

    times: dict[str, dict[str, float]]
    heights: dict[str, int]

    def first_observation(self, block_hash: str) -> Optional[tuple[str, float]]:
        """(vantage, time) of the globally earliest observation, if any."""
        per_vantage = self.times.get(block_hash)
        if not per_vantage:
            return None
        vantage = min(per_vantage, key=lambda v: (per_vantage[v], v))
        return vantage, per_vantage[vantage]


def block_arrivals(
    dataset: MeasurementDataset, in_window_only: bool = True
) -> BlockArrivals:
    """Index the first block observation per (block, vantage).

    Both direct ``NewBlock`` pushes and hash announcements count as
    observations, mirroring the paper's Decker-style method.
    """
    primary = set(dataset.primary_vantages)
    start = dataset.measurement_start if in_window_only else float("-inf")
    times: dict[str, dict[str, float]] = {}
    heights: dict[str, int] = {}
    for record in dataset.block_messages:
        if record.vantage not in primary or record.time < start:
            continue
        per_vantage = times.setdefault(record.block_hash, {})
        previous = per_vantage.get(record.vantage)
        if previous is None or record.time < previous:
            per_vantage[record.vantage] = record.time
        heights.setdefault(record.block_hash, record.height)
    return BlockArrivals(times=times, heights=heights)


def block_miners(dataset: MeasurementDataset) -> dict[str, str]:
    """Map block hash → producing miner, from the chain snapshot plus any
    direct block messages (which carry the header)."""
    miners: dict[str, str] = {
        block_hash: block.miner for block_hash, block in dataset.chain.blocks.items()
    }
    for record in dataset.block_messages:
        if record.miner and record.block_hash not in miners:
            miners[record.block_hash] = record.miner
    return miners


def window_blocks(dataset: MeasurementDataset) -> list[ChainBlockRecord]:
    """All snapshot blocks sealed inside the measurement window."""
    start = dataset.measurement_start
    return [
        block
        for block in dataset.chain.blocks.values()
        if block.timestamp >= start
    ]


def window_canonical_blocks(dataset: MeasurementDataset) -> list[ChainBlockRecord]:
    """Main-chain blocks sealed inside the measurement window, by height."""
    start = dataset.measurement_start
    return [
        block
        for block in dataset.chain.canonical_blocks
        if block.timestamp >= start
    ]


def require_chain(dataset: MeasurementDataset) -> None:
    """Fail fast when the dataset lacks a chain snapshot."""
    if not dataset.chain.blocks or not dataset.chain.canonical_hashes:
        raise AnalysisError(
            "dataset has no chain snapshot; run the campaign to completion"
        )


def pool_order(
    dataset: MeasurementDataset, top_n: int = 15
) -> tuple[list[str], set[str]]:
    """Order pools by main-chain block production, as the paper's figures do.

    Returns:
        (top pool names, set of remaining pool names).
    """
    require_chain(dataset)
    counts: dict[str, int] = {}
    for block in window_canonical_blocks(dataset):
        counts[block.miner] = counts.get(block.miner, 0) + 1
    ranked = sorted(counts, key=lambda name: (-counts[name], name))
    top = ranked[:top_n]
    rest = set(ranked[top_n:])
    return top, rest
