"""Decentralization metrics (§IV context).

The related work the paper builds on quantifies mining centralization:
Luu et al. found ≈80 % of Ethereum's mining power in fewer than ten
pools; Gencer et al. showed both Bitcoin and Ethereum have centralized
mining.  This module computes the standard decentralization metrics over
a campaign's main chain so those claims can be checked against any
simulated (or re-parameterised) pool population:

* **top-N share** — fraction of blocks mined by the N biggest producers;
* **Nakamoto coefficient** — smallest number of producers jointly
  exceeding half the blocks;
* **Gini coefficient** and **HHI** of block production.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import require_chain, window_canonical_blocks
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.tables import format_table


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = single)."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise AnalysisError("cannot compute Gini of an empty sample")
    if (array < 0).any():
        raise AnalysisError("Gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, array.size + 1)
    return float((2 * (ranks * array).sum()) / (array.size * total) - (
        array.size + 1
    ) / array.size)


def herfindahl(shares: np.ndarray) -> float:
    """Herfindahl–Hirschman index of a share vector (sums to 1)."""
    array = np.asarray(shares, dtype=float)
    if array.size == 0:
        raise AnalysisError("cannot compute HHI of an empty share vector")
    return float((array**2).sum())


def nakamoto_coefficient(shares: np.ndarray) -> int:
    """Smallest number of producers whose shares exceed 50 %."""
    array = np.sort(np.asarray(shares, dtype=float))[::-1]
    if array.size == 0:
        raise AnalysisError("cannot compute Nakamoto coefficient of nothing")
    cumulative = np.cumsum(array)
    over = np.flatnonzero(cumulative > 0.5)
    if over.size == 0:
        return int(array.size)
    return int(over[0] + 1)


@dataclass(frozen=True)
class DecentralizationResult:
    """Decentralization metrics over a campaign's main chain.

    Attributes:
        producer_shares: ``{miner: share of main blocks}``, descending.
        top4_share / top10_share: The §I / §IV concentration headlines.
        nakamoto: Producers needed to control half the blocks.
        gini_coefficient: Inequality of block production.
        hhi: Herfindahl–Hirschman index.
        blocks: Main-chain blocks considered.
    """

    producer_shares: dict[str, float]
    top4_share: float
    top10_share: float
    nakamoto: int
    gini_coefficient: float
    hhi: float
    blocks: int

    def render(self) -> str:
        rows = [
            (name, f"{100 * share:.2f}%")
            for name, share in list(self.producer_shares.items())[:10]
        ]
        table = format_table(
            headers=["Producer", "Share"],
            rows=rows,
            title="Block production concentration (§IV context)",
        )
        return (
            f"{table}\n"
            f"top-4: {100 * self.top4_share:.1f}%  "
            f"top-10: {100 * self.top10_share:.1f}%  "
            f"Nakamoto: {self.nakamoto}  "
            f"Gini: {self.gini_coefficient:.3f}  HHI: {self.hhi:.3f}"
        )


def decentralization_metrics(dataset: MeasurementDataset) -> DecentralizationResult:
    """Compute concentration metrics from a campaign's main chain."""
    require_chain(dataset)
    blocks = [b for b in window_canonical_blocks(dataset) if b.height > 0]
    if not blocks:
        raise AnalysisError("no main-chain blocks inside the measurement window")
    counts: dict[str, int] = {}
    for block in blocks:
        counts[block.miner] = counts.get(block.miner, 0) + 1
    total = len(blocks)
    ordered = dict(
        sorted(
            ((name, count / total) for name, count in counts.items()),
            key=lambda item: -item[1],
        )
    )
    shares = np.array(list(ordered.values()))
    return DecentralizationResult(
        producer_shares=ordered,
        top4_share=float(shares[:4].sum()),
        top10_share=float(shares[:10].sum()),
        nakamoto=nakamoto_coefficient(shares),
        gini_coefficient=gini(np.array(list(counts.values()), dtype=float)),
        hhi=herfindahl(shares),
        blocks=total,
    )
