"""Block propagation delays (Figure 1, §III-A1).

The paper adapts Decker & Wattenhofer's method: the propagation delay of
a block is the difference between its first observation at *any* vantage
and its arrival at each remaining vantage.  The miner→first-vantage leg
is invisible by construction, and accuracy is bounded by NTP — both
caveats carry over verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import block_arrivals
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.descriptive import Histogram, Summary
from repro.stats.figures import format_histogram

#: Histogram bin width used by Figure 1 (50 ms buckets up to 500 ms).
FIGURE1_BIN_WIDTH = 0.050
FIGURE1_UPPER = 0.500


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of the propagation-delay analysis.

    Attributes:
        delays: Per-(block, trailing-vantage) delays in seconds.
        summary: Descriptive summary (median, mean, p95, p99 — the
            numbers §III-A1 quotes).
        histogram: Figure 1's normalised histogram.
        blocks_used: Number of blocks observed by at least two vantages.
    """

    delays: np.ndarray
    summary: Summary
    histogram: Histogram
    blocks_used: int

    def render(self) -> str:
        lines = [
            "Figure 1 — PDF of times since first block observation",
            format_histogram(
                self.histogram.bin_centers,
                self.histogram.densities,
                unit="ms",
                scale=1000.0,
            ),
            (
                f"median={self.summary.median * 1000:.0f}ms "
                f"mean={self.summary.mean * 1000:.0f}ms "
                f"p95={self.summary.p95 * 1000:.0f}ms "
                f"p99={self.summary.p99 * 1000:.0f}ms "
                f"(over {self.summary.count} arrivals, {self.blocks_used} blocks)"
            ),
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class TxPropagationResult:
    """Transaction propagation delays and their geographic neutrality.

    The paper measured these but omitted the figure for space (§III-A1),
    reporting two facts: transaction delays sit within the measurement
    error, and — unlike blocks — they are *not* affected by vantage
    geography because transactions originate from a geographically
    dispersed user population (§III-B1).

    Attributes:
        summary: Delay distribution (trailing-vantage arrivals).
        first_shares: Fraction of transactions each vantage saw first.
        txs_used: Transactions observed by at least two vantages.
    """

    summary: Summary
    first_shares: dict[str, float]
    txs_used: int

    @property
    def max_min_share_ratio(self) -> float:
        """Dispersion of the first-observation shares (1.0 = perfectly
        even). Blocks show ratios of 4-10×; transactions should be small."""
        values = [v for v in self.first_shares.values() if v > 0]
        if not values:
            return float("inf")
        return max(self.first_shares.values()) / min(values)

    def render(self) -> str:
        shares = "  ".join(
            f"{vantage}={100 * share:.1f}%"
            for vantage, share in self.first_shares.items()
        )
        return "\n".join(
            [
                "Transaction propagation (paper: figure omitted for space)",
                (
                    f"  median={self.summary.median * 1000:.0f}ms "
                    f"p95={self.summary.p95 * 1000:.0f}ms "
                    f"(over {self.summary.count} arrivals, {self.txs_used} txs)"
                ),
                f"  first observations per vantage: {shares}",
            ]
        )


def transaction_propagation_delays(
    dataset: MeasurementDataset,
) -> TxPropagationResult:
    """Compute transaction propagation delays and first-reception shares.

    Uses the same Decker-style first-observation method as blocks.

    Raises:
        AnalysisError: when no transaction reached two vantages.
    """
    dataset.require_vantages(2)
    primary = set(dataset.primary_vantages)
    start = dataset.measurement_start
    arrivals: dict[str, dict[str, float]] = {}
    for record in dataset.tx_receptions:
        if record.vantage not in primary or record.time < start:
            continue
        per_vantage = arrivals.setdefault(record.tx_hash, {})
        previous = per_vantage.get(record.vantage)
        if previous is None or record.time < previous:
            per_vantage[record.vantage] = record.time

    delays: list[float] = []
    wins: dict[str, int] = {v: 0 for v in dataset.primary_vantages}
    txs_used = 0
    for per_vantage in arrivals.values():
        if len(per_vantage) < 2:
            continue
        txs_used += 1
        winner = min(per_vantage, key=lambda v: (per_vantage[v], v))
        wins[winner] += 1
        first = per_vantage[winner]
        delays.extend(t - first for t in per_vantage.values() if t > first)
    if not delays:
        raise AnalysisError("no transaction was observed by two or more vantages")
    sample = np.clip(np.asarray(delays, dtype=float), 0.0, None)
    return TxPropagationResult(
        summary=Summary.of(sample, "tx propagation delays"),
        first_shares={v: wins[v] / txs_used for v in wins},
        txs_used=txs_used,
    )


def empty_vs_full_propagation(
    dataset: MeasurementDataset,
) -> tuple[Summary, Summary]:
    """Propagation-delay summaries for (empty, full) blocks separately.

    §III-C3 argues empty blocks propagate faster (smaller payload, no
    transaction validation) — one of the incentives behind empty-block
    mining.  Returns ``(empty_summary, full_summary)``.

    Raises:
        AnalysisError: when either class lacks multi-vantage blocks.
    """
    dataset.require_vantages(2)
    arrivals = block_arrivals(dataset)
    empty_hashes = {
        block_hash
        for block_hash, block in dataset.chain.blocks.items()
        if block.is_empty and block.height > 0
    }
    empty_delays: list[float] = []
    full_delays: list[float] = []
    for block_hash, per_vantage in arrivals.times.items():
        chain_block = dataset.chain.blocks.get(block_hash)
        if len(per_vantage) < 2 or chain_block is None or chain_block.height == 0:
            continue
        first = min(per_vantage.values())
        bucket = empty_delays if block_hash in empty_hashes else full_delays
        bucket.extend(t - first for t in per_vantage.values() if t > first)
    if not empty_delays or not full_delays:
        raise AnalysisError(
            "need both empty and full multi-vantage blocks "
            f"(empty: {len(empty_delays)}, full: {len(full_delays)})"
        )
    return (
        Summary.of(np.asarray(empty_delays), "empty-block delays"),
        Summary.of(np.asarray(full_delays), "full-block delays"),
    )


def block_propagation_delays(dataset: MeasurementDataset) -> PropagationResult:
    """Compute Figure 1 from a campaign data set.

    Raises:
        AnalysisError: when fewer than two vantages observed any block.
    """
    dataset.require_vantages(2)
    arrivals = block_arrivals(dataset)
    delays: list[float] = []
    blocks_used = 0
    for block_hash, per_vantage in arrivals.times.items():
        if len(per_vantage) < 2:
            continue
        blocks_used += 1
        first = min(per_vantage.values())
        delays.extend(t - first for t in per_vantage.values() if t > first)
    if not delays:
        raise AnalysisError("no block was observed by two or more vantages")
    sample = np.asarray(delays, dtype=float)
    # NTP offsets can make a trailing arrival appear to precede the first
    # observation; the paper clips these to zero implicitly by taking the
    # first observation as the reference.  Negative values cannot occur
    # here by construction, but clock noise can produce ~0 artefacts.
    sample = np.clip(sample, 0.0, None)
    return PropagationResult(
        delays=sample,
        summary=Summary.of(sample, "propagation delays"),
        histogram=Histogram.of(
            sample, bin_width=FIGURE1_BIN_WIDTH, upper=FIGURE1_UPPER
        ),
        blocks_used=blocks_used,
    )
