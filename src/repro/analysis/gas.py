"""Block gas utilization (§III-C3's "most blocks are ≈80 % full").

Block fullness matters to the empty-block incentive analysis: fee income
forfeited by an empty block is proportional to how full blocks usually
run.  This module measures the utilization distribution of a campaign's
main chain, counting transactions against the configured gas profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import require_chain, window_canonical_blocks
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset


@dataclass(frozen=True)
class GasUtilizationResult:
    """Gas utilization over the window's main chain.

    Attributes:
        mean_utilization: Mean of per-block gas_used/gas_limit.
        median_utilization: Median of the same ratio.
        full_block_share: Fraction of blocks above 95 % full.
        empty_block_share: Fraction with zero gas used.
        blocks: Main-chain blocks measured.
    """

    mean_utilization: float
    median_utilization: float
    full_block_share: float
    empty_block_share: float
    blocks: int

    def render(self) -> str:
        return "\n".join(
            [
                "Block gas utilization (§III-C3 context)",
                f"  mean={100 * self.mean_utilization:.1f}%  "
                f"median={100 * self.median_utilization:.1f}%",
                f"  >95% full: {100 * self.full_block_share:.1f}%  "
                f"empty: {100 * self.empty_block_share:.1f}%  "
                f"({self.blocks} blocks)",
            ]
        )


def gas_utilization(
    dataset: MeasurementDataset, gas_limit: int
) -> GasUtilizationResult:
    """Compute gas utilization from a campaign's import records.

    The chain snapshot stores transaction hashes but not gas, so per-block
    gas comes from the reference vantage's import records.

    Args:
        dataset: Campaign output.
        gas_limit: The scenario's block gas limit.

    Raises:
        AnalysisError: when no import records cover the window.
    """
    require_chain(dataset)
    if gas_limit <= 0:
        raise AnalysisError("gas_limit must be positive")
    canonical = {
        block.block_hash for block in window_canonical_blocks(dataset)
        if block.height > 0
    }
    reference = dataset.reference_vantage or next(iter(dataset.vantage_regions))
    gas_by_hash: dict[str, int] = {}
    for record in dataset.block_imports:
        if record.vantage != reference or record.block_hash not in canonical:
            continue
        gas_by_hash.setdefault(record.block_hash, record.gas_used)
    if not gas_by_hash:
        raise AnalysisError("no import records for main-chain blocks")
    ratios = np.array(
        [gas / gas_limit for gas in gas_by_hash.values()], dtype=float
    )
    return GasUtilizationResult(
        mean_utilization=float(ratios.mean()),
        median_utilization=float(np.median(ratios)),
        full_block_share=float(np.mean(ratios > 0.95)),
        empty_block_share=float(np.mean(ratios == 0.0)),
        blocks=int(ratios.size),
    )
