"""Campaign-wide headline statistics (§III-A's opening numbers).

The paper reports: 216,656 blocks observed (including forks), 21,960,051
unique transactions, of which 94 % were valid transactions included in
main blocks, and a 13.3 s mean inter-block time.  This module computes
the equivalents for a simulated campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.commit import first_tx_observations, inclusion_index
from repro.analysis.common import (
    require_chain,
    window_blocks,
    window_canonical_blocks,
)
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset


@dataclass(frozen=True)
class StudySummary:
    """Headline campaign statistics.

    Attributes:
        blocks_observed: All blocks seen in the window, forks included.
        main_blocks: Main-chain blocks in the window.
        unique_txs: Distinct transactions observed by any vantage.
        committed_txs: Observed transactions included in the main chain.
        committed_share: ``committed_txs / unique_txs``.
        mean_inter_block: Mean seconds between consecutive main blocks.
        median_inter_block: Median seconds between consecutive main blocks.
        duration: Measurement window length in seconds.
    """

    blocks_observed: int
    main_blocks: int
    unique_txs: int
    committed_txs: int
    committed_share: float
    mean_inter_block: float
    median_inter_block: float
    duration: float

    def render(self) -> str:
        return "\n".join(
            [
                "Campaign summary (§III-A headline numbers)",
                f"  blocks observed (incl. forks): {self.blocks_observed}",
                f"  main-chain blocks:             {self.main_blocks}",
                f"  unique transactions:           {self.unique_txs}",
                (
                    f"  committed transactions:        {self.committed_txs} "
                    f"({100 * self.committed_share:.1f}%)"
                ),
                f"  mean inter-block time:         {self.mean_inter_block:.2f}s",
                f"  median inter-block time:       {self.median_inter_block:.2f}s",
                f"  window duration:               {self.duration:.0f}s",
            ]
        )


def study_summary(dataset: MeasurementDataset) -> StudySummary:
    """Compute the §III-A headline statistics for a campaign."""
    require_chain(dataset)
    observed = window_blocks(dataset)
    canonical = window_canonical_blocks(dataset)
    if len(canonical) < 2:
        raise AnalysisError("need at least two main-chain blocks in the window")

    tx_seen = first_tx_observations(dataset)
    included = inclusion_index(dataset)
    committed = sum(1 for tx_hash in tx_seen if tx_hash in included)

    timestamps = np.array([block.timestamp for block in canonical], dtype=float)
    gaps = np.diff(np.sort(timestamps))
    last_message = max(
        (record.time for record in dataset.block_messages),
        default=dataset.measurement_start,
    )
    return StudySummary(
        blocks_observed=len(observed),
        main_blocks=len(canonical),
        unique_txs=len(tx_seen),
        committed_txs=committed,
        committed_share=committed / len(tx_seen) if tx_seen else 0.0,
        mean_inter_block=float(gaps.mean()),
        median_inter_block=float(np.median(gaps)),
        duration=max(last_message - dataset.measurement_start, 0.0),
    )
