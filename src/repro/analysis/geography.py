"""Geographic impact on block reception (Figures 2 and 3, §III-B).

Figure 2: the share of blocks each vantage observed first.  A uniform
network would split evenly; the paper measured EA first ≈ 40 % of the
time and NA about four times less — driven by the pools' gateway
placement, which Figure 3 breaks down per pool.

The NTP error bars of Figure 2 are reproduced as the share of wins whose
margin over the runner-up is below the clock-offset envelope (wins that
could flip under clock error).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import block_arrivals, block_miners, pool_order
from repro.errors import AnalysisError
from repro.measurement.dataset import MeasurementDataset
from repro.stats.figures import format_bar_chart, format_stacked_shares

#: Clock-offset bound that holds in 90 % of cases (10 ms, §II).
NTP_OFFSET_P90 = 0.010

#: Label the figures use for the aggregated small miners.
REMAINING_LABEL = "Remaining miners"


@dataclass(frozen=True)
class FirstReceptionResult:
    """Figure 2: first-observation share per vantage.

    Attributes:
        shares: ``{vantage: fraction of blocks it saw first}``.
        ambiguous_shares: Fraction of each vantage's wins with a margin
            below :data:`NTP_OFFSET_P90` (the error-bar analogue).
        blocks_used: Blocks observed by at least two vantages.
    """

    shares: dict[str, float]
    ambiguous_shares: dict[str, float]
    blocks_used: int

    def render(self) -> str:
        chart = format_bar_chart(
            self.shares,
            title="Figure 2 — First new-block observations per vantage",
            as_percent=True,
        )
        errors = "  ".join(
            f"{vantage}: ±{100 * self.ambiguous_shares.get(vantage, 0.0):.1f}%"
            for vantage in self.shares
        )
        return f"{chart}\nNTP-ambiguous margins: {errors}"


def first_reception_shares(dataset: MeasurementDataset) -> FirstReceptionResult:
    """Compute Figure 2 from a campaign data set."""
    dataset.require_vantages(2)
    arrivals = block_arrivals(dataset)
    wins: dict[str, int] = {v: 0 for v in dataset.primary_vantages}
    ambiguous: dict[str, int] = {v: 0 for v in dataset.primary_vantages}
    blocks_used = 0
    for per_vantage in arrivals.times.values():
        if len(per_vantage) < 2:
            continue
        blocks_used += 1
        ordered = sorted(per_vantage.items(), key=lambda item: (item[1], item[0]))
        winner, best = ordered[0]
        runner_up = ordered[1][1]
        wins[winner] = wins.get(winner, 0) + 1
        if runner_up - best < NTP_OFFSET_P90:
            ambiguous[winner] = ambiguous.get(winner, 0) + 1
    if blocks_used == 0:
        raise AnalysisError("no block was observed by two or more vantages")
    return FirstReceptionResult(
        shares={v: wins[v] / blocks_used for v in wins},
        ambiguous_shares={v: ambiguous[v] / blocks_used for v in ambiguous},
        blocks_used=blocks_used,
    )


@dataclass(frozen=True)
class PoolGeographyResult:
    """Figure 3: per-pool first-observation split across vantages.

    Attributes:
        pool_shares: ``{pool label: {vantage: share of that pool's blocks
            first observed there}}`` — each inner dict sums to ~1.
        pool_block_fraction: ``{pool label: fraction of observed blocks
            produced by the pool}`` (the percentages in Figure 3's
            x-axis labels).
        blocks_used: Blocks with a known miner and >= 2 observations.
    """

    pool_shares: dict[str, dict[str, float]]
    pool_block_fraction: dict[str, float]
    blocks_used: int

    def render(self) -> str:
        labelled = {
            f"{pool} ({100 * self.pool_block_fraction.get(pool, 0.0):.2f}%)": shares
            for pool, shares in self.pool_shares.items()
        }
        return format_stacked_shares(
            labelled,
            title="Figure 3 — First observations per mining pool and vantage",
        )


def pool_first_receptions(
    dataset: MeasurementDataset, top_n: int = 15
) -> PoolGeographyResult:
    """Compute Figure 3 from a campaign data set."""
    dataset.require_vantages(2)
    arrivals = block_arrivals(dataset)
    miners = block_miners(dataset)
    top, _rest = pool_order(dataset, top_n=top_n)
    vantages = dataset.primary_vantages

    def label_for(miner: str) -> str:
        return miner if miner in top else REMAINING_LABEL

    win_counts: dict[str, dict[str, int]] = {}
    block_counts: dict[str, int] = {}
    blocks_used = 0
    for block_hash, per_vantage in arrivals.times.items():
        miner = miners.get(block_hash)
        if miner is None or len(per_vantage) < 2:
            continue
        blocks_used += 1
        label = label_for(miner)
        winner = min(per_vantage, key=lambda v: (per_vantage[v], v))
        win_counts.setdefault(label, {v: 0 for v in vantages})[winner] += 1
        block_counts[label] = block_counts.get(label, 0) + 1
    if blocks_used == 0:
        raise AnalysisError("no attributable block observations")

    ordered_labels = [name for name in top if name in win_counts]
    if REMAINING_LABEL in win_counts:
        ordered_labels.append(REMAINING_LABEL)
    pool_shares = {
        label: {
            vantage: win_counts[label][vantage] / block_counts[label]
            for vantage in vantages
        }
        for label in ordered_labels
    }
    pool_block_fraction = {
        label: block_counts[label] / blocks_used for label in ordered_labels
    }
    return PoolGeographyResult(
        pool_shares=pool_shares,
        pool_block_fraction=pool_block_fraction,
        blocks_used=blocks_used,
    )
