"""Backend-tagged canonical-chain pin digests (CI artifact + gate).

Every CI matrix leg runs::

    python -m repro.devtools.pindigest --backend calendar \\
        --out pin-digests-calendar.json --check

which replays the repo's two seed-pinned campaigns — the seed-55 small
campaign and the mainnet smoke window — under the leg's event-queue
backend, writes the digests as a small JSON artifact (uploaded per leg,
so a cross-backend divergence is diffable straight from the CI run
page), and with ``--check`` fails the leg unless every digest matches
the canonical values pinned here.

The pinned values are the *same* digests the tier-1 suite asserts
(``tests/integration/test_determinism.py`` and
``tests/experiments/test_mainnet_preset.py``); this tool exists so the
determinism contract is enforced *per matrix leg, against a value
committed in one place*, rather than only inside a single pytest
process where both backends necessarily share one build.  A digest may
only change when a PR deliberately alters RNG draw order, and such a PR
must update :data:`EXPECTED_PINS` and say so.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.experiments.presets import mainnet_campaign, small_campaign
from repro.measurement.campaign import Campaign, CampaignConfig
from repro.node.miner import MAINNET_INTER_BLOCK_TIME

#: Artifact schema, bumped on incompatible layout changes.
PIN_SCHEMA = 1

#: Canonical digests per pinned campaign — backend-independent by the
#: determinism contract (DESIGN.md §5g): the calendar backend must
#: replay the heap's ``(time, priority, sequence)`` drain order bit for
#: bit, so one expected value covers every backend.
EXPECTED_PINS: dict[str, str] = {
    "small_seed55": (
        "aff2ea94748b9462f59cc134da366767120cfe31d5a30d8cf79bd20909e4c609"
    ),
    "mainnet_smoke_seed55": (
        "8a86a8f682a43d12b88982a0f64859a1f261e7b24d889c9b05f403ba913e6765"
    ),
}


def _pin_config(name: str) -> CampaignConfig:
    """Campaign config behind a pin (mirrors the tier-1 pin tests)."""
    if name == "small_seed55":
        return small_campaign(seed=55)
    if name == "mainnet_smoke_seed55":
        config = mainnet_campaign(seed=55)
        return replace(
            config,
            duration=20 * MAINNET_INTER_BLOCK_TIME,
            scenario=replace(config.scenario, n_nodes=150),
        )
    raise ValueError(f"unknown pin {name!r}")


def compute_pin(name: str, backend: Optional[str]) -> str:
    """Canonical-chain digest of one pinned campaign under ``backend``.

    ``backend`` is set as an *explicit* scenario override (beating the
    ``REPRO_QUEUE_BACKEND`` environment), so the artifact really
    measures the backend its filename claims.
    """
    config = _pin_config(name)
    if backend is not None:
        config = replace(
            config, scenario=replace(config.scenario, queue_backend=backend)
        )
    dataset = Campaign(config).run()
    hashes = dataset.chain.canonical_hashes
    return hashlib.sha256(",".join(hashes).encode()).hexdigest()


def build_artifact(
    backend: Optional[str], only: Optional[Sequence[str]] = None
) -> dict[str, Any]:
    names = list(only) if only else list(EXPECTED_PINS)
    for name in names:
        if name not in EXPECTED_PINS:
            raise ValueError(f"unknown pin {name!r}")
    return {
        "schema": PIN_SCHEMA,
        "backend": backend or "default",
        "pins": {name: compute_pin(name, backend) for name in names},
    }


def check_artifact(artifact: dict[str, Any]) -> list[str]:
    """Mismatch messages against :data:`EXPECTED_PINS` (empty = pass)."""
    failures: list[str] = []
    for name, digest in artifact["pins"].items():
        expected = EXPECTED_PINS[name]
        if digest != expected:
            failures.append(
                f"{name} [{artifact['backend']}]: digest {digest} != "
                f"pinned {expected}"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pindigest",
        description="Replay the seed-pinned campaigns under one queue "
        "backend; write (and optionally gate) the canonical digests.",
    )
    parser.add_argument(
        "--backend", default=None, choices=("heap", "calendar"),
        help="event-queue backend to pin (default: the session default)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the digest artifact JSON here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless every digest matches EXPECTED_PINS",
    )
    parser.add_argument(
        "--only", action="append", choices=tuple(EXPECTED_PINS),
        help="restrict to one pin (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    artifact = build_artifact(args.backend, only=args.only)
    rendered = json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.write_text(rendered)
        print(f"wrote {args.out}")
    for name, digest in artifact["pins"].items():
        print(f"  {name} [{artifact['backend']}]: {digest}")
    if args.check:
        failures = check_artifact(artifact)
        if failures:
            print("pin digest mismatch:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"all {len(artifact['pins'])} pin(s) match the canonical values")
    return 0


if __name__ == "__main__":
    sys.exit(main())
