"""Rule base class and registry.

Adding a rule is a ~30-line affair:

1. subclass :class:`Rule` in a module under ``repro.devtools.lint.rules``
   (set ``rule_id``, ``title``, ``invariant``, ``suggestion``; implement
   ``check``);
2. decorate it with :func:`register`;
3. add a positive + negative fixture to ``tests/devtools/test_lint_rules.py``.

The registry is import-driven: :func:`all_rules` triggers the import of
``repro.devtools.lint.rules``, whose ``__init__`` pulls in every rule
module.
"""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING, Iterator, Type, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.context import ModuleContext
    from repro.devtools.lint.findings import Finding
    from repro.devtools.lint.graph.project import ProjectContext


class Rule(abc.ABC):
    """One statically checkable invariant.

    Class attributes:
        rule_id: Stable identifier (``DET001`` ...), unique in the registry.
        title: Short name for listings.
        invariant: The property the rule protects (shown in ``--list-rules``
            and the docs table).
        suggestion: How to fix a finding.
    """

    rule_id: str = ""
    title: str = ""
    invariant: str = ""
    suggestion: str = ""

    @abc.abstractmethod
    def check(self, module: "ModuleContext") -> Iterator["Finding"]:
        """Yield findings for ``module``."""

    def finding(
        self, module: "ModuleContext", node: ast.AST, message: str
    ) -> "Finding":
        """Shorthand: a finding of this rule at ``node``."""
        return module.finding(self.rule_id, node, message)


class ProjectRule(Rule):
    """A cross-module rule: runs once per lint run over the whole project.

    Subclasses implement :meth:`check_project` against a
    :class:`~repro.devtools.lint.graph.project.ProjectContext` (symbol
    table, call graph, dataflow summaries) and may yield findings in any
    module.  The per-module :meth:`check` hook is a no-op — the runner
    invokes project rules in a separate whole-program phase, after every
    file has parsed.  Suppressions and the baseline apply to project
    findings exactly as to per-file ones (findings are bucketed back to
    their module before filtering).
    """

    def check(self, module: "ModuleContext") -> Iterator["Finding"]:
        """Per-module hook; intentionally empty for project rules."""
        return iter(())

    @abc.abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator["Finding"]:
        """Yield findings across the whole project."""


_RULES: dict[str, Rule] = {}

R = TypeVar("R", bound=Type[Rule])


def register(rule_class: R) -> R:
    """Class decorator placing one instance of ``rule_class`` in the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule_class


def _ensure_loaded() -> None:
    # Importing the rules package runs every @register decorator.
    import repro.devtools.lint.rules  # noqa: F401  (import for side effect)


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` on unknown ids)."""
    _ensure_loaded()
    return _RULES[rule_id]


#: Framework-level pseudo-rules reported by the runner itself (they have
#: no ``Rule`` subclass: suppression hygiene is checked while matching
#: suppressions, not by visiting the AST).
FRAMEWORK_RULES: dict[str, str] = {
    "SUP001": "suppression comment has no justification "
    "(write `# repro: noqa[RULE] why it is safe`)",
    "SUP002": "suppression comment no longer matches any finding "
    "(delete it)",
}
