"""Argument handling shared by ``repro lint`` and ``python -m repro.devtools.lint``.

:func:`add_lint_arguments` configures a (sub)parser; :func:`execute`
interprets the parsed namespace.  ``repro.cli`` mounts these on its
``lint`` subcommand so both entry points stay in lockstep.

Exit codes: 0 clean, 1 findings (or strict-mode hygiene failures),
2 usage or analyzer-internal errors (missing path, corrupt baseline,
unparseable source file, crashed rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.graph.export import render_graph
from repro.devtools.lint.registry import FRAMEWORK_RULES, all_rules
from repro.devtools.lint.reporters import render_json, render_text
from repro.devtools.lint.runner import lint_paths

#: Default baseline location, resolved relative to the invocation cwd.
DEFAULT_BASELINE = Path("lint-baseline.json")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover the current findings and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on unused suppressions and expired baseline entries",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and exit",
    )
    parser.add_argument(
        "--graph-out",
        type=Path,
        default=None,
        metavar="GRAPH_JSON",
        help="export the whole-program call graph + summaries "
        "(versioned JSON) to this path",
    )


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        print(f"    protects: {rule.invariant}")
        print(f"    fix:      {rule.suggestion}")
    for rule_id, description in sorted(FRAMEWORK_RULES.items()):
        print(f"{rule_id}  {description}")
    print(
        "\nsuppress with `# repro: noqa[RULE] <reason>` on the offending "
        "line (or alone on the line above)"
    )
    return 0


def execute(args: argparse.Namespace) -> int:
    """Run the lint command described by ``args``."""
    if args.list_rules:
        return _list_rules()
    select = (
        frozenset(rule.strip() for rule in args.select.split(",") if rule.strip())
        if args.select
        else None
    )
    config = LintConfig(
        baseline_path=args.baseline,
        strict=args.strict,
        select=select,
    )
    try:
        report = lint_paths(args.paths, config)
    except FileNotFoundError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    except ValueError as error:  # corrupt baseline
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.graph_out is not None and report.project is not None:
        args.graph_out.write_text(
            json.dumps(render_graph(report.project), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"call graph written to {args.graph_out}", file=sys.stderr)
    if report.parse_errors or report.internal_errors:
        # Analyzer-internal failure: report the offending paths and exit
        # 2 so CI distinguishes "lint found problems" from "lint broke".
        for error in report.parse_errors:
            print(f"repro lint: parse error: {error}", file=sys.stderr)
        for error in report.internal_errors:
            print(f"repro lint: internal error: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        Baseline.from_findings(report.findings + report.baselined).save(
            args.baseline
        )
        print(
            f"baseline updated: {len(report.findings) + len(report.baselined)} "
            f"entr(ies) written to {args.baseline}"
        )
        return 0
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report, strict=args.strict))
    return 1 if report.failed(args.strict) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & sim-safety static analysis for src/repro.",
    )
    add_lint_arguments(parser)
    return execute(parser.parse_args(argv))
