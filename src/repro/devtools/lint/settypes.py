"""Lightweight set-type inference for one module.

The ordering rules (DET003/DET004/SIM001) need to answer one question:
*is this expression a ``set``/``frozenset``?*  Full type inference is out
of scope; instead :class:`SetTypeIndex` runs a small abstract pass over
the module AST that tracks the three ways sets are named in this
codebase:

* names assigned from a set expression (literal, comprehension,
  ``set(...)`` call, set algebra) or annotated ``set[...]``;
* ``self.<attr>`` attributes assigned/annotated the same way anywhere in
  the module;
* calls to module-local functions whose return annotation is a set.

The pass is module-local and flow-insensitive by design: it never sees
across imports, and a name counts as a set everywhere once it is bound
to one anywhere.  That trades a few theoretical false positives (which
inline ``# repro: noqa[...]`` handles) for zero false negatives on the
patterns that actually perturb simulations.
"""

from __future__ import annotations

import ast

#: Annotation heads that denote an unordered set type.
_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Constructor calls producing a set.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: ``set`` methods returning another set.
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Binary operators under which set-ness propagates (set algebra).
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Fixpoint cap for alias propagation (``a = b`` chains).
_MAX_PASSES = 5


def _annotation_is_set(node: ast.expr | None) -> bool:
    """True when the annotation AST names a set type (incl. strings)."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    return False


class SetTypeIndex:
    """Which names/attributes/calls in a module are set-typed.

    Args:
        tree: Parsed module AST.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()
        self.self_attrs: set[str] = set()
        self.set_returning_funcs: set[str] = set()
        self._collect(tree)

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_is_set(node.returns):
                    self.set_returning_funcs.add(node.name)
                for arg in [
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ]:
                    if _annotation_is_set(arg.annotation):
                        self.names.add(arg.arg)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation):
                    self._bind(node.target)
        # Alias propagation needs a fixpoint: ``b = set(); a = b`` may be
        # visited in either order by ast.walk.
        for _ in range(_MAX_PASSES):
            before = (len(self.names), len(self.self_attrs))
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and self.is_set_expr(node.value):
                    for target in node.targets:
                        self._bind(target)
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and self.is_set_expr(node.value):
                        self._bind(node.target)
            if (len(self.names), len(self.self_attrs)) == before:
                break

    def _bind(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.self_attrs.add(target.attr)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_set_expr(self, node: ast.expr) -> bool:
        """True when ``node`` statically looks like a set/frozenset."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return (
                    func.id in _SET_CONSTRUCTORS
                    or func.id in self.set_returning_funcs
                )
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_PRODUCING_METHODS and self.is_set_expr(
                    func.value
                ):
                    return True
                return (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self.set_returning_funcs
                )
        return False
