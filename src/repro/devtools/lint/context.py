"""Per-module lint context handed to every rule.

Parsing and the shared analyses (set-type inference) happen once per
file here, so each rule's ``check`` stays a thin AST visitor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.settypes import SetTypeIndex


@dataclass
class ModuleContext:
    """Everything a rule may need about one source file.

    Attributes:
        relpath: POSIX path reported in findings.
        source: Raw module source.
        tree: Parsed AST.
        lines: Source split into physical lines.
        config: The run's :class:`LintConfig`.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: list[str]
    config: LintConfig = field(default_factory=LintConfig)
    _set_types: Optional[SetTypeIndex] = field(default=None, repr=False)

    @classmethod
    def from_source(
        cls,
        source: str,
        relpath: str = "<string>",
        config: Optional[LintConfig] = None,
    ) -> "ModuleContext":
        """Parse ``source`` into a context (raises ``SyntaxError``)."""
        return cls(
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=relpath),
            lines=source.splitlines(),
            config=config or LintConfig(),
        )

    @property
    def set_types(self) -> SetTypeIndex:
        """Lazily built set-type index shared by the ordering rules."""
        if self._set_types is None:
            self._set_types = SetTypeIndex(self.tree)
        return self._set_types

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-indexed ``line`` (baseline identity)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` located at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
            snippet=self.snippet(line),
        )
