"""Determinism & sim-safety static analysis (``repro lint``).

An AST-based rule framework that turns the repo's reproducibility
conventions into CI-gated properties:

========  =========================================================
DET001    no wall-clock reads in simulation code
DET002    no ambient RNG (stdlib ``random``, legacy ``numpy.random``)
DET003    no iteration over unordered sets
DET004    no ``sum()`` over unordered collections
SIM001    no sends/schedules ordered by set iteration
API001    no broad ``except`` / mutable default arguments
SUP001    suppressions must carry a justification
SUP002    suppressions must still match a finding (strict mode)
========  =========================================================

Public API: :func:`lint_paths` / :func:`lint_source` run the analysis,
:class:`LintConfig` parameterises it, and :func:`main` is the CLI.
See DESIGN.md §5d for the invariant each rule protects.
"""

from __future__ import annotations

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.cli import add_lint_arguments, execute, main
from repro.devtools.lint.config import DEFAULT_WALLCLOCK_ALLOWLIST, LintConfig
from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, all_rules, get_rule, register
from repro.devtools.lint.reporters import render_json, render_text
from repro.devtools.lint.runner import LintReport, lint_paths, lint_source

__all__ = [
    "Baseline",
    "DEFAULT_WALLCLOCK_ALLOWLIST",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "Rule",
    "add_lint_arguments",
    "all_rules",
    "execute",
    "get_rule",
    "lint_paths",
    "lint_source",
    "main",
    "register",
    "render_json",
    "render_text",
]
