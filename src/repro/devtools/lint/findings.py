"""The unit of lint output: one :class:`Finding` per violated invariant.

A finding is a value object — frozen, ordered, and hashable — so the
runner can sort, deduplicate and diff findings against a baseline
without any identity bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: POSIX-style path of the offending file, relative to the
            lint invocation root when possible.
        line: 1-indexed line of the violation.
        col: 0-indexed column of the violation.
        rule_id: Identifier of the rule that fired (e.g. ``DET003``).
        message: Human-readable description of what is wrong and how to
            fix it.
        snippet: The stripped source line, used for location-independent
            baseline matching (line numbers shift; source lines rarely do).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    snippet: str = ""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Location-independent identity used for baseline matching."""
        return (self.rule_id, self.path, self.snippet)

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of every report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict[str, Any]:
        """Stable JSON form (see the reporter schema)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }
