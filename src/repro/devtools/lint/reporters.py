"""Report renderers: human text and machine JSON.

The JSON schema (version 2) is a contract tested by
``tests/devtools/test_lint_reporters.py``::

    {
      "version": 2,
      "tool": "repro-lint",
      "summary": {
        "files_checked": int,
        "findings": int,
        "baselined": int,
        "suppressed": int,
        "expired_baseline": int,
        "unused_suppressions": int,
        "parse_errors": int,
        "internal_errors": int,
        "failed": bool
      },
      "findings": [{rule, path, line, col, message, snippet}, ...],
      "baselined": [...same shape...],
      "unused_suppressions": [...same shape...],
      "expired_baseline": [{rule, path, snippet, count}, ...],
      "parse_errors": ["path: error", ...],
      "internal_errors": ["path: rule RULE crashed: ...", ...]
    }

Version history: v2 added ``internal_errors`` (crashed rules surface as
exit 2 with the offending path instead of a traceback).
"""

from __future__ import annotations

import json
from typing import Any

from repro.devtools.lint.runner import LintReport

JSON_SCHEMA_VERSION = 2


def render_text(report: LintReport, strict: bool = False) -> str:
    """One ``path:line:col RULE message`` line per finding, plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for finding in report.baselined:
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message} "
            "[baselined]"
        )
    for finding in report.unused_suppressions:
        marker = "" if strict else " [warning]"
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}{marker}"
        )
    for entry in report.expired_baseline:
        lines.append(
            f"baseline: {entry['count']}x {entry['rule']} in {entry['path']} "
            f"no longer found — run `repro lint --update-baseline` "
            f"({entry['snippet']!r})"
        )
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    for error in report.internal_errors:
        lines.append(f"internal error: {error}")
    verdict = "FAILED" if report.failed(strict) else "ok"
    lines.append(
        f"{verdict}: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed, "
        f"{len(report.expired_baseline)} expired baseline entr(ies), "
        f"{len(report.unused_suppressions)} unused suppression(s) "
        f"across {report.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport, strict: bool = False) -> str:
    """Stable machine-readable report (schema above)."""
    payload: dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "summary": {
            "files_checked": report.files_checked,
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed_count,
            "expired_baseline": len(report.expired_baseline),
            "unused_suppressions": len(report.unused_suppressions),
            "parse_errors": len(report.parse_errors),
            "internal_errors": len(report.internal_errors),
            "failed": report.failed(strict),
        },
        "findings": [finding.to_json() for finding in report.findings],
        "baselined": [finding.to_json() for finding in report.baselined],
        "unused_suppressions": [
            finding.to_json() for finding in report.unused_suppressions
        ],
        "expired_baseline": report.expired_baseline,
        "parse_errors": list(report.parse_errors),
        "internal_errors": list(report.internal_errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
