"""Lint-run configuration.

One frozen dataclass threaded from the CLI through the runner into every
rule, so rules never read global state and tests can exercise any
configuration without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Modules whose *job* is wall-clock measurement: the engine's throughput
#: counters, the event-loop profiler, and the fleet's progress/throughput
#: metrics all time real work in real seconds.  Everything else inside
#: ``src/repro`` must use ``Simulator.now`` (DET001).
DEFAULT_WALLCLOCK_ALLOWLIST: tuple[str, ...] = (
    "repro/sim/engine.py",
    "repro/sim/profile.py",
    "repro/experiments/fleet.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Settings for one lint run.

    Attributes:
        wallclock_allowlist: POSIX path suffixes exempt from DET001
            (modules that legitimately measure wall-clock time).
        baseline_path: Committed baseline of grandfathered findings;
            ``None`` means an empty baseline.
        strict: Also fail on hygiene problems — unused suppressions and
            expired baseline entries — not just live findings.
        select: Restrict the run to these rule ids; ``None`` runs all.
    """

    wallclock_allowlist: tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOWLIST
    baseline_path: Optional[Path] = None
    strict: bool = False
    select: Optional[frozenset[str]] = field(default=None)

    def rule_enabled(self, rule_id: str) -> bool:
        """True when ``rule_id`` participates in this run."""
        return self.select is None or rule_id in self.select

    def wallclock_exempt(self, relpath: str) -> bool:
        """True when ``relpath`` may read the wall clock (DET001)."""
        return any(relpath.endswith(suffix) for suffix in self.wallclock_allowlist)
