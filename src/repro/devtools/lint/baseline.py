"""Committed baseline of grandfathered findings.

A baseline lets the linter land with zero tolerance for *new* findings
while pre-existing ones are burned down: matched findings are reported
as "baselined" and do not fail the run; baseline entries that no longer
match anything are "expired" and fail a ``--strict`` run until the
baseline is regenerated (``repro lint --update-baseline``), so the
baseline can only ever shrink.

Matching is location-independent — ``(rule, path, stripped source
line)`` with a count — so unrelated edits that shift line numbers do not
invalidate entries.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Grandfathered findings keyed by ``(rule, path, snippet)``."""

    counts: Counter[tuple[str, str, str]] = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path | None) -> "Baseline":
        """Read a baseline file; a missing path means an empty baseline.

        Raises:
            ValueError: when the file exists but is not a valid baseline.
        """
        if path is None or not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ValueError(f"baseline {path} is not valid JSON: {error}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"baseline {path} has no 'entries' list")
        counts: Counter[tuple[str, str, str]] = Counter()
        for entry in payload["entries"]:
            key = (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry.get("snippet", "")),
            )
            counts[key] += int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Baseline covering exactly ``findings``."""
        return cls(Counter(finding.baseline_key for finding in findings))

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        entries = [
            {"rule": rule, "path": file_path, "snippet": snippet, "count": count}
            for (rule, file_path, snippet), count in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict[str, object]]]:
        """Split ``findings`` into (new, baselined) and list expired entries.

        Consumes baseline counts finding-by-finding; whatever budget is
        left afterwards is expired (the grandfathered finding was fixed —
        the entry must now be dropped from the file).
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        expired = [
            {"rule": rule, "path": file_path, "snippet": snippet, "count": count}
            for (rule, file_path, snippet), count in sorted(remaining.items())
            if count > 0
        ]
        return new, baselined, expired
