"""Lint orchestration: walk files, run rules, apply suppressions and baseline.

The runner is itself held to the determinism bar it enforces: files are
visited in sorted order, rules run in id order, and findings are sorted
before reporting — two runs over the same tree produce byte-identical
reports.

Runs are two-phase since the v2 cross-module pass: every file parses
first, per-module rules run file by file, then :class:`ProjectRule`
instances run once over the assembled
:class:`~repro.devtools.lint.graph.project.ProjectContext` and their
findings are bucketed back to the owning module so inline suppressions
and the baseline apply uniformly.

Analyzer *internal* errors — an unparseable file, a rule that raises —
never escape as tracebacks: they are collected on
``LintReport.parse_errors`` / ``LintReport.internal_errors`` with the
offending path, and the CLI turns them into exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.graph.project import ProjectContext
from repro.devtools.lint.registry import ProjectRule, Rule, all_rules
from repro.devtools.lint.suppressions import SuppressionIndex


@dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: Live findings (not suppressed, not baselined) —
            any of these fails the run.
        baselined: Findings matched by the baseline (reported, non-fatal).
        suppressed_count: Findings silenced by justified inline noqa.
        expired_baseline: Baseline entries matching nothing any more
            (fatal under ``--strict`` until the baseline is regenerated).
        unused_suppressions: SUP002 findings (fatal under ``--strict``).
        files_checked: Number of files linted.
        parse_errors: ``path: error`` strings for unparseable files
            (analyzer internal error: exit 2).
        internal_errors: Crashed rules, as ``path: rule RULE crashed:
            ...`` strings (analyzer internal error: exit 2).
        project: The whole-program context of this run (``--graph-out``
            renders it); ``None`` when nothing parsed.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    expired_baseline: list[dict[str, object]] = field(default_factory=list)
    unused_suppressions: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    internal_errors: list[str] = field(default_factory=list)
    project: Optional[ProjectContext] = field(default=None, repr=False)

    def failed(self, strict: bool) -> bool:
        """True when this run should exit non-zero."""
        if self.findings or self.parse_errors or self.internal_errors:
            return True
        if strict and (self.expired_baseline or self.unused_suppressions):
            return True
        return False


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, without duplicates.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            seen.setdefault(path, None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    yield from sorted(seen)


def _relpath(path: Path) -> str:
    """Path as reported in findings: cwd-relative POSIX when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _split_rules() -> tuple[list[Rule], list[ProjectRule]]:
    module_rules: list[Rule] = []
    project_rules: list[ProjectRule] = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            project_rules.append(rule)
        else:
            module_rules.append(rule)
    return module_rules, project_rules


def lint_module(module: ModuleContext) -> tuple[list[Finding], SuppressionIndex]:
    """Run every enabled per-module rule over one parsed module.

    Returns the raw (pre-suppression) findings plus the module's
    suppression index; :func:`lint_paths` applies suppressions and the
    baseline, but tests can also call this directly.  Project rules do
    not run here — use :func:`lint_source` or :func:`lint_paths` for
    the cross-module families.
    """
    findings: list[Finding] = []
    module_rules, _ = _split_rules()
    for rule in module_rules:
        if module.config.rule_enabled(rule.rule_id):
            findings.extend(rule.check(module))
    suppressions = SuppressionIndex.from_source(module.source, module.relpath)
    return findings, suppressions


def lint_source(
    source: str,
    relpath: str = "<string>",
    config: Optional[LintConfig] = None,
) -> list[Finding]:
    """Lint a source string; suppressions applied, no baseline.

    The test-fixture entry point: per-module *and* project rules run
    (the project is just this one module), SUP001 hygiene findings are
    included, SUP002 (unused) are not — a fixture snippet legitimately
    exercises suppressions that its own rules never fire.  Rule crashes
    propagate so fixture tests surface analyzer bugs loudly.
    """
    module = ModuleContext.from_source(source, relpath, config)
    findings, suppressions = lint_module(module)
    _, project_rules = _split_rules()
    project = ProjectContext([module])
    for rule in project_rules:
        if module.config.rule_enabled(rule.rule_id):
            findings.extend(rule.check_project(project))
    kept, _ = suppressions.filter(sorted(findings))
    kept.extend(suppressions.malformed)
    return sorted(kept)


def lint_paths(
    paths: Iterable[Path], config: Optional[LintConfig] = None
) -> LintReport:
    """Lint files/directories and assemble the full :class:`LintReport`."""
    config = config or LintConfig()
    report = LintReport()
    modules: list[ModuleContext] = []
    for path in iter_python_files(paths):
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(ModuleContext.from_source(source, relpath, config))
        except (SyntaxError, UnicodeDecodeError) as error:
            report.parse_errors.append(f"{relpath}: {error}")
            continue
        report.files_checked += 1

    module_rules, project_rules = _split_rules()
    raw_by_path: dict[str, list[Finding]] = {
        module.relpath: [] for module in modules
    }

    # Phase 1: per-module rules.
    for module in modules:
        for rule in module_rules:
            if not config.rule_enabled(rule.rule_id):
                continue
            try:
                raw_by_path[module.relpath].extend(rule.check(module))
            # repro: noqa[API001] analyzer boundary: contain any rule crash as an internal error (exit 2)
            except Exception as error:
                report.internal_errors.append(
                    f"{module.relpath}: rule {rule.rule_id} crashed: "
                    f"{type(error).__name__}: {error}"
                )

    # Phase 2: whole-program rules over every module that parsed.
    if modules:
        project = ProjectContext(modules)
        report.project = project
        for rule in project_rules:
            if not config.rule_enabled(rule.rule_id):
                continue
            try:
                for finding in rule.check_project(project):
                    raw_by_path.setdefault(finding.path, []).append(finding)
            # repro: noqa[API001] analyzer boundary: contain any rule crash as an internal error (exit 2)
            except Exception as error:
                report.internal_errors.append(
                    f"rule {rule.rule_id} crashed: "
                    f"{type(error).__name__}: {error}"
                )

    # Phase 3: suppressions + baseline, per module.
    survivors: list[Finding] = []
    for module in modules:
        suppressions = SuppressionIndex.from_source(
            module.source, module.relpath
        )
        kept, suppressed = suppressions.filter(
            sorted(raw_by_path.get(module.relpath, []))
        )
        report.suppressed_count += suppressed
        survivors.extend(kept)
        survivors.extend(suppressions.malformed)
        if config.select is None:
            # Only meaningful when every rule ran: under --select a
            # suppression for an unselected rule is not "unused".
            report.unused_suppressions.extend(
                suppressions.unused(module.relpath)
            )
    baseline = Baseline.load(config.baseline_path)
    new, baselined, expired = baseline.partition(sorted(survivors))
    report.findings = new
    report.baselined = baselined
    report.expired_baseline = expired
    report.unused_suppressions.sort()
    report.internal_errors.sort()
    return report
