"""RNG stream-provenance rules (STR001–STR003), cross-module.

The determinism contract gives every stochastic subsystem its own named
child stream (``mining.*``, ``faults.*``, ``scenario.*``, ``node.*``,
…) so draw-order changes in one subsystem never perturb another.  That
contract is only as strong as the provenance of each ``Generator``
flowing through the code:

* a parameter bound to streams of *different* families at different
  call sites aliases two subsystems onto one draw sequence (STR001);
* a draw on the :class:`~repro.sim.rng.RngRegistry` itself — the
  parent — would perturb every child derived after it (STR002; the
  registry intentionally has no draw methods, so any non-``stream``/
  ``fork`` call on one is a latent runtime error too);
* a generator stored into a list/dict/tuple loses its name — code
  pulling it back out can no longer be audited for family discipline
  (STR003).

All three rules run on the whole-program dataflow pass: families are
propagated through parameter-to-parameter forwarding to a fixpoint, and
``<dynamic>`` (non-literal namespaces) never convicts.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.graph.dataflow import DYNAMIC_FAMILY
from repro.devtools.lint.graph.project import ProjectContext
from repro.devtools.lint.registry import ProjectRule, register


@register
class CrossFamilyAliasRule(ProjectRule):
    """STR001 — one rng parameter, one stream family."""

    rule_id = "STR001"
    title = "rng parameter bound to multiple stream families"
    invariant = (
        "every Generator parameter is fed from a single named stream "
        "family across all call sites, so no subsystem's draws can "
        "perturb another's"
    )
    suggestion = (
        "split the helper per family, or derive a dedicated child "
        "stream (`registry.stream(\"<family>.<name>\")`) at each call "
        "site; suppress only when instances provably never share a "
        "generator"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        summaries = project.summaries
        for qualname in sorted(summaries.summaries):
            summary = summaries.summaries[qualname]
            info = project.index.functions.get(qualname)
            if info is None:
                continue
            for param in sorted(summary.param_families):
                families = sorted(
                    summary.param_families[param] - {DYNAMIC_FAMILY}
                )
                if len(families) > 1:
                    yield project.finding(
                        self.rule_id,
                        info.relpath,
                        info.lineno,
                        0,
                        f"parameter `{param}` of {qualname} is bound to "
                        f"streams from {len(families)} families at call "
                        f"sites: {', '.join(families)} — cross-family "
                        "aliasing breaks per-subsystem draw isolation",
                    )


@register
class ParentRegistryDrawRule(ProjectRule):
    """STR002 — never draw from the registry (parent) itself."""

    rule_id = "STR002"
    title = "draw on the RNG registry instead of a named child stream"
    invariant = (
        "the root registry only derives children; all draws happen on "
        "named child streams, so spawning a new child never shifts "
        "existing sequences"
    )
    suggestion = (
        "replace `registry.<draw>()` with "
        "`registry.stream(\"<family>.<name>\").<draw>()`"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.facts):
            facts = graph.facts[qualname]
            info = facts.info
            for site in facts.registry_draws:
                yield project.finding(
                    self.rule_id,
                    info.relpath,
                    site.lineno,
                    site.col,
                    f"`.{site.detail}(...)` on an RngRegistry receiver in "
                    f"{qualname} — the registry is a stream *factory*; "
                    "draw from a named child stream",
                )


@register
class ContainerProvenanceRule(ProjectRule):
    """STR003 — generators do not travel through anonymous containers."""

    rule_id = "STR003"
    title = "RNG generator stored in a container"
    invariant = (
        "a Generator is always reachable under its stream name (an "
        "attribute or parameter), never fished out of a list/dict/tuple "
        "where its family can no longer be audited"
    )
    suggestion = (
        "hold the generator in a named attribute, or store the stream "
        "*namespace* and re-request it via `registry.stream(name)` "
        "(streams are memoised, so this is free)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.facts):
            facts = graph.facts[qualname]
            info = facts.info
            for site in facts.container_rng:
                yield project.finding(
                    self.rule_id,
                    info.relpath,
                    site.lineno,
                    site.col,
                    f"RNG generator stored into a container in {qualname} "
                    "— provenance (stream family) is erased; keep it in a "
                    "named attribute or store the namespace string",
                )
