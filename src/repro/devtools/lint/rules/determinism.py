"""Determinism rules (DET001–DET004).

Byte-identical campaigns from a seed are the repo's core guarantee
(DESIGN.md §5c, the fleet pins workers to sequential output).  Each rule
here bans one way real nondeterminism has crept — or could creep — into
simulation code: the wall clock, ambient RNG state, and unordered
iteration feeding order-sensitive computation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: Wall-clock callables, as fully dotted paths.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are *not* the legacy global-state API.
_NUMPY_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Builtins that materialise an iteration order from their argument.
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "iter", "enumerate"})


def _import_aliases(tree: ast.Module, *roots: str) -> dict[str, str]:
    """Map local names to the dotted module paths they denote.

    Only names rooted at one of ``roots`` are tracked, e.g. with roots
    ``("time", "datetime")``: ``import time as t`` → ``{"t": "time"}``,
    ``from datetime import datetime`` →
    ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in roots:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".", 1)[0]
            if root in roots:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _dotted_path(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    """Resolve ``node`` to a dotted path through the alias map, if possible."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    head = aliases.get(cursor.id)
    if head is None:
        return None
    parts.append(head)
    return ".".join(reversed(parts))


@register
class WallClockRule(Rule):
    """DET001 — simulation code must read ``Simulator.now``, never the host clock."""

    rule_id = "DET001"
    title = "wall-clock read in simulation code"
    invariant = (
        "simulated behaviour depends only on the seed, never on how fast "
        "the host happens to execute"
    )
    suggestion = (
        "use Simulator.now / simulated timestamps; wall-clock throughput "
        "instrumentation belongs in the allowlisted profiling modules"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.config.wallclock_exempt(module.relpath):
            return
        aliases = _import_aliases(module.tree, "time", "datetime")
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted_path(node.func, aliases)
            if path in _WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {path}() in simulation code — "
                    "use Simulator.now (or add the module to the "
                    "wall-clock allowlist if it measures real throughput)",
                )


@register
class AmbientRngRule(Rule):
    """DET002 — all randomness flows from the seeded, namespaced registry."""

    rule_id = "DET002"
    title = "ambient RNG instead of the injected generator"
    invariant = (
        "every random draw is attributable to the root seed via a named "
        "RngRegistry stream"
    )
    suggestion = (
        "take an np.random.Generator parameter, or draw from "
        "simulator.rng.stream('<namespace>')"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "random":
                        yield self.finding(
                            module,
                            node,
                            "stdlib `random` uses hidden global state — "
                            "draw from the injected np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".", 1)[0] == "random":
                    yield self.finding(
                        module,
                        node,
                        "stdlib `random` uses hidden global state — "
                        "draw from the injected np.random.Generator",
                    )
        aliases = _import_aliases(module.tree, "numpy")
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted_path(node.func, aliases)
            if path is None or not path.startswith("numpy.random"):
                continue
            tail = path.rsplit(".", 1)[-1]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "default_rng() without a seed is entropy-seeded — "
                        "pass a seed derived from the root seed "
                        "(see repro.sim.rng.derive_seed)",
                    )
            elif tail not in _NUMPY_RANDOM_OK:
                yield self.finding(
                    module,
                    node,
                    f"legacy numpy.random.{tail}() mutates global RNG "
                    "state — use a seeded np.random.Generator",
                )


@register
class UnorderedIterationRule(Rule):
    """DET003 — never iterate a set where order can reach behaviour."""

    rule_id = "DET003"
    title = "iteration over an unordered set"
    invariant = (
        "loop order is a function of the program, not of hash seeding or "
        "interning accidents"
    )
    suggestion = (
        "wrap the iterable in sorted(...), or keep an insertion-ordered "
        "dict[key, None] instead of a set"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        sets = module.set_types
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if sets.is_set_expr(node.iter):
                    yield self.finding(
                        module,
                        node.iter,
                        "for-loop over a set iterates in hash order — "
                        "sort it or use an insertion-ordered structure",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if sets.is_set_expr(generator.iter):
                        yield self.finding(
                            module,
                            generator.iter,
                            "comprehension over a set materialises hash "
                            "order — sort the iterable",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_MATERIALISERS
                    and node.args
                    and sets.is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{func.id}() over a set freezes hash order into a "
                        "sequence — use sorted(...)",
                    )


@register
class UnorderedFloatSumRule(Rule):
    """DET004 — float accumulation over a set depends on visit order."""

    rule_id = "DET004"
    title = "sum() over an unordered collection"
    invariant = (
        "floating-point reductions are computed in one canonical order "
        "(fp addition is not associative)"
    )
    suggestion = "sum(sorted(values)) or math.fsum(values)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        sets = module.set_types
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "sum"
                and node.args
                and sets.is_set_expr(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    "sum() over a set accumulates in hash order; float "
                    "addition is order-sensitive — sum(sorted(...)) or "
                    "math.fsum(...)",
                )
