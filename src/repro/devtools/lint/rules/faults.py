"""Fault-injection rules (FLT001).

The fault layer's determinism contract (DESIGN.md §5f) hinges on stream
discipline: every fault decision draws from a dedicated ``faults.*``
child stream.  Drawing from the engine's root registry (``self.rng`` /
``simulator.rng``), from a generically named stream, or from
module-level RNG would entangle fault draws with placement, mining,
workload or latency draws — and a changed fault plan would then perturb
the *fault-free* parts of the run, breaking the all-zeros pin and every
cross-plan comparison.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: Path fragment naming the fault layer this rule covers.
_FAULT_LAYER = "repro/faults/"

#: Required namespace prefix for fault-layer child streams.
_STREAM_PREFIX = "faults."

#: Module paths whose RNG state is ambient (process-global, seed-free).
_AMBIENT_RNG_MODULES = ("random", "numpy.random")


def _dotted_path(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> imported dotted module path."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".", 1)[0]] = (
                    alias.name if alias.asname else alias.name.split(".", 1)[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


@register
class FaultStreamRule(Rule):
    """FLT001 — fault injectors draw only from dedicated child streams."""

    rule_id = "FLT001"
    title = "fault code drawing outside its dedicated RNG stream"
    invariant = (
        "every random draw in repro/faults comes from a faults.* child "
        "stream, so a fault plan can never perturb non-fault draws"
    )
    suggestion = (
        "obtain a generator via simulator.rng.stream('faults.<name>'), "
        "bind it to a descriptively named attribute (e.g. _churn_rng), "
        "and draw only from that"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _FAULT_LAYER not in module.relpath:
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "stream":
                yield from self._check_stream_namespace(module, node)
                continue
            yield from self._check_receiver(module, node, func, aliases)

    def _check_stream_namespace(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        """``.stream(...)`` calls must name a literal ``faults.*`` space."""
        arg = node.args[0] if node.args else None
        if (
            isinstance(arg, ast.Constant)
            and isinstance(arg.value, str)
            and arg.value.startswith(_STREAM_PREFIX)
        ):
            return
        namespace = (
            repr(arg.value)
            if isinstance(arg, ast.Constant)
            else "a computed namespace"
        )
        yield self.finding(
            module,
            node,
            f"fault code requests stream {namespace} — fault-layer child "
            f"streams must be literal '{_STREAM_PREFIX}*' namespaces",
        )

    def _check_receiver(
        self,
        module: ModuleContext,
        node: ast.Call,
        func: ast.Attribute,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        """Flag draws from the engine registry or ambient RNG modules."""
        receiver = func.value
        receiver_name: Optional[str] = None
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        if receiver_name in ("rng", "_rng"):
            yield self.finding(
                module,
                node,
                f"draw from generically named RNG '{receiver_name}' — the "
                "engine registry and shared streams are off-limits in fault "
                "code; use a dedicated faults.* child stream",
            )
            return
        dotted = _dotted_path(receiver)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        resolved = aliases.get(head)
        if resolved is None:
            return
        full = f"{resolved}.{rest}" if rest else resolved
        if full in _AMBIENT_RNG_MODULES or any(
            full.startswith(f"{mod}.") for mod in _AMBIENT_RNG_MODULES
        ):
            yield self.finding(
                module,
                node,
                f"module-level RNG call via '{dotted}' — ambient generators "
                "are process-global and seed-free; use a faults.* child "
                "stream",
            )
