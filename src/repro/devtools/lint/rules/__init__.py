"""Rule modules; importing this package populates the registry."""

from __future__ import annotations

from repro.devtools.lint.rules import (
    api,
    determinism,
    faults,
    hookpurity,
    hotpath,
    observability,
    simsafety,
    streams,
)

__all__ = [
    "api",
    "determinism",
    "faults",
    "hookpurity",
    "hotpath",
    "observability",
    "simsafety",
    "streams",
]
