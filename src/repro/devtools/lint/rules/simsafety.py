"""Sim-safety rules (SIM001).

The event queue breaks timestamp ties by insertion sequence, so the
*order in which events are scheduled* is part of simulated behaviour.
Feeding that order from an unordered source is the one nondeterminism
the engine itself cannot detect — it sees a perfectly valid schedule
either way.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: Methods whose call order becomes simulated behaviour: message
#: delivery scheduling and direct event scheduling.
_ORDER_SENSITIVE_METHODS = frozenset({"send", "schedule", "call_later"})


@register
class UnorderedSchedulingRule(Rule):
    """SIM001 — sends/schedules must not be ordered by set iteration."""

    rule_id = "SIM001"
    title = "event scheduling ordered by a set"
    invariant = (
        "the sequence of Network.send / Simulator.schedule calls — and "
        "hence event-queue tie-breaking — is reproducible from the seed"
    )
    suggestion = (
        "iterate a sorted or insertion-ordered collection when the loop "
        "body sends messages or schedules events"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        sets = module.set_types
        for node in ast.walk(module.tree):
            bodies: list[ast.AST]
            if isinstance(node, ast.For) and sets.is_set_expr(node.iter):
                bodies = list(node.body)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ) and any(
                sets.is_set_expr(generator.iter)
                for generator in node.generators
            ):
                bodies = [node.elt]
            else:
                continue
            for body in bodies:
                for call in ast.walk(body):
                    if not isinstance(call, ast.Call):
                        continue
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _ORDER_SENSITIVE_METHODS
                    ):
                        yield self.finding(
                            module,
                            call,
                            f".{func.attr}() inside a loop over an "
                            "unordered set: event order would vary run to "
                            "run — sort the iterable",
                        )
