"""Trace-hook purity rules (OBS101/OBS102), cross-module.

The PR 4 determinism contract: observability is *free* to turn on —
``TraceRecorder`` hooks and metrics snapshots may observe state but must
never draw RNG or schedule events, so a traced run is draw-for-draw and
event-for-event identical to an untraced one (the seed-55 pin holds
with tracing on and off).  Until now that contract was enforced by
review and by the seed pin after the fact; these rules enforce it
statically, over the *transitive* call graph: a hook that calls a
helper that calls something that draws is flagged even though the hook
itself looks pure.

Hook roots are found structurally, not by path, so fixture copies and
subclasses are covered: every method of a class named (or deriving
from) ``TraceRecorder``, and the ``_sample`` hook of
``MetricsSnapshotter`` (``start``/``stop`` legitimately schedule — they
run outside the hook path).
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.graph.project import ProjectContext
from repro.devtools.lint.graph.symbols import FunctionInfo
from repro.devtools.lint.registry import ProjectRule, register

#: Class names whose every method is a trace hook.
_HOOK_CLASSES = frozenset({"TraceRecorder"})

#: Class name -> methods that are hooks (others may schedule).
_HOOK_METHODS = {"MetricsSnapshotter": frozenset({"_sample"})}


def _hook_roots(project: ProjectContext) -> list[FunctionInfo]:
    roots: list[FunctionInfo] = []
    index = project.index
    for qualname in sorted(index.classes):
        info = index.classes[qualname]
        mro_names = {klass.name for klass in index.class_mro(info)}
        if mro_names & _HOOK_CLASSES:
            roots.extend(
                info.methods[name] for name in sorted(info.methods)
            )
            continue
        for class_name, methods in _HOOK_METHODS.items():
            if class_name in mro_names:
                roots.extend(
                    info.methods[name]
                    for name in sorted(info.methods)
                    if name in methods
                )
    return roots


def _trail_text(trail: tuple[str, ...]) -> str:
    if len(trail) <= 1:
        return "directly"
    return "via " + " -> ".join(trail[1:])


@register
class HookDrawsRngRule(ProjectRule):
    """OBS101 — no RNG reachable from a trace hook."""

    rule_id = "OBS101"
    title = "trace/metrics hook may draw RNG"
    invariant = (
        "tracing is free to enable: no path out of a TraceRecorder hook "
        "or metrics snapshot draws from any RNG stream, so traced and "
        "untraced runs are draw-for-draw identical"
    )
    suggestion = (
        "move the draw out of the hook path — hooks observe state that "
        "the simulation already computed; they never generate it"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        summaries = project.summaries
        for root in _hook_roots(project):
            summary = summaries.summary_for(root.qualname)
            if summary is not None and summary.may_draw_rng:
                trail = summaries.draw_trail(root.qualname)
                yield project.finding(
                    self.rule_id,
                    root.relpath,
                    root.lineno,
                    0,
                    f"hook {root.qualname} may draw RNG "
                    f"({_trail_text(trail)}) — trace hooks must be pure "
                    "so traced runs stay draw-for-draw identical",
                )


@register
class HookSchedulesRule(ProjectRule):
    """OBS102 — no event scheduling reachable from a trace hook."""

    rule_id = "OBS102"
    title = "trace/metrics hook may schedule events"
    invariant = (
        "tracing is free to enable: no path out of a TraceRecorder hook "
        "or metrics snapshot pushes events, so traced and untraced runs "
        "execute the same event sequence"
    )
    suggestion = (
        "hooks record, they never cause — move the schedule out of the "
        "hook path (periodic sampling belongs to the snapshotter's "
        "start/stop lifecycle, not the hook body)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        summaries = project.summaries
        for root in _hook_roots(project):
            summary = summaries.summary_for(root.qualname)
            if summary is not None and summary.may_schedule:
                trail = summaries.schedule_trail(root.qualname)
                yield project.finding(
                    self.rule_id,
                    root.relpath,
                    root.lineno,
                    0,
                    f"hook {root.qualname} may schedule events "
                    f"({_trail_text(trail)}) — trace hooks must not "
                    "perturb the event sequence",
                )
