"""Observability rules (OBS001).

The simulation hot layers (``repro/sim``, ``repro/p2p``, ``repro/node``,
``repro/chain``) report through the ground-truth trace and metrics layer
(:mod:`repro.obs`): a :class:`~repro.obs.recorder.TraceRecorder` call is
typed, timestamped with simulated time, and exportable — an ad-hoc
``print`` or ``logging`` call is none of those, interleaves
nondeterministically under the multiprocess fleet, and bypasses the
JSONL trace entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: Path fragments naming the simulation hot layers the rule covers.
_HOT_LAYERS = (
    "repro/sim/",
    "repro/p2p/",
    "repro/node/",
    "repro/chain/",
)


def _in_hot_layer(relpath: str) -> bool:
    return any(layer in relpath for layer in _HOT_LAYERS)


@register
class AdHocOutputRule(Rule):
    """OBS001 — hot-layer reporting goes through ``repro.obs``."""

    rule_id = "OBS001"
    title = "ad-hoc print/logging in simulation code"
    invariant = (
        "every observation out of the sim/p2p/node/chain layers is a "
        "typed, sim-timestamped trace record or metric, never loose text"
    )
    suggestion = (
        "emit through simulator.trace (TraceRecorder) or a registry "
        "metric; human-facing output belongs in the CLI/experiment layers"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_hot_layer(module.relpath):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "print":
                    yield self.finding(
                        module,
                        node,
                        "print() in a simulation hot layer — emit a trace "
                        "record or metric via simulator.trace instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "logging":
                        yield self.finding(
                            module,
                            node,
                            "`logging` in a simulation hot layer carries no "
                            "simulated timestamp and interleaves across "
                            "fleet workers — use simulator.trace",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".", 1)[0] == "logging":
                    yield self.finding(
                        module,
                        node,
                        "`logging` in a simulation hot layer carries no "
                        "simulated timestamp and interleaves across "
                        "fleet workers — use simulator.trace",
                    )
