"""API-hygiene rules (API001).

Broad exception handlers and mutable default arguments are the two
failure-hiding idioms that have actually bitten this repo: a broad
``except`` around an experiment swallowed programming errors until the
result protocol (PR 2) made them typed, and mutable defaults alias state
across calls in ways that masquerade as nondeterminism.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _is_broad(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises (converts) rather than swallows."""
    return any(
        isinstance(stmt, ast.Raise)
        for body_stmt in handler.body
        for stmt in ast.walk(body_stmt)
    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class ApiHygieneRule(Rule):
    """API001 — no swallowed-everything handlers, no mutable defaults."""

    rule_id = "API001"
    title = "broad except / mutable default argument"
    invariant = (
        "programming errors propagate (only ReproError subclasses are "
        "handled), and call signatures never share mutable state"
    )
    suggestion = (
        "catch the specific ReproError subclass; default mutable "
        "parameters to None and allocate inside the function"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if _is_broad(node.type) and not _reraises(node):
                    what = (
                        "bare except"
                        if node.type is None
                        else "except over Exception/BaseException"
                    )
                    yield self.finding(
                        module,
                        node,
                        f"{what} swallows programming errors — catch the "
                        "specific ReproError subclass (or re-raise)",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = [
                    *node.args.defaults,
                    *(d for d in node.args.kw_defaults if d is not None),
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            module,
                            default,
                            f"mutable default argument in {node.name}() is "
                            "shared across calls — default to None and "
                            "allocate per call",
                        )
