"""Hot-path hygiene rules (PERF001–PERF004), cross-module.

The event loop dispatches tens of millions of events per run (54.3M in
the 15k-peer mainnet hour); a single stray allocation, closure, or
f-string on the dispatch path costs minutes of wall clock.  These rules
hold the *transitive* callees of the hot entry points to the standards
the hot code itself was written to (PR 1/PR 7 profiling):

* PERF001 — no per-call closure construction or container allocation
  inside loops;
* PERF002 — no string formatting (f-strings, ``str.format``,
  ``print``) — reporting belongs to trace records, and error text to
  the ``raise`` path (which is exempt);
* PERF003 — no scalar ``Network.send`` inside a loop where the wave
  API (``send_many``/``send_each``) prices the whole fan-out in one
  vectorized draw;
* PERF004 — no direct ``heapq`` imports outside ``repro.sim``: event
  ordering is the queue backends' contract (heap vs calendar, selected
  at run time), and a hand-rolled heap elsewhere silently bypasses both
  the backend selector and the ``(time, priority, sequence)``
  tie-ordering argument.

The registry of hot entry points lives in :data:`HOT_ENTRIES`; mark
additional entry points with a ``# repro: hotpath`` comment on (or
directly above) the ``def`` line.  Traversal follows *unguarded* edges
only: calls behind ``...enabled`` trace guards or inside
``raise``/``assert`` error paths are cold by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.context import ModuleContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.graph.callgraph import Site
from repro.devtools.lint.graph.project import ProjectContext
from repro.devtools.lint.registry import ProjectRule, Rule, register

#: Qualname suffixes of the hot entry points.  Extend in source with a
#: ``# repro: hotpath`` marker rather than here — the marker keeps the
#: declaration next to the code it describes.
HOT_ENTRIES: tuple[str, ...] = (
    "Simulator.run",
    "EventQueue.push_batch",
    "Network.send",
    "Network.send_many",
    "Network.send_each",
    "DeliveryEvent.callback",
    "BatchDeliveryEvent.fire",
    "EachDeliveryEvent.fire",
)


def _hot_paths(project: ProjectContext) -> dict[str, tuple[str, ...]]:
    """Qualname -> path-from-entry for everything hot-reachable."""
    roots: list[str] = []
    for suffix in HOT_ENTRIES:
        roots.extend(info.qualname for info in project.functions_matching(suffix))
    for qualname in sorted(project.index.functions):
        if project.index.functions[qualname].hot_marked:
            roots.append(qualname)
    return project.summaries.reachable(sorted(set(roots)), include_guarded=False)


def _route(path: tuple[str, ...]) -> str:
    if len(path) == 1:
        return f"hot entry point {path[0]}"
    return f"hot path {' -> '.join(path)}"


class _HotSiteRule(ProjectRule):
    """Shared traversal: subclasses pick the sites and the message."""

    def sites(self, project: ProjectContext, qualname: str) -> list[Site]:
        raise NotImplementedError

    message: str = ""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        hot = _hot_paths(project)
        for qualname in sorted(hot):
            facts = project.graph.facts.get(qualname)
            if facts is None:
                continue
            for site in self.sites(project, qualname):
                if site.guarded:
                    continue
                detail = f" ({site.detail})" if site.detail else ""
                yield project.finding(
                    self.rule_id,
                    facts.info.relpath,
                    site.lineno,
                    site.col,
                    f"{self.message}{detail} on {_route(hot[qualname])}",
                )


@register
class HotAllocationRule(_HotSiteRule):
    """PERF001 — hot callees allocate nothing per call."""

    rule_id = "PERF001"
    title = "allocation/closure on a hot dispatch path"
    invariant = (
        "transitive callees of the hot entry points build no closures "
        "and no per-iteration containers — the event loop's cost is "
        "dispatch, not garbage"
    )
    suggestion = (
        "hoist the closure/container out of the call (pooled event "
        "records, preallocated buffers), or mark the containing "
        "function cold by moving it behind a guard"
    )
    message = "per-call allocation"

    def sites(self, project: ProjectContext, qualname: str) -> list[Site]:
        facts = project.graph.facts[qualname]
        return [*facts.closures, *facts.allocs_in_loop]


@register
class HotFormattingRule(_HotSiteRule):
    """PERF002 — no string building on hot paths."""

    rule_id = "PERF002"
    title = "string formatting on a hot dispatch path"
    invariant = (
        "hot code never formats text — observations are typed trace "
        "records, error text lives on the raise path"
    )
    suggestion = (
        "emit a trace record / metric instead, or move the formatting "
        "into the raise statement (exempt as an error path)"
    )
    message = "string formatting"

    def sites(self, project: ProjectContext, qualname: str) -> list[Site]:
        return list(project.graph.facts[qualname].fstrings)


@register
class HotScalarSendRule(_HotSiteRule):
    """PERF003 — use the wave API for fan-out."""

    rule_id = "PERF003"
    title = "scalar send inside a loop on a hot path"
    invariant = (
        "gossip fan-out is priced as one vectorized wave "
        "(`send_many`/`send_each`), never one latency draw per peer"
    )
    suggestion = (
        "collect the recipients and issue one `network.send_many(...)` "
        "/ `send_each(...)` call for the wave"
    )
    message = "scalar `send` in a loop — use the send_many/send_each wave API"

    def sites(self, project: ProjectContext, qualname: str) -> list[Site]:
        return list(project.graph.facts[qualname].scalar_sends_in_loop)


#: The one layer allowed to touch ``heapq`` directly: the queue backends
#: themselves (and the engine loop that inlines them).
_QUEUE_LAYER = "repro/sim/"


@register
class DirectHeapqImportRule(Rule):
    """PERF004 — priority-queue access goes through the queue backends."""

    rule_id = "PERF004"
    title = "direct heapq import outside repro.sim"
    invariant = (
        "event ordering lives in the repro.sim queue backends "
        "(EventQueue/CalendarQueue behind the backend selector); no "
        "other layer hand-rolls a heap, so the (time, priority, "
        "sequence) tie-ordering contract has exactly one home"
    )
    suggestion = (
        "schedule through Simulator/EventQueue (or CalendarQueue) "
        "instead; for non-event priority work justify the import with "
        "`# repro: noqa[PERF004] <why>`"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _QUEUE_LAYER in module.relpath:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or alias.name.startswith("heapq."):
                        yield self.finding(
                            module,
                            node,
                            "direct `import heapq` outside repro.sim — "
                            "event ordering belongs to the queue backends",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "heapq":
                    yield self.finding(
                        module,
                        node,
                        "direct `from heapq import ...` outside repro.sim — "
                        "event ordering belongs to the queue backends",
                    )
