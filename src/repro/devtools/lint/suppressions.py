"""Inline suppression comments: ``# repro: noqa[RULE] reason``.

A suppression silences the named rules on its own line, or — when it is
the only thing on its line — on the next line (for statements too long
to share a line with a justification).  The justification is mandatory:
a reason-less suppression is itself reported (SUP001), and a suppression
that no longer matches anything is reported in strict mode (SUP002) so
stale exemptions cannot linger.

Comments are found with :mod:`tokenize`, not a regex over raw lines, so
string literals that merely *contain* the marker are never mistaken for
suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.devtools.lint.findings import Finding

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z0-9_,\s]+)\]\s*:?\s*(?P<reason>.*)"
)


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    col: int
    rules: tuple[str, ...]
    reason: str
    standalone: bool  #: comment is the whole line → also covers line+1
    used: bool = field(default=False)

    def covers(self, line: int, rule_id: str) -> bool:
        """True when this suppression silences ``rule_id`` at ``line``."""
        if rule_id not in self.rules:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


@dataclass
class SuppressionIndex:
    """All suppressions of one module, plus their hygiene findings."""

    suppressions: list[Suppression]
    #: SUP001 findings (missing justification), emitted unconditionally.
    malformed: list[Finding]

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "SuppressionIndex":
        """Tokenize ``source`` and collect every suppression comment."""
        suppressions: list[Suppression] = []
        malformed: list[Finding] = []
        lines = source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls([], [])
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            line, col = token.start
            rules = tuple(
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            )
            reason = match.group("reason").strip()
            prefix = lines[line - 1][:col] if line <= len(lines) else ""
            suppression = Suppression(
                line=line,
                col=col,
                rules=rules,
                reason=reason,
                standalone=not prefix.strip(),
            )
            suppressions.append(suppression)
            if not reason or not rules:
                snippet = lines[line - 1].strip() if line <= len(lines) else ""
                malformed.append(
                    Finding(
                        path=relpath,
                        line=line,
                        col=col,
                        rule_id="SUP001",
                        message=(
                            "suppression without justification — write "
                            "`# repro: noqa[RULE] <why this is safe>`"
                        ),
                        snippet=snippet,
                    )
                )
        return cls(suppressions, malformed)

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Drop suppressed findings; return (kept, suppressed_count)."""
        kept: list[Finding] = []
        suppressed = 0
        for finding in findings:
            hit = next(
                (
                    s
                    for s in self.suppressions
                    if s.reason and s.covers(finding.line, finding.rule_id)
                ),
                None,
            )
            if hit is None:
                kept.append(finding)
            else:
                hit.used = True
                suppressed += 1
        return kept, suppressed

    def unused(self, relpath: str) -> list[Finding]:
        """SUP002 findings for suppressions that matched nothing."""
        return [
            Finding(
                path=relpath,
                line=s.line,
                col=s.col,
                rule_id="SUP002",
                message=(
                    f"unused suppression for {', '.join(s.rules)} — "
                    "no finding matches; delete the comment"
                ),
                snippet="",
            )
            for s in self.suppressions
            if s.reason and s.rules and not s.used
        ]
