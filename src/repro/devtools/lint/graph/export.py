"""Versioned JSON export of the call graph and summaries.

``repro lint --graph-out graph.json`` writes this document so external
tooling (editor overlays, the CI artifact, future topology-inference
work) can consume the whole-program view without re-running the
analysis.  The schema is versioned exactly like the lint report schema:
any key change bumps :data:`GRAPH_SCHEMA_VERSION` and the golden test.
"""

from __future__ import annotations

from typing import Any

from repro.devtools.lint.graph.project import ProjectContext

#: Schema version of the ``--graph-out`` document.  Bump on any key
#: change and update ``tests/devtools/test_lint_graph_export.py``.
GRAPH_SCHEMA_VERSION = 1


def render_graph(project: ProjectContext) -> dict[str, Any]:
    """Render the project's call graph + summaries as a JSON document.

    Keys are sorted and content is deterministic for a given source
    tree, so the document diffs cleanly between runs.
    """
    index = project.index
    graph = project.graph
    summaries = project.summaries

    functions: list[dict[str, Any]] = []
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        summary = summaries.summary_for(qualname)
        facts = graph.facts.get(qualname)
        functions.append(
            {
                "qualname": qualname,
                "module": info.module,
                "path": info.relpath,
                "line": info.lineno,
                "class": info.class_qualname,
                "hot_marked": info.hot_marked,
                "may_draw_rng": bool(summary and summary.may_draw_rng),
                "may_schedule": bool(summary and summary.may_schedule),
                "direct_draw_sites": len(facts.rng_draws) if facts else 0,
                "direct_schedule_sites": len(facts.schedules) if facts else 0,
                "dynamic_calls": facts.dynamic_calls if facts else 0,
                "rng_params": {
                    param: sorted(families)
                    for param, families in sorted(
                        (summary.param_families if summary else {}).items()
                    )
                },
            }
        )

    edges: list[dict[str, Any]] = []
    for qualname in sorted(graph.facts):
        for edge in graph.facts[qualname].edges:
            edges.append(
                {
                    "caller": edge.caller,
                    "callee": edge.callee,
                    "line": edge.lineno,
                    "guarded": edge.guarded,
                }
            )

    return {
        "version": GRAPH_SCHEMA_VERSION,
        "modules": sorted(index.modules),
        "functions": functions,
        "edges": edges,
        "stats": {
            "modules": len(index.modules),
            "functions": len(index.functions),
            "classes": len(index.classes),
            "edges": len(edges),
        },
    }
