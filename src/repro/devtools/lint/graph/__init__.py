"""Whole-program analysis for the lint pass (`repro lint` v2).

The per-file rules (DET/SIM/API/OBS001/FLT001) see one
:class:`~repro.devtools.lint.context.ModuleContext` at a time; the rule
families introduced with this package (STR0xx stream provenance, OBS1xx
hook purity, PERF0xx hot-path hygiene) need to see *across* call
boundaries.  This package supplies the shared machinery:

* :mod:`symbols` — project symbol table: every module, class, function
  and method in the linted tree, with import resolution and a
  flow-insensitive receiver-type index (the ``settypes.py`` philosophy
  scaled from "is this a set?" to "which class is this?");
* :mod:`callgraph` — call-edge extraction over the symbol table, with
  cold-edge tagging (calls behind ``trace.enabled`` guards or inside
  ``raise`` error paths);
* :mod:`dataflow` — per-function effect summaries (draws RNG, schedules
  events, allocates closures, formats strings) closed transitively over
  the call graph, plus RNG stream-provenance propagation;
* :mod:`project` — :class:`ProjectContext`, the lazily built bundle the
  runner hands to every project rule;
* :mod:`export` — the versioned ``--graph-out`` JSON schema.

Analysis limits (also documented in DESIGN.md §5d): resolution is
static and best-effort.  Dynamic dispatch through heap-stored objects
(the engine's ``entry[3].callback()``), ``getattr`` access, and
receivers whose type never appears in an annotation or constructor
assignment produce *no* call edge — the analyzer never guesses.  The
rules built on top are therefore tuned so that a missing edge can only
hide a finding, never invent one.
"""

from __future__ import annotations

from repro.devtools.lint.graph.callgraph import CallEdge, CallGraph
from repro.devtools.lint.graph.dataflow import FunctionSummary, SummaryIndex
from repro.devtools.lint.graph.export import GRAPH_SCHEMA_VERSION, render_graph
from repro.devtools.lint.graph.project import ProjectContext
from repro.devtools.lint.graph.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    ProjectIndex,
)

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "FunctionSummary",
    "GRAPH_SCHEMA_VERSION",
    "ModuleSymbols",
    "ProjectContext",
    "ProjectIndex",
    "SummaryIndex",
    "render_graph",
]
