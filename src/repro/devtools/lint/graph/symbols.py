"""Project-wide symbol table and receiver-type hints.

:class:`ProjectIndex` walks every linted module once and records the
symbols cross-module rules need to resolve calls:

* modules, keyed by their dotted import path (derived from the file
  path, so ``src/repro/p2p/network.py`` indexes as
  ``repro.p2p.network``);
* classes with their base names, methods, and an attribute-type map
  built from ``self.x = ClassName(...)`` / ``self.x: T = ...`` /
  ``self.x = annotated_param`` assignments anywhere in the class body;
* functions and methods as :class:`FunctionInfo` records, including the
  ``# repro: hotpath`` marker the PERF rules honour.

Type inference follows the ``settypes.py`` doctrine: module-local facts,
flow-insensitive, annotation-and-constructor driven, and silent when
unsure.  A name resolves to a class exactly when an annotation, a
constructor call, or a project function's return annotation says so;
everything else stays untyped and produces no call edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.context import ModuleContext

#: Inline marker extending the PERF hot-entry registry: placed on (or
#: directly above) a ``def`` line, it declares the function a hot entry
#: point whose transitive callees must stay allocation-clean.
HOTPATH_MARKER = "# repro: hotpath"

#: Canonical type tag for ``numpy.random.Generator`` receivers.  Stream
#: provenance and draw detection key on this tag rather than on the
#: numpy class object — the analyzer never imports the linted code.
GENERATOR_TYPE = "numpy.random.Generator"

#: Annotation spellings that denote an RNG generator parameter/attribute.
_GENERATOR_ANNOTATIONS = frozenset(
    {
        "np.random.Generator",
        "numpy.random.Generator",
        "Generator",
        "random.Generator",
    }
)


def module_name_for(relpath: str) -> str:
    """Dotted import path for ``relpath``.

    Paths inside a ``repro/`` tree map onto the real package
    (``src/repro/p2p/network.py`` -> ``repro.p2p.network``); anything
    else (tmp-dir fixtures, standalone files) indexes by its stem so
    single-file projects still resolve module-local calls.
    """
    posix = relpath.replace("\\", "/")
    parts = posix.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    tail = parts[-1]
    if tail.endswith(".py"):
        tail = tail[: -len(".py")]
    parts[-1] = tail
    if tail == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else tail


def annotation_text(node: Optional[ast.expr]) -> Optional[str]:
    """Dotted source text of an annotation head (strings unwrapped).

    ``Optional[Foo]`` / ``"Foo"`` / ``Foo[int]`` all yield ``Foo``;
    unions and anything non-dotted yield ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = annotation_text(node.value)
        if head in {"Optional", "typing.Optional"}:
            inner = node.slice
            return annotation_text(inner)
        return head
    parts: list[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method in the project.

    Attributes:
        qualname: Fully qualified name, e.g.
            ``repro.p2p.network.Network.send``.
        name: Bare function name.
        module: Dotted module path.
        relpath: Path reported in findings.
        lineno: 1-indexed ``def`` line.
        node: The function's AST (body is analyzed by the call-graph
            and dataflow passes).
        class_qualname: Enclosing class, or ``None`` for module-level
            functions.
        hot_marked: True when a ``# repro: hotpath`` marker sits on or
            directly above the ``def`` line.
    """

    qualname: str
    name: str
    module: str
    relpath: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: Optional[str] = None
    hot_marked: bool = False


@dataclass
class ClassInfo:
    """One class in the project, with receiver-type hints.

    Attributes:
        qualname: Fully qualified class name.
        name: Bare class name.
        module: Dotted module path.
        relpath: Path of the defining file.
        lineno: 1-indexed ``class`` line.
        base_names: Base classes as written (resolved lazily by the
            index, so forward references cost nothing).
        methods: Bare method name -> :class:`FunctionInfo`.
        attr_types: ``self.<attr>`` -> type name as written at the
            binding site (resolved through the defining module's
            imports on lookup).
        attr_streams: ``self.<attr>`` -> RNG stream namespaces bound to
            that attribute anywhere in the class
            (``self._rng = simulator.rng.stream("mining.lottery")``).
    """

    qualname: str
    name: str
    module: str
    relpath: str
    lineno: int
    base_names: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    attr_streams: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Everything the resolver knows about one module.

    Attributes:
        name: Dotted module path.
        relpath: Path reported in findings.
        imports: Local name -> dotted target
            (``from repro.sim.engine import Simulator`` ->
            ``{"Simulator": "repro.sim.engine.Simulator"}``).
        functions: Module-level functions by bare name.
        classes: Classes by bare name.
    """

    name: str
    relpath: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def stream_namespace(call: ast.Call) -> Optional[str]:
    """Literal namespace of a ``.stream(...)`` request, if recoverable.

    Plain string literals return as-is; f-strings return their leading
    constant prefix (``f"node.{n}"`` -> ``node.``); anything else is
    ``None`` (a computed namespace the analyzer will not guess at).
    """
    arg = call.args[0] if call.args else None
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def stream_family(namespace: str) -> str:
    """Stream family of a namespace: the segment before the first dot."""
    return namespace.split(".", 1)[0]


def is_stream_call(node: ast.expr) -> bool:
    """True for ``<expr>.stream(...)`` / ``<expr>.fork(...)`` requests."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("stream", "fork")
    )


def _is_generator_annotation(text: Optional[str]) -> bool:
    return text is not None and (
        text in _GENERATOR_ANNOTATIONS or text.endswith(".random.Generator")
    )


class ProjectIndex:
    """Symbol table over every module handed to one lint run.

    Args:
        modules: The run's parsed modules (the runner passes its
            :class:`ModuleContext` list; order does not matter).
    """

    def __init__(self, modules: list["ModuleContext"]) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Bare class name -> qualnames (for base-class resolution when
        #: the import map cannot place a name).
        self._class_names: dict[str, list[str]] = {}
        for module in modules:
            self._index_module(module)

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #

    def _index_module(self, module: "ModuleContext") -> None:
        name = module_name_for(module.relpath)
        symbols = ModuleSymbols(name=name, relpath=module.relpath)
        self.modules[name] = symbols
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    symbols.imports[alias.asname or alias.name.split(".", 1)[0]] = (
                        alias.name if alias.asname else alias.name.split(".", 1)[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    symbols.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, symbols, stmt, None)
                symbols.functions[stmt.name] = info
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, symbols, stmt)

    def _index_class(
        self,
        module: "ModuleContext",
        symbols: ModuleSymbols,
        node: ast.ClassDef,
    ) -> None:
        qualname = f"{symbols.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=symbols.name,
            relpath=symbols.relpath,
            lineno=node.lineno,
            base_names=tuple(
                text
                for base in node.bases
                if (text := annotation_text(base)) is not None
            ),
        )
        symbols.classes[node.name] = info
        self.classes[qualname] = info
        self._class_names.setdefault(node.name, []).append(qualname)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function_info(module, symbols, stmt, qualname)
                info.methods[stmt.name] = method
                self.functions[method.qualname] = method
                self._collect_self_bindings(info, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                text = annotation_text(stmt.annotation)
                if text is not None:
                    info.attr_types.setdefault(stmt.target.id, text)

    def _collect_self_bindings(
        self,
        info: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        """Record ``self.<attr>`` types and stream bindings in ``method``."""
        param_types: dict[str, Optional[str]] = {}
        args = method.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            param_types[arg.arg] = annotation_text(arg.annotation)
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = annotation_text(node.annotation)
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                info.attr_types.setdefault(attr, annotation)
            if isinstance(value, ast.Call):
                if is_stream_call(value):
                    namespace = stream_namespace(value)
                    family = (
                        stream_family(namespace)
                        if namespace is not None
                        else "<dynamic>"
                    )
                    existing = info.attr_streams.get(attr, ())
                    if family not in existing:
                        info.attr_streams[attr] = existing + (family,)
                    info.attr_types.setdefault(attr, GENERATOR_TYPE)
                else:
                    ctor = annotation_text(value.func)
                    if ctor is not None:
                        info.attr_types.setdefault(attr, ctor)
            elif isinstance(value, ast.Name):
                param_annotation = param_types.get(value.id)
                if param_annotation is not None:
                    info.attr_types.setdefault(attr, param_annotation)

    def _function_info(
        self,
        module: "ModuleContext",
        symbols: ModuleSymbols,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_qualname: Optional[str],
    ) -> FunctionInfo:
        prefix = class_qualname or symbols.name
        lineno = node.lineno
        # Decorators push the def line down; the marker belongs to `def`.
        def_line = getattr(node, "lineno", lineno)
        hot = False
        for candidate in (def_line, def_line - 1):
            if 1 <= candidate <= len(module.lines) and HOTPATH_MARKER in (
                module.lines[candidate - 1]
            ):
                hot = True
                break
        return FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            name=node.name,
            module=symbols.name,
            relpath=symbols.relpath,
            lineno=def_line,
            node=node,
            class_qualname=class_qualname,
            hot_marked=hot,
        )

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """Resolve ``name`` as written in ``module`` to a qualname.

        Checks module-local classes and functions first, then the import
        map, then (for dotted names) the import map of the head segment.
        Returns ``None`` for builtins and external libraries.
        """
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        if name in symbols.classes:
            return symbols.classes[name].qualname
        if name in symbols.functions:
            return symbols.functions[name].qualname
        imported = symbols.imports.get(name)
        if imported is not None:
            return imported if self._known(imported) else imported
        if "." in name:
            head, _, rest = name.partition(".")
            resolved_head = symbols.imports.get(head)
            if resolved_head is not None:
                return f"{resolved_head}.{rest}"
        return None

    def _known(self, qualname: str) -> bool:
        return qualname in self.classes or qualname in self.functions

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """Class named ``name`` as seen from ``module``, if in the project."""
        resolved = self.resolve_name(module, name)
        if resolved is not None and resolved in self.classes:
            return self.classes[resolved]
        # Fall back to a unique bare-name match: fixtures and tmp-dir
        # copies reference classes the import map cannot place.
        bare = name.rsplit(".", 1)[-1]
        candidates = self._class_names.get(bare, [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def class_mro(self, info: ClassInfo) -> list[ClassInfo]:
        """Project-visible linearisation: the class, then its bases.

        Diamonds and external bases are out of scope — bases outside
        the project simply end the walk on that branch.
        """
        seen: dict[str, None] = {info.qualname: None}
        order: list[ClassInfo] = [info]
        frontier = [info]
        while frontier:
            current = frontier.pop(0)
            for base_name in current.base_names:
                base = self.resolve_class(current.module, base_name)
                if base is not None and base.qualname not in seen:
                    seen[base.qualname] = None
                    order.append(base)
                    frontier.append(base)
        return order

    def lookup_method(
        self, info: ClassInfo, method: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``method`` through the project-visible MRO."""
        for klass in self.class_mro(info):
            found = klass.methods.get(method)
            if found is not None:
                return found
        return None

    def attr_type(self, info: ClassInfo, attr: str) -> Optional[str]:
        """Type of ``self.<attr>`` through the project-visible MRO."""
        for klass in self.class_mro(info):
            found = klass.attr_types.get(attr)
            if found is not None:
                return found
        return None

    def is_generator_type(self, module: str, text: Optional[str]) -> bool:
        """True when annotation/constructor text denotes an RNG Generator."""
        if text is None:
            return False
        if text == GENERATOR_TYPE or _is_generator_annotation(text):
            return True
        resolved = self.resolve_name(module, text)
        return resolved is not None and resolved.endswith(".random.Generator")
