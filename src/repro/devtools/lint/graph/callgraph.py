"""Call-edge extraction and per-function local facts.

One visitor pass per function computes everything the interprocedural
rules need locally, sharing a single receiver-type environment:

* resolved call edges (module functions, methods through receiver
  types, ``self`` dispatch through the project-visible MRO,
  constructors), each tagged *guarded* when it sits behind a
  trace-enabled check or inside an error path;
* effect sites: RNG draws, stream requests, registry draws, event
  scheduling, closure construction, string formatting, scalar sends
  and container allocations inside loops, RNG values stored into
  provenance-erasing containers;
* RNG argument bindings: which stream families (or caller parameters)
  flow into each rng-typed parameter at each call site — the raw
  material for the STR0xx fixpoint.

Resolution is deliberately conservative: a call whose receiver type is
unknown produces no edge and is counted in ``dynamic_calls``.  The
engine's heap dispatch (``entry[3].callback()``) is the canonical
example — the analyzer stops at the heap boundary instead of guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.devtools.lint.graph.symbols import (
    GENERATOR_TYPE,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    annotation_text,
    is_stream_call,
    stream_family,
    stream_namespace,
)

#: Scheduling entry points by bare name.  These names are unique to the
#: engine/queue layer in this codebase, so a name match is meaningful
#: even when the receiver type cannot be resolved (e.g. bound-method
#: aliases like ``self._push_batch``).
_SCHEDULE_NAMES = frozenset(
    {"schedule", "call_later", "schedule_raw", "schedule_batch", "push_raw", "push_batch"}
)

#: ``push`` is too generic for a bare-name match; require a queue-typed
#: or queue-named receiver.
_QUEUE_PUSH = "push"

#: Methods that are registry *operations*, not draws.
_REGISTRY_OPS = frozenset({"stream", "fork"})

#: Receiver names treated as RNG generators when no type is known.
def _rng_named(name: str) -> bool:
    return name == "rng" or name == "_rng" or name.endswith("_rng")


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site.

    Attributes:
        caller: Qualname of the calling function.
        callee: Qualname of the resolved callee.
        lineno: 1-indexed line of the call.
        guarded: True when the call sits behind a ``...enabled`` check
            or inside a ``raise``/``assert`` error path — cold edges the
            PERF traversal skips.
    """

    caller: str
    callee: str
    lineno: int
    guarded: bool


@dataclass(frozen=True)
class Site:
    """One effect site inside a function body."""

    lineno: int
    col: int
    detail: str = ""
    guarded: bool = False


@dataclass(frozen=True)
class RngBinding:
    """One rng-typed argument flowing into a callee parameter.

    Attributes:
        callee: Qualname of the called function.
        param: Callee parameter name receiving the value.
        families: Stream families known to flow here directly.
        param_refs: Caller parameter names whose own (yet unknown)
            families flow here — resolved by the dataflow fixpoint.
        lineno: Call-site line.
    """

    callee: str
    param: str
    families: tuple[str, ...]
    param_refs: tuple[str, ...]
    lineno: int


@dataclass
class FunctionFacts:
    """Local analysis results for one function."""

    info: FunctionInfo
    edges: list[CallEdge] = field(default_factory=list)
    dynamic_calls: int = 0
    rng_draws: list[Site] = field(default_factory=list)
    stream_requests: list[Site] = field(default_factory=list)
    registry_draws: list[Site] = field(default_factory=list)
    schedules: list[Site] = field(default_factory=list)
    closures: list[Site] = field(default_factory=list)
    fstrings: list[Site] = field(default_factory=list)
    scalar_sends_in_loop: list[Site] = field(default_factory=list)
    allocs_in_loop: list[Site] = field(default_factory=list)
    container_rng: list[Site] = field(default_factory=list)
    rng_params: tuple[str, ...] = ()
    rng_bindings: list[RngBinding] = field(default_factory=list)


def _parameters(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = node.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


class _FunctionVisitor(ast.NodeVisitor):
    """Single-pass extraction of :class:`FunctionFacts` for one function."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.module = info.module
        self.facts = FunctionFacts(info=info)
        self.enclosing_class: Optional[ClassInfo] = (
            index.classes.get(info.class_qualname)
            if info.class_qualname
            else None
        )
        #: Local name -> type text (settypes.py doctrine: flow-insensitive,
        #: annotation/constructor driven).
        self.local_types: dict[str, Optional[str]] = {}
        #: Local name -> stream families bound via `x = registry.stream(...)`.
        self.local_streams: dict[str, tuple[str, ...]] = {}
        self.rng_params: set[str] = set()
        self._loop_depth = 0
        self._guard_depth = 0
        self._lambda_depth = 0
        self._seed_parameter_types()
        self._prebind_locals(info.node)

    # ------------------------------------------------------------------ #
    # Environment
    # ------------------------------------------------------------------ #

    def _seed_parameter_types(self) -> None:
        params = _parameters(self.info.node)
        for position, arg in enumerate(params):
            text = annotation_text(arg.annotation)
            if position == 0 and arg.arg == "self" and self.enclosing_class:
                self.local_types["self"] = self.enclosing_class.qualname
                continue
            if text is not None:
                self.local_types[arg.arg] = text
            if self.index.is_generator_type(self.module, text) or (
                text is None and _rng_named(arg.arg)
            ):
                self.rng_params.add(arg.arg)
        self.facts.rng_params = tuple(
            arg.arg for arg in params if arg.arg in self.rng_params
        )

    def _prebind_locals(self, node: ast.AST) -> None:
        """Flow-insensitive binding pass (two sweeps for alias chains)."""
        for _ in range(2):
            for child in ast.walk(node):
                if isinstance(child, ast.Assign) and len(child.targets) == 1:
                    target = child.targets[0]
                    if isinstance(target, ast.Name):
                        self._bind_local(target.id, child.value)
                elif isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    text = annotation_text(child.annotation)
                    if text is not None:
                        self.local_types.setdefault(child.target.id, text)

    def _bind_local(self, name: str, value: ast.expr) -> None:
        if is_stream_call(value):
            assert isinstance(value, ast.Call)
            namespace = stream_namespace(value)
            family = stream_family(namespace) if namespace else "<dynamic>"
            existing = self.local_streams.get(name, ())
            if family not in existing:
                self.local_streams[name] = existing + (family,)
            self.local_types.setdefault(name, GENERATOR_TYPE)
            return
        if isinstance(value, ast.Call):
            ctor = annotation_text(value.func)
            if ctor is not None:
                resolved = self.index.resolve_class(self.module, ctor)
                if resolved is not None:
                    self.local_types.setdefault(name, resolved.qualname)
                    return
                callee = self._resolve_callee_info(value)
                if callee is not None:
                    returns = annotation_text(callee.node.returns)
                    if returns is not None:
                        self.local_types.setdefault(name, returns)
            return
        inferred = self.typeof(value)
        if inferred is not None:
            self.local_types.setdefault(name, inferred)

    def typeof(self, node: ast.expr) -> Optional[str]:
        """Best-effort receiver type of ``node``, as a canonical tag.

        Project classes resolve to their qualname; RNG generators to
        :data:`GENERATOR_TYPE`; everything unknown to ``None``.
        """
        if isinstance(node, ast.Name):
            text = self.local_types.get(node.id)
            return self._canonical(text)
        if isinstance(node, ast.Attribute):
            base = self.typeof(node.value)
            if base is not None and base in self.index.classes:
                attr_text = self.index.attr_type(
                    self.index.classes[base], node.attr
                )
                if attr_text is not None:
                    owner = self.index.classes[base]
                    return self._canonical(attr_text, module=owner.module)
            return None
        if isinstance(node, ast.Call):
            if is_stream_call(node):
                assert isinstance(node.func, ast.Attribute)
                if node.func.attr == "fork":
                    return self._canonical("RngRegistry")
                return GENERATOR_TYPE
            callee = self._resolve_callee_info(node)
            if callee is not None:
                return self._canonical(
                    annotation_text(callee.node.returns), module=callee.module
                )
        return None

    def _canonical(
        self, text: Optional[str], module: Optional[str] = None
    ) -> Optional[str]:
        if text is None:
            return None
        module = module or self.module
        if self.index.is_generator_type(module, text):
            return GENERATOR_TYPE
        if text in self.index.classes:
            return text
        resolved = self.index.resolve_class(module, text)
        if resolved is not None:
            return resolved.qualname
        return text

    # ------------------------------------------------------------------ #
    # Guards and loops
    # ------------------------------------------------------------------ #

    @staticmethod
    def _is_cold_guard(test: ast.expr) -> bool:
        """True for ``if <...>.enabled``-style tracing guards."""
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
        return False

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        cold = self._is_cold_guard(node.test)
        if cold:
            self._guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if cold:
            self._guard_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self._guard_depth += 1
        self.generic_visit(node)
        self._guard_depth -= 1

    def visit_Assert(self, node: ast.Assert) -> None:
        self._guard_depth += 1
        self.generic_visit(node)
        self._guard_depth -= 1

    def _visit_loop(self, node: ast.For | ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    # ------------------------------------------------------------------ #
    # Effect sites
    # ------------------------------------------------------------------ #

    def _site(self, node: ast.AST, detail: str = "") -> Site:
        return Site(
            lineno=getattr(node, "lineno", self.info.lineno),
            col=getattr(node, "col_offset", 0),
            detail=detail,
            guarded=self._guard_depth > 0,
        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.facts.closures.append(self._site(node, "lambda"))
        self._lambda_depth += 1
        self.generic_visit(node)
        self._lambda_depth -= 1

    def _visit_nested_def(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Nested bodies stay part of the parent's facts (a closure built
        # in a hook may run anywhere; conservatively the effects belong
        # to whoever constructs it).
        self.facts.closures.append(self._site(node, f"def {node.name}"))
        self.generic_visit(node)

    visit_FunctionDef = _visit_nested_def
    visit_AsyncFunctionDef = _visit_nested_def

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if any(isinstance(value, ast.FormattedValue) for value in node.values):
            self.facts.fstrings.append(self._site(node, "f-string"))
        self.generic_visit(node)

    def _note_alloc(self, node: ast.expr, label: str) -> None:
        if self._loop_depth > 0:
            self.facts.allocs_in_loop.append(self._site(node, label))

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._note_alloc(node, "list comprehension")
        self._check_container_rng(node.elt)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._note_alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._note_alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        for element in node.elts:
            self._check_container_rng(element)
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if isinstance(node.ctx, ast.Load):
            for element in node.elts:
                self._check_container_rng(element)
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        for element in node.elts:
            self._check_container_rng(element)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for value in node.values:
            if value is not None:
                self._check_container_rng(value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_container_rng(node.value)
        self.generic_visit(node)

    def _is_rng_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            if node.id in self.rng_params or node.id in self.local_streams:
                return True
            return self.typeof(node) == GENERATOR_TYPE or _rng_named(node.id)
        if isinstance(node, ast.Attribute):
            if self.typeof(node) == GENERATOR_TYPE:
                return True
            return _rng_named(node.attr)
        if is_stream_call(node):
            assert isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            )
            return node.func.attr == "stream"
        return False

    def _check_container_rng(self, node: ast.expr) -> None:
        if self._is_rng_expr(node):
            self.facts.container_rng.append(
                self._site(node, "generator stored in container")
            )

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._name_call(node, func)
        self.generic_visit(node)

    def _name_call(self, node: ast.Call, func: ast.Name) -> None:
        name = func.id
        if name == "print":
            self.facts.fstrings.append(self._site(node, "print()"))
            return
        resolved = self.index.resolve_name(self.module, name)
        if resolved is None:
            return
        if resolved in self.index.classes:
            init = self.index.lookup_method(
                self.index.classes[resolved], "__init__"
            )
            if init is not None:
                self._add_edge(node, init)
            return
        callee = self.index.functions.get(resolved)
        if callee is not None:
            self._add_edge(node, callee)
        else:
            self.facts.dynamic_calls += 1

    def _attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        receiver = func.value
        receiver_type = self.typeof(receiver)

        if attr in _REGISTRY_OPS:
            namespace = stream_namespace(node) if attr == "stream" else None
            self.facts.stream_requests.append(
                self._site(node, namespace or "<dynamic>")
            )
            return

        if receiver_type is not None and receiver_type.endswith("RngRegistry"):
            self.facts.registry_draws.append(self._site(node, attr))
            return

        if receiver_type == GENERATOR_TYPE or (
            receiver_type is None and self._rng_receiver(receiver)
        ):
            self.facts.rng_draws.append(self._site(node, attr))
            return

        if attr in _SCHEDULE_NAMES or (
            attr == _QUEUE_PUSH
            and (
                (receiver_type or "").endswith("EventQueue")
                or self._queue_named(receiver)
            )
        ):
            self.facts.schedules.append(self._site(node, attr))
            # The call may still resolve (Simulator.schedule etc.) so the
            # edge is recorded too — purity propagation needs both.

        if attr == "send" and self._loop_depth > 0:
            if (receiver_type or "").endswith(".Network") or self._network_named(
                receiver
            ):
                self.facts.scalar_sends_in_loop.append(self._site(node, "send"))

        if attr == "format":
            self.facts.fstrings.append(self._site(node, "str.format()"))

        if receiver_type is not None and receiver_type in self.index.classes:
            method = self.index.lookup_method(
                self.index.classes[receiver_type], attr
            )
            if method is not None:
                self._add_edge(node, method)
                return
        # Module-function call through an imported module alias.
        dotted = annotation_text(func)
        if dotted is not None:
            resolved = self.index.resolve_name(self.module, dotted)
            if resolved is not None and resolved in self.index.functions:
                self._add_edge(node, self.index.functions[resolved])
                return
        self.facts.dynamic_calls += 1

    @staticmethod
    def _rng_receiver(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return _rng_named(node.id)
        if isinstance(node, ast.Attribute):
            return _rng_named(node.attr)
        return False

    @staticmethod
    def _queue_named(node: ast.expr) -> bool:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else ""
        )
        return "queue" in name

    @staticmethod
    def _network_named(node: ast.expr) -> bool:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else ""
        )
        return name == "network"

    def _resolve_callee_info(self, node: ast.Call) -> Optional[FunctionInfo]:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.index.resolve_name(self.module, func.id)
            if resolved is not None:
                return self.index.functions.get(resolved)
            return None
        if isinstance(func, ast.Attribute):
            receiver_type = self.typeof(func.value)
            if receiver_type is not None and receiver_type in self.index.classes:
                return self.index.lookup_method(
                    self.index.classes[receiver_type], func.attr
                )
            dotted = annotation_text(func)
            if dotted is not None:
                resolved = self.index.resolve_name(self.module, dotted)
                if resolved is not None:
                    return self.index.functions.get(resolved)
        return None

    def _add_edge(self, node: ast.Call, callee: FunctionInfo) -> None:
        self.facts.edges.append(
            CallEdge(
                caller=self.info.qualname,
                callee=callee.qualname,
                lineno=getattr(node, "lineno", self.info.lineno),
                guarded=self._guard_depth > 0,
            )
        )
        self._bind_rng_arguments(node, callee)

    def _bind_rng_arguments(self, node: ast.Call, callee: FunctionInfo) -> None:
        """Record stream provenance flowing into rng-typed parameters."""
        params = [arg.arg for arg in _parameters(callee.node)]
        if params and params[0] == "self":
            params = params[1:]
        pairs: list[tuple[str, ast.expr]] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if position < len(params):
                pairs.append((params[position], arg))
        for keyword in node.keywords:
            if keyword.arg is not None:
                pairs.append((keyword.arg, keyword.value))
        for param, arg in pairs:
            families, refs = self._provenance(arg)
            if families or refs:
                self.facts.rng_bindings.append(
                    RngBinding(
                        callee=callee.qualname,
                        param=param,
                        families=tuple(sorted(families)),
                        param_refs=tuple(sorted(refs)),
                        lineno=getattr(node, "lineno", self.info.lineno),
                    )
                )

    def _provenance(self, node: ast.expr) -> tuple[set[str], set[str]]:
        """Stream families / caller-parameter refs carried by ``node``."""
        families: set[str] = set()
        refs: set[str] = set()
        if is_stream_call(node):
            assert isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            )
            if node.func.attr == "stream":
                namespace = stream_namespace(node)
                families.add(
                    stream_family(namespace) if namespace else "<dynamic>"
                )
        elif isinstance(node, ast.Name):
            if node.id in self.rng_params:
                refs.add(node.id)
            elif node.id in self.local_streams:
                families.update(self.local_streams[node.id])
        elif isinstance(node, ast.Attribute):
            base_type = self.typeof(node.value)
            if base_type is not None and base_type in self.index.classes:
                owner = self.index.classes[base_type]
                for klass in self.index.class_mro(owner):
                    bound = klass.attr_streams.get(node.attr)
                    if bound:
                        families.update(bound)
                        break
        return families, refs


def _collect(index: ProjectIndex, info: FunctionInfo) -> FunctionFacts:
    visitor = _FunctionVisitor(index, info)
    # Visit the body, not the def itself (the def would register as a
    # nested-closure site and re-walk everything).
    for stmt in info.node.body:
        visitor.visit(stmt)
    return visitor.facts


class CallGraph:
    """Call edges plus local facts for every function in the project."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.facts: dict[str, FunctionFacts] = {}
        self.callers: dict[str, list[CallEdge]] = {}
        for qualname in sorted(index.functions):
            facts = _collect(index, index.functions[qualname])
            self.facts[qualname] = facts
            for edge in facts.edges:
                self.callers.setdefault(edge.callee, []).append(edge)

    def callees(self, qualname: str) -> list[CallEdge]:
        facts = self.facts.get(qualname)
        return facts.edges if facts is not None else []

    @property
    def edge_count(self) -> int:
        return sum(len(facts.edges) for facts in self.facts.values())
